// Vector implementations of the simd.h entry points, written against GNU
// vector extensions so one source serves every tier. simd.cc includes this
// file once per tier inside a tier namespace, with two macros set:
//
//   JT_SIMD_ATTR   extra function attributes, e.g. __attribute__((target("avx2")))
//                  for the function-multiversioned AVX2 tier (empty for the
//                  baseline tier, which uses the translation unit's default
//                  ISA: SSE2 on x86-64, NEON on aarch64)
//   JT_SIMD_WIDTH  vector register width in bytes (16 or 32)
//
// Scalar tails reuse the reference helpers (CmpScalarF/CmpScalarI/...) defined
// in simd.cc before inclusion, so tail lanes are bit-identical to the scalar
// tier by construction. Loads/stores go through __builtin_memcpy: ColumnVector
// buffers have no vector alignment guarantee and memcpy avoids both the UB and
// the -Wpsabi ABI warnings of passing over-wide vector types around.

typedef int64_t VI __attribute__((vector_size(JT_SIMD_WIDTH)));
typedef uint64_t VU __attribute__((vector_size(JT_SIMD_WIDTH)));
typedef double VF __attribute__((vector_size(JT_SIMD_WIDTH)));
typedef uint8_t VB __attribute__((vector_size(JT_SIMD_WIDTH)));
// One byte per 64-bit lane (null bytemap slice matching one VI/VF register).
typedef uint8_t VN __attribute__((vector_size(JT_SIMD_WIDTH / 8)));
// Signed counterpart: byte-vector comparisons yield signed element masks.
typedef int8_t VNS __attribute__((vector_size(JT_SIMD_WIDTH / 8)));

inline constexpr size_t kLanes = JT_SIMD_WIDTH / 8;

JT_SIMD_ATTR static inline VI LoadI(const int64_t* p) {
  VI v;
  __builtin_memcpy(&v, p, sizeof v);
  return v;
}
JT_SIMD_ATTR static inline VU LoadU(const uint64_t* p) {
  VU v;
  __builtin_memcpy(&v, p, sizeof v);
  return v;
}
JT_SIMD_ATTR static inline VF LoadF(const double* p) {
  VF v;
  __builtin_memcpy(&v, p, sizeof v);
  return v;
}
JT_SIMD_ATTR static inline VB LoadB(const uint8_t* p) {
  VB v;
  __builtin_memcpy(&v, p, sizeof v);
  return v;
}
JT_SIMD_ATTR static inline VN LoadN(const uint8_t* p) {
  VN v;
  __builtin_memcpy(&v, p, sizeof v);
  return v;
}
JT_SIMD_ATTR static inline void StoreI(int64_t* p, VI v) {
  __builtin_memcpy(p, &v, sizeof v);
}
JT_SIMD_ATTR static inline void StoreU(uint64_t* p, VU v) {
  __builtin_memcpy(p, &v, sizeof v);
}
JT_SIMD_ATTR static inline void StoreF(double* p, VF v) {
  __builtin_memcpy(p, &v, sizeof v);
}
JT_SIMD_ATTR static inline void StoreB(uint8_t* p, VB v) {
  __builtin_memcpy(p, &v, sizeof v);
}
JT_SIMD_ATTR static inline void StoreN(uint8_t* p, VN v) {
  __builtin_memcpy(p, &v, sizeof v);
}

JT_SIMD_ATTR static inline VU SplatU(uint64_t x) {
  VU v;
  for (size_t i = 0; i < kLanes; ++i) v[i] = x;
  return v;
}

/// Null bytes (any nonzero = null) widened to a 0/-1 mask per 64-bit lane.
JT_SIMD_ATTR static inline VI NullMask(VN nb) {
  return __builtin_convertvector(nb, VI) != 0;
}

/// 0/-1 64-bit lane mask narrowed to 0/1 bytes.
JT_SIMD_ATTR static inline VN MaskToBytes(VI m) {
  return __builtin_convertvector(m, VN) & 1;
}

/// ApplyCmp(op, x < y ? -1 : x > y ? 1 : 0) from the lt/gt lane masks alone.
/// Both masks are false on NaN, which makes NaN sort "equal" - exactly the
/// ternary's behaviour.
JT_SIMD_ATTR static inline VI CmpCombine(BinOp op, VI lt, VI gt) {
  switch (op) {
    case BinOp::kEq:
      return ~(lt | gt) & 1;
    case BinOp::kNe:
      return (lt | gt) & 1;
    case BinOp::kLt:
      return lt & 1;
    case BinOp::kLe:
      return ~gt & 1;
    case BinOp::kGt:
      return gt & 1;
    default:  // kGe
      return ~lt & 1;
  }
}

JT_SIMD_ATTR static void OrBytesImpl(const uint8_t* a, const uint8_t* b,
                                     uint8_t* out, size_t n) {
  size_t k = 0;
  for (; k + sizeof(VB) <= n; k += sizeof(VB)) {
    StoreB(out + k, LoadB(a + k) | LoadB(b + k));
  }
  for (; k < n; ++k) out[k] = a[k] | b[k];
}

JT_SIMD_ATTR static void CompareF64Impl(BinOp op, const double* a,
                                        const double* b, const uint8_t* an,
                                        const uint8_t* bn, int64_t* out,
                                        uint8_t* onull, size_t n) {
  size_t k = 0;
  for (; k + kLanes <= n; k += kLanes) {
    VF x = LoadF(a + k), y = LoadF(b + k);
    StoreI(out + k, CmpCombine(op, (VI)(x < y), (VI)(x > y)));
  }
  for (; k < n; ++k) out[k] = CmpScalarF(op, a[k], b[k]);
  OrBytesImpl(an, bn, onull, n);
}

JT_SIMD_ATTR static void CompareI64ViaDoubleImpl(BinOp op, const int64_t* a,
                                                 const int64_t* b,
                                                 const uint8_t* an,
                                                 const uint8_t* bn,
                                                 int64_t* out, uint8_t* onull,
                                                 size_t n) {
  size_t k = 0;
  for (; k + kLanes <= n; k += kLanes) {
    VF x = __builtin_convertvector(LoadI(a + k), VF);
    VF y = __builtin_convertvector(LoadI(b + k), VF);
    StoreI(out + k, CmpCombine(op, (VI)(x < y), (VI)(x > y)));
  }
  for (; k < n; ++k) {
    out[k] = CmpScalarF(op, static_cast<double>(a[k]),
                        static_cast<double>(b[k]));
  }
  OrBytesImpl(an, bn, onull, n);
}

JT_SIMD_ATTR static void CompareI64F64Impl(BinOp op, const int64_t* a,
                                           const double* b, const uint8_t* an,
                                           const uint8_t* bn, int64_t* out,
                                           uint8_t* onull, size_t n) {
  size_t k = 0;
  for (; k + kLanes <= n; k += kLanes) {
    VF x = __builtin_convertvector(LoadI(a + k), VF);
    VF y = LoadF(b + k);
    StoreI(out + k, CmpCombine(op, (VI)(x < y), (VI)(x > y)));
  }
  for (; k < n; ++k) out[k] = CmpScalarF(op, static_cast<double>(a[k]), b[k]);
  OrBytesImpl(an, bn, onull, n);
}

JT_SIMD_ATTR static void CompareF64I64Impl(BinOp op, const double* a,
                                           const int64_t* b, const uint8_t* an,
                                           const uint8_t* bn, int64_t* out,
                                           uint8_t* onull, size_t n) {
  size_t k = 0;
  for (; k + kLanes <= n; k += kLanes) {
    VF x = LoadF(a + k);
    VF y = __builtin_convertvector(LoadI(b + k), VF);
    StoreI(out + k, CmpCombine(op, (VI)(x < y), (VI)(x > y)));
  }
  for (; k < n; ++k) out[k] = CmpScalarF(op, a[k], static_cast<double>(b[k]));
  OrBytesImpl(an, bn, onull, n);
}

JT_SIMD_ATTR static void CompareI64RawImpl(BinOp op, const int64_t* a,
                                           const int64_t* b, const uint8_t* an,
                                           const uint8_t* bn, int64_t* out,
                                           uint8_t* onull, size_t n) {
  size_t k = 0;
  for (; k + kLanes <= n; k += kLanes) {
    VI x = LoadI(a + k), y = LoadI(b + k);
    StoreI(out + k, CmpCombine(op, x < y, x > y));
  }
  for (; k < n; ++k) out[k] = CmpScalarI(op, a[k], b[k]);
  OrBytesImpl(an, bn, onull, n);
}

JT_SIMD_ATTR static void ArithI64Impl(BinOp op, const int64_t* a,
                                      const int64_t* b, const uint8_t* an,
                                      const uint8_t* bn, int64_t* out,
                                      uint8_t* onull, size_t n) {
  size_t k = 0;
  for (; k + kLanes <= n; k += kLanes) {
    VI x = LoadI(a + k), y = LoadI(b + k);
    VI r = op == BinOp::kAdd ? x + y : op == BinOp::kSub ? x - y : x * y;
    StoreI(out + k, r);
  }
  for (; k < n; ++k) {
    out[k] = op == BinOp::kAdd   ? a[k] + b[k]
             : op == BinOp::kSub ? a[k] - b[k]
                                 : a[k] * b[k];
  }
  OrBytesImpl(an, bn, onull, n);
}

JT_SIMD_ATTR static void ArithF64Impl(BinOp op, const double* a,
                                      const double* b, const uint8_t* an,
                                      const uint8_t* bn, double* out,
                                      uint8_t* onull, size_t n) {
  OrBytesImpl(an, bn, onull, n);
  size_t k = 0;
  if (op == BinOp::kDiv) {
    for (; k + kLanes <= n; k += kLanes) {
      VF x = LoadF(a + k), y = LoadF(b + k);
      // Lanes with y == 0 become null; the inf/nan quotient written to their
      // payload is unspecified-by-contract, like every null lane.
      StoreF(out + k, x / y);
      StoreN(onull + k, LoadN(onull + k) | MaskToBytes((VI)(y == 0.0)));
    }
    for (; k < n; ++k) {
      if (b[k] == 0.0) {
        onull[k] = 1;
      } else {
        out[k] = a[k] / b[k];
      }
    }
    return;
  }
  for (; k + kLanes <= n; k += kLanes) {
    VF x = LoadF(a + k), y = LoadF(b + k);
    VF r = op == BinOp::kAdd ? x + y : op == BinOp::kSub ? x - y : x * y;
    StoreF(out + k, r);
  }
  for (; k < n; ++k) {
    out[k] = op == BinOp::kAdd   ? a[k] + b[k]
             : op == BinOp::kSub ? a[k] - b[k]
                                 : a[k] * b[k];
  }
}

JT_SIMD_ATTR static void I64ToF64Impl(const int64_t* in, double* out,
                                      size_t n) {
  size_t k = 0;
  for (; k + kLanes <= n; k += kLanes) {
    StoreF(out + k, __builtin_convertvector(LoadI(in + k), VF));
  }
  for (; k < n; ++k) out[k] = static_cast<double>(in[k]);
}

JT_SIMD_ATTR static void And3VLImpl(const int64_t* a, const int64_t* b,
                                    const uint8_t* an, const uint8_t* bn,
                                    int64_t* out, uint8_t* onull, size_t n) {
  size_t k = 0;
  for (; k + kLanes <= n; k += kLanes) {
    VI av = LoadI(a + k), bv = LoadI(b + k);
    VI anm = NullMask(LoadN(an + k)), bnm = NullMask(LoadN(bn + k));
    VI f = ((av == 0) & ~anm) | ((bv == 0) & ~bnm);  // definite false wins
    VI nl = (anm | bnm) & ~f;
    StoreI(out + k, ~(f | nl) & 1);
    StoreN(onull + k, MaskToBytes(nl));
  }
  for (; k < n; ++k) {
    int x = an[k] ? 2 : (a[k] != 0 ? 1 : 0);
    int y = bn[k] ? 2 : (b[k] != 0 ? 1 : 0);
    if (x == 0 || y == 0) {
      out[k] = 0;
      onull[k] = 0;
    } else if (x == 2 || y == 2) {
      onull[k] = 1;
    } else {
      out[k] = 1;
      onull[k] = 0;
    }
  }
}

JT_SIMD_ATTR static void Or3VLImpl(const int64_t* a, const int64_t* b,
                                   const uint8_t* an, const uint8_t* bn,
                                   int64_t* out, uint8_t* onull, size_t n) {
  size_t k = 0;
  for (; k + kLanes <= n; k += kLanes) {
    VI av = LoadI(a + k), bv = LoadI(b + k);
    VI anm = NullMask(LoadN(an + k)), bnm = NullMask(LoadN(bn + k));
    VI t = ((av != 0) & ~anm) | ((bv != 0) & ~bnm);  // definite true wins
    VI nl = (anm | bnm) & ~t;
    StoreI(out + k, t & 1);
    StoreN(onull + k, MaskToBytes(nl));
  }
  for (; k < n; ++k) {
    int x = an[k] ? 2 : (a[k] != 0 ? 1 : 0);
    int y = bn[k] ? 2 : (b[k] != 0 ? 1 : 0);
    if (x == 1 || y == 1) {
      out[k] = 1;
      onull[k] = 0;
    } else if (x == 2 || y == 2) {
      onull[k] = 1;
    } else {
      out[k] = 0;
      onull[k] = 0;
    }
  }
}

JT_SIMD_ATTR static void BoolPassBytesImpl(const int64_t* vals,
                                           const uint8_t* nulls, uint8_t* pass,
                                           size_t n) {
  size_t k = 0;
  for (; k + kLanes <= n; k += kLanes) {
    VN nz = MaskToBytes(LoadI(vals + k) != 0);
    VN notnull = (VN)((VNS)(LoadN(nulls + k) == 0)) & 1;
    StoreN(pass + k, nz & notnull);
  }
  for (; k < n; ++k) {
    pass[k] = static_cast<uint8_t>(nulls[k] == 0 && vals[k] != 0);
  }
}

JT_SIMD_ATTR static void HashI64Impl(const int64_t* v, const uint8_t* nulls,
                                     uint64_t null_hash, uint64_t* out,
                                     size_t n) {
  const VU nh = SplatU(null_hash);
  size_t k = 0;
  for (; k + kLanes <= n; k += kLanes) {
    VU x = (VU)LoadI(v + k);
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    VU nm = (VU)NullMask(LoadN(nulls + k));
    StoreU(out + k, (nm & nh) | (~nm & x));
  }
  for (; k < n; ++k) {
    out[k] = nulls[k] ? null_hash : HashInt(static_cast<uint64_t>(v[k]));
  }
}

JT_SIMD_ATTR static void HashCombineImpl(uint64_t* acc, const uint64_t* h,
                                         size_t n) {
  size_t k = 0;
  for (; k + kLanes <= n; k += kLanes) {
    VU a = LoadU(acc + k), b = LoadU(h + k);
    StoreU(acc + k, a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4)));
  }
  for (; k < n; ++k) acc[k] = HashCombine(acc[k], h[k]);
}
