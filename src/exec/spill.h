// Spill-to-disk row runs for memory-governed operators.
//
// When a hash join build side or an aggregation table would exceed the
// query's memory budget (util/resource_governor.h), the operator partitions
// its input by the already-computed key hash into SpillFile runs — LZ4-framed
// blocks in unlinked temp files — and processes one partition at a time.
// Skewed partitions repartition recursively on a different range of hash
// bits per depth, so identical work always lands in one partition eventually
// (a depth cap forces in-memory processing for unsplittable key skew).
//
// Each row is serialized together with its 64-bit key hash, so repartitioning
// never re-evaluates key expressions: depth d routes on bits
// [61-3d, 64-3d) of the stored hash. Values round-trip exactly (type, scale,
// payload), which keeps re-evaluated hashes and comparisons bit-identical to
// the in-memory path.

#ifndef JSONTILES_EXEC_SPILL_H_
#define JSONTILES_EXEC_SPILL_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "exec/value.h"
#include "util/arena.h"
#include "util/resource_governor.h"
#include "util/status.h"
#include "util/temp_file.h"

namespace jsontiles::exec {

using Row = std::vector<Value>;
using RowSet = std::vector<Row>;

/// Counters one operator accumulates across all its spill activity; surfaced
/// as `spilled_bytes` / `spill_partitions` in EXPLAIN ANALYZE.
struct SpillStats {
  uint64_t spilled_bytes = 0;   // bytes written to temp files (after framing)
  uint64_t partitions = 0;      // partition files that reached disk
  uint64_t forced_inmem = 0;    // partitions processed in memory at depth cap
};

/// Partition fanout per recursion level (3 hash bits).
inline constexpr size_t kSpillFanout = 8;
/// Beyond this depth a partition is processed in memory regardless of the
/// budget: its keys are unsplittable (all hash bits exhausted or identical).
inline constexpr size_t kMaxSpillDepth = 12;

/// Partition index of `hash` at recursion depth `depth` (0 = first spill).
inline size_t SpillPartitionOf(uint64_t hash, size_t depth) {
  const int shift = 61 - 3 * static_cast<int>(depth);
  return static_cast<size_t>((shift >= 0 ? hash >> shift : hash) &
                             (kSpillFanout - 1));
}

/// Rough bytes a Row occupies when held in an operator hash table: the Value
/// array plus string payloads plus container overhead. Used for budget
/// charges; deliberately a slight over-estimate.
size_t ApproxRowBytes(const Row& row);

/// One partition run: append (hash, row) records, then stream or materialize
/// them back. Rows serialize into 64 KiB blocks; full blocks are LZ4
/// compressed and framed as [u32 raw_size][u32 comp_size][payload]
/// (comp_size 0 = stored raw) in an unlinked temp file. Not thread-safe.
class SpillFile {
 public:
  /// `dir` empty = $TMPDIR (else /tmp). `stats` (may be null) receives the
  /// bytes/partition counters as blocks reach disk. `disk` (may be null) is
  /// the shared temp-disk governor: every block reserves its framed size
  /// before the write and the reservation is returned when this run is
  /// destroyed (or replaced), so concurrent spilling queries share one cap.
  /// A refused reserve surfaces as ResourceExhausted from Add/Finish.
  SpillFile(std::string dir, SpillStats* stats, DiskBudget* disk = nullptr)
      : dir_(std::move(dir)), stats_(stats), disk_(disk) {}

  ~SpillFile() { ReleaseDisk(); }

  SpillFile(SpillFile&& other) noexcept { *this = std::move(other); }
  SpillFile& operator=(SpillFile&& other) noexcept {
    if (this != &other) {
      ReleaseDisk();
      dir_ = std::move(other.dir_);
      stats_ = std::exchange(other.stats_, nullptr);
      disk_ = std::exchange(other.disk_, nullptr);
      disk_held_ = std::exchange(other.disk_held_, 0);
      file_ = std::move(other.file_);
      buf_ = std::move(other.buf_);
      rows_ = std::exchange(other.rows_, 0);
      raw_bytes_ = std::exchange(other.raw_bytes_, 0);
      finished_ = std::exchange(other.finished_, false);
    }
    return *this;
  }
  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;

  /// Serialize one record; writes a block when the buffer fills.
  Status Add(uint64_t hash, const Row& row);

  /// Write any buffered tail block. Required before ForEach/ReadAll.
  Status Finish();

  uint64_t rows() const { return rows_; }
  /// Serialized (uncompressed) bytes — the read-back memory estimate.
  uint64_t raw_bytes() const { return raw_bytes_; }

  /// Stream records back in insertion order. String payloads are copied into
  /// `arena`; with a null arena they view the internal block buffer and are
  /// only valid during the callback (enough to re-serialize elsewhere).
  Status ForEach(Arena* arena,
                 const std::function<Status(uint64_t hash, Row&& row)>& cb);

  /// Materialize every record (strings into `arena`).
  Status ReadAll(Arena* arena, RowSet* out);

 private:
  Status WriteBlock();
  void ReleaseDisk() {
    if (disk_ != nullptr && disk_held_ > 0) disk_->Release(disk_held_);
    disk_held_ = 0;
  }

  std::string dir_;
  SpillStats* stats_ = nullptr;
  DiskBudget* disk_ = nullptr;
  uint64_t disk_held_ = 0;  // reserved against disk_, returned on destruction
  TempFile file_;           // created lazily by the first WriteBlock
  std::vector<uint8_t> buf_;
  uint64_t rows_ = 0;
  uint64_t raw_bytes_ = 0;
  bool finished_ = false;
};

}  // namespace jsontiles::exec

#endif  // JSONTILES_EXEC_SPILL_H_
