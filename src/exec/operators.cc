#include "exec/operators.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "obs/obs.h"
#include "obs/plan_profile.h"
#include "util/hash.h"
#include "util/logging.h"

namespace jsontiles::exec {

namespace {

uint64_t HashKeys(const std::vector<ExprPtr>& keys, const Value* slots,
                  Arena* arena) {
  uint64_t h = 0x2545F4914F6CDD1DULL;
  for (const auto& k : keys) {
    h = HashCombine(h, EvalExpr(*k, slots, arena).Hash());
  }
  return h;
}

bool KeysEqual(const std::vector<Value>& a, const std::vector<Value>& b) {
  for (size_t i = 0; i < a.size(); i++) {
    // Join keys: SQL equality — null never matches null.
    if (a[i].is_null() || b[i].is_null()) return false;
    if (!a[i].EqualsForGrouping(b[i])) return false;
  }
  return true;
}

std::vector<Value> EvalKeyList(const std::vector<ExprPtr>& keys,
                               const Value* slots, Arena* arena) {
  std::vector<Value> out;
  out.reserve(keys.size());
  for (const auto& k : keys) out.push_back(EvalExpr(*k, slots, arena));
  return out;
}

}  // namespace

RowSet FilterExec(RowSet in, const ExprPtr& predicate, QueryContext& ctx) {
  if (predicate == nullptr) return in;
  JSONTILES_TRACE_SPAN("exec.filter");
  obs::OperatorProfiler prof(ctx.profile, "Filter");
  prof.set_rows_in(in.size());
  Arena* arena = ctx.arena(0);
  RowSet out;
  out.reserve(in.size());
  for (auto& row : in) {
    Value keep = EvalExpr(*predicate, row.data(), arena);
    if (!keep.is_null() && keep.bool_value()) out.push_back(std::move(row));
  }
  prof.set_rows_out(out.size());
  return out;
}

RowSet ProjectExec(const RowSet& in, const std::vector<ExprPtr>& exprs,
                   QueryContext& ctx) {
  JSONTILES_TRACE_SPAN("exec.project");
  obs::OperatorProfiler prof(ctx.profile, "Project",
                             std::to_string(exprs.size()) + " exprs");
  prof.set_rows_in(in.size());
  prof.set_rows_out(in.size());
  Arena* arena = ctx.arena(0);
  RowSet out;
  out.reserve(in.size());
  for (const auto& row : in) {
    Row projected;
    projected.reserve(exprs.size());
    for (const auto& e : exprs) projected.push_back(EvalExpr(*e, row.data(), arena));
    out.push_back(std::move(projected));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

namespace {

struct Accumulator {
  // Sum: integer until a float arrives.
  int64_t sum_i = 0;
  double sum_d = 0;
  bool sum_is_float = false;
  bool sum_seen = false;
  int64_t count = 0;  // non-null args (kCount) or rows (kCountStar)
  Value min, max;
  std::unordered_set<uint64_t> distinct;  // hash-based distinct

  void AddValue(AggSpec::Kind kind, const Value& v) {
    switch (kind) {
      case AggSpec::Kind::kCountStar:
        count++;
        return;
      case AggSpec::Kind::kCount:
        if (!v.is_null()) count++;
        return;
      case AggSpec::Kind::kSum:
      case AggSpec::Kind::kAvg:
        if (v.is_null()) return;
        count++;
        sum_seen = true;
        if (v.type == ValueType::kInt && !sum_is_float) {
          sum_i += v.i;
        } else {
          if (!sum_is_float) {
            sum_d = static_cast<double>(sum_i);
            sum_is_float = true;
          }
          sum_d += v.AsDouble();
        }
        return;
      case AggSpec::Kind::kMin:
        if (v.is_null()) return;
        if (min.is_null() || v.Compare(min) < 0) min = v;
        return;
      case AggSpec::Kind::kMax:
        if (v.is_null()) return;
        if (max.is_null() || v.Compare(max) > 0) max = v;
        return;
      case AggSpec::Kind::kCountDistinct:
        if (!v.is_null()) distinct.insert(v.Hash());
        return;
    }
  }

  void Merge(AggSpec::Kind kind, const Accumulator& other) {
    switch (kind) {
      case AggSpec::Kind::kCountStar:
      case AggSpec::Kind::kCount:
        count += other.count;
        return;
      case AggSpec::Kind::kSum:
      case AggSpec::Kind::kAvg:
        count += other.count;
        sum_seen |= other.sum_seen;
        if (other.sum_is_float || sum_is_float) {
          if (!sum_is_float) {
            sum_d = static_cast<double>(sum_i);
            sum_is_float = true;
          }
          sum_d += other.sum_is_float ? other.sum_d
                                      : static_cast<double>(other.sum_i);
        } else {
          sum_i += other.sum_i;
        }
        return;
      case AggSpec::Kind::kMin:
        if (!other.min.is_null() && (min.is_null() || other.min.Compare(min) < 0)) {
          min = other.min;
        }
        return;
      case AggSpec::Kind::kMax:
        if (!other.max.is_null() && (max.is_null() || other.max.Compare(max) > 0)) {
          max = other.max;
        }
        return;
      case AggSpec::Kind::kCountDistinct:
        distinct.insert(other.distinct.begin(), other.distinct.end());
        return;
    }
  }

  Value Finalize(AggSpec::Kind kind) const {
    switch (kind) {
      case AggSpec::Kind::kCountStar:
      case AggSpec::Kind::kCount:
        return Value::Int(count);
      case AggSpec::Kind::kSum:
        if (!sum_seen) return Value::Null();
        return sum_is_float ? Value::Float(sum_d) : Value::Int(sum_i);
      case AggSpec::Kind::kAvg: {
        if (count == 0) return Value::Null();
        double total = sum_is_float ? sum_d : static_cast<double>(sum_i);
        return Value::Float(total / static_cast<double>(count));
      }
      case AggSpec::Kind::kMin: return min;
      case AggSpec::Kind::kMax: return max;
      case AggSpec::Kind::kCountDistinct:
        return Value::Int(static_cast<int64_t>(distinct.size()));
    }
    return Value::Null();
  }
};

struct Group {
  std::vector<Value> keys;
  std::vector<Accumulator> accs;
};

using GroupMap = std::unordered_map<uint64_t, std::vector<Group>>;

void Accumulate(GroupMap& groups, const std::vector<ExprPtr>& group_by,
                const std::vector<AggSpec>& aggs, const Row& row, Arena* arena) {
  uint64_t h = HashKeys(group_by, row.data(), arena);
  std::vector<Value> keys = EvalKeyList(group_by, row.data(), arena);
  auto& bucket = groups[h];
  Group* group = nullptr;
  for (auto& g : bucket) {
    bool equal = true;
    for (size_t i = 0; i < keys.size() && equal; i++) {
      equal = g.keys[i].EqualsForGrouping(keys[i]);
    }
    if (equal) {
      group = &g;
      break;
    }
  }
  if (group == nullptr) {
    bucket.push_back(Group{std::move(keys), std::vector<Accumulator>(aggs.size())});
    group = &bucket.back();
  }
  for (size_t a = 0; a < aggs.size(); a++) {
    Value v = aggs[a].arg != nullptr ? EvalExpr(*aggs[a].arg, row.data(), arena)
                                     : Value::Null();
    group->accs[a].AddValue(aggs[a].kind, v);
  }
}

}  // namespace

RowSet AggregateExec(const RowSet& in, const std::vector<ExprPtr>& group_by,
                     const std::vector<AggSpec>& aggs, QueryContext& ctx) {
  JSONTILES_TRACE_SPAN("exec.aggregate");
  obs::OperatorProfiler prof(ctx.profile, "Aggregate",
                             std::to_string(group_by.size()) + " keys, " +
                                 std::to_string(aggs.size()) + " aggs");
  prof.set_rows_in(in.size());
  const size_t parallel_threshold = 16384;
  std::vector<GroupMap> partials;

  if (ctx.pool() != nullptr && in.size() >= parallel_threshold) {
    size_t workers = ctx.num_workers();
    partials.resize(workers);
    size_t chunk = (in.size() + workers - 1) / workers;
    ctx.pool()->ParallelFor(
        workers,
        [&](size_t w, size_t) {
          size_t begin = w * chunk;
          size_t end = std::min(begin + chunk, in.size());
          Arena* arena = ctx.arena(w);
          for (size_t r = begin; r < end; r++) {
            Accumulate(partials[w], group_by, aggs, in[r], arena);
          }
        },
        1);
  } else {
    partials.resize(1);
    Arena* arena = ctx.arena(0);
    for (const auto& row : in) Accumulate(partials[0], group_by, aggs, row, arena);
  }

  // Merge partials into the first map.
  GroupMap& merged = partials[0];
  for (size_t p = 1; p < partials.size(); p++) {
    for (auto& [h, bucket] : partials[p]) {
      auto& dst_bucket = merged[h];
      for (auto& g : bucket) {
        Group* target = nullptr;
        for (auto& existing : dst_bucket) {
          bool equal = true;
          for (size_t i = 0; i < g.keys.size() && equal; i++) {
            equal = existing.keys[i].EqualsForGrouping(g.keys[i]);
          }
          if (equal) {
            target = &existing;
            break;
          }
        }
        if (target == nullptr) {
          dst_bucket.push_back(std::move(g));
        } else {
          for (size_t a = 0; a < aggs.size(); a++) {
            target->accs[a].Merge(aggs[a].kind, g.accs[a]);
          }
        }
      }
    }
  }

  RowSet out;
  for (auto& [h, bucket] : merged) {
    (void)h;
    for (auto& g : bucket) {
      Row row;
      row.reserve(group_by.size() + aggs.size());
      for (auto& k : g.keys) row.push_back(k);
      for (size_t a = 0; a < aggs.size(); a++) {
        row.push_back(g.accs[a].Finalize(aggs[a].kind));
      }
      out.push_back(std::move(row));
    }
  }
  // Global aggregate of empty input still yields one row.
  if (group_by.empty() && out.empty()) {
    Row row;
    std::vector<Accumulator> accs(aggs.size());
    for (size_t a = 0; a < aggs.size(); a++) {
      row.push_back(accs[a].Finalize(aggs[a].kind));
    }
    out.push_back(std::move(row));
  }
  prof.set_rows_out(out.size());
  return out;
}

// ---------------------------------------------------------------------------
// Hash join
// ---------------------------------------------------------------------------

RowSet HashJoinExec(const RowSet& build, const RowSet& probe,
                    const std::vector<ExprPtr>& build_keys,
                    const std::vector<ExprPtr>& probe_keys, JoinType type,
                    const ExprPtr& residual, QueryContext& ctx) {
  JSONTILES_CHECK(build_keys.size() == probe_keys.size());
  JSONTILES_TRACE_SPAN("exec.hash_join");
  const char* join_name = type == JoinType::kInner  ? "inner"
                          : type == JoinType::kLeft ? "left"
                          : type == JoinType::kSemi ? "semi"
                                                    : "anti";
  obs::OperatorProfiler prof(ctx.profile, "HashJoin", join_name);
  prof.set_rows_in(build.size() + probe.size());
  prof.AddCounter("build_rows", static_cast<int64_t>(build.size()));
  prof.AddCounter("probe_rows", static_cast<int64_t>(probe.size()));
  Arena* arena = ctx.arena(0);

  // Build phase.
  std::unordered_map<uint64_t, std::vector<size_t>> table;
  std::vector<std::vector<Value>> build_key_values;
  build_key_values.reserve(build.size());
  table.reserve(build.size() * 2);
  for (size_t b = 0; b < build.size(); b++) {
    build_key_values.push_back(EvalKeyList(build_keys, build[b].data(), arena));
    bool has_null = false;
    for (const auto& v : build_key_values.back()) has_null |= v.is_null();
    if (has_null) continue;  // null keys never match
    table[HashKeys(build_keys, build[b].data(), arena)].push_back(b);
  }
  const size_t build_width = build.empty() ? 0 : build[0].size();

  // Probe phase (parallel chunks).
  auto probe_chunk = [&](size_t begin, size_t end, Arena* worker_arena,
                         RowSet* out) {
    std::vector<Value> combined;
    for (size_t p = begin; p < end; p++) {
      const Row& prow = probe[p];
      std::vector<Value> pkeys = EvalKeyList(probe_keys, prow.data(), worker_arena);
      bool has_null = false;
      for (const auto& v : pkeys) has_null |= v.is_null();
      bool matched = false;
      if (!has_null) {
        uint64_t h = HashKeys(probe_keys, prow.data(), worker_arena);
        auto it = table.find(h);
        if (it != table.end()) {
          for (size_t b : it->second) {
            if (!KeysEqual(build_key_values[b], pkeys)) continue;
            // Residual predicate over [probe..., build...].
            if (residual != nullptr) {
              combined.assign(prow.begin(), prow.end());
              combined.insert(combined.end(), build[b].begin(), build[b].end());
              Value keep = EvalExpr(*residual, combined.data(), worker_arena);
              if (keep.is_null() || !keep.bool_value()) continue;
            }
            matched = true;
            if (type == JoinType::kInner || type == JoinType::kLeft) {
              Row out_row;
              out_row.reserve(prow.size() + build_width);
              out_row.insert(out_row.end(), prow.begin(), prow.end());
              out_row.insert(out_row.end(), build[b].begin(), build[b].end());
              out->push_back(std::move(out_row));
            } else {
              break;  // semi/anti need only existence
            }
          }
        }
      }
      switch (type) {
        case JoinType::kInner:
          break;
        case JoinType::kLeft:
          if (!matched) {
            Row out_row;
            out_row.reserve(prow.size() + build_width);
            out_row.insert(out_row.end(), prow.begin(), prow.end());
            for (size_t i = 0; i < build_width; i++) out_row.push_back(Value::Null());
            out->push_back(std::move(out_row));
          }
          break;
        case JoinType::kSemi:
          if (matched) out->push_back(prow);
          break;
        case JoinType::kAnti:
          if (!matched) out->push_back(prow);
          break;
      }
    }
  };

  const size_t parallel_threshold = 16384;
  if (ctx.pool() != nullptr && probe.size() >= parallel_threshold) {
    size_t workers = ctx.num_workers();
    std::vector<RowSet> partials(workers);
    size_t chunk = (probe.size() + workers - 1) / workers;
    ctx.pool()->ParallelFor(
        workers,
        [&](size_t w, size_t) {
          size_t begin = w * chunk;
          size_t end = std::min(begin + chunk, probe.size());
          if (begin < end) probe_chunk(begin, end, ctx.arena(w), &partials[w]);
        },
        1);
    size_t total = 0;
    for (const auto& p : partials) total += p.size();
    RowSet out;
    out.reserve(total);
    for (auto& p : partials) {
      for (auto& row : p) out.push_back(std::move(row));
    }
    prof.set_rows_out(out.size());
    return out;
  }
  RowSet out;
  probe_chunk(0, probe.size(), arena, &out);
  prof.set_rows_out(out.size());
  return out;
}

RowSet SortExec(RowSet in, const std::vector<SortKey>& keys, QueryContext& ctx) {
  JSONTILES_TRACE_SPAN("exec.sort");
  obs::OperatorProfiler prof(ctx.profile, "Sort",
                             std::to_string(keys.size()) + " keys");
  prof.set_rows_in(in.size());
  prof.set_rows_out(in.size());
  Arena* arena = ctx.arena(0);
  std::stable_sort(in.begin(), in.end(), [&](const Row& a, const Row& b) {
    for (const auto& key : keys) {
      Value va = EvalExpr(*key.expr, a.data(), arena);
      Value vb = EvalExpr(*key.expr, b.data(), arena);
      int cmp;
      if (va.is_null() || vb.is_null()) {
        // PostgreSQL default: nulls sort as the largest value (last when
        // ascending, first when descending).
        cmp = va.is_null() == vb.is_null() ? 0 : va.is_null() ? 1 : -1;
      } else {
        cmp = va.Compare(vb);
      }
      if (cmp != 0) return key.descending ? cmp > 0 : cmp < 0;
    }
    return false;
  });
  return in;
}

RowSet LimitExec(RowSet in, size_t limit) {
  if (in.size() > limit) in.resize(limit);
  return in;
}

RowSet LimitExec(RowSet in, size_t limit, QueryContext& ctx) {
  obs::OperatorProfiler prof(ctx.profile, "Limit", std::to_string(limit));
  prof.set_rows_in(in.size());
  if (in.size() > limit) in.resize(limit);
  prof.set_rows_out(in.size());
  return in;
}

}  // namespace jsontiles::exec
