#include "exec/operators.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "exec/agg_state.h"
#include "exec/expr_compile.h"
#include "exec/float_sum.h"
#include "exec/simd.h"
#include "exec/spill.h"
#include "exec/vector_batch.h"
#include "obs/obs.h"
#include "obs/plan_profile.h"
#include "util/failpoint.h"
#include "util/hash.h"
#include "util/logging.h"
#include "util/resource_governor.h"

namespace jsontiles::exec {

namespace {

// kKeyHashSeed / kPerRowTableOverhead / TotalValueOrder live in
// exec/agg_state.h: the distributed exchange shares them with this file so
// worker partials hash and tie-break exactly like local aggregation.

// Copy every string payload of `row` into `arena`. Output rows of a spilled
// partition reference strings in the partition's read-back arena, which dies
// when the partition finishes — rescue them into a query-lifetime arena.
void RescueRowStrings(Row* row, Arena* arena) {
  for (Value& v : *row) {
    if (v.type == ValueType::kString && !v.s.empty()) {
      uint8_t* copy = arena->AllocateCopy(v.s.data(), v.s.size());
      v.s = std::string_view(reinterpret_cast<const char*>(copy), v.s.size());
    }
  }
}

// Emit the spill counters on an operator node (only when it actually
// spilled, so unconstrained plans stay unchanged). Closes the ROADMAP item:
// EXPLAIN ANALYZE reports spilled bytes once operators spill. Also
// accumulates the query-level spill total the multi-tenant service exposes
// as the per-group quota-spill metric.
void ReportSpill(obs::OperatorProfiler& prof, const SpillStats& stats,
                 QueryContext& ctx) {
  ctx.spilled_bytes += stats.spilled_bytes;
  if (stats.spilled_bytes > 0) {
    prof.AddCounter("spilled_bytes",
                    static_cast<int64_t>(stats.spilled_bytes));
    prof.AddCounter("spill_partitions",
                    static_cast<int64_t>(stats.partitions));
    JSONTILES_COUNTER_ADD("exec.spill.bytes",
                          static_cast<int64_t>(stats.spilled_bytes));
    JSONTILES_COUNTER_ADD("exec.spill.partitions",
                          static_cast<int64_t>(stats.partitions));
  }
  if (stats.forced_inmem > 0) {
    prof.AddCounter("spill_forced_inmem",
                    static_cast<int64_t>(stats.forced_inmem));
  }
}

// Reports the query's arena growth across one operator as an `arena_bytes`
// counter (see QueryContext::arena_bytes()). Declare after the profiler so
// the counter lands before the profiler's destructor stamps the node.
class ArenaCounter {
 public:
  ArenaCounter(obs::OperatorProfiler& prof, QueryContext& ctx)
      : prof_(prof), ctx_(ctx), before_(prof.active() ? ctx.arena_bytes() : 0) {}
  ~ArenaCounter() {
    if (prof_.active()) {
      prof_.AddCounter("arena_bytes",
                       static_cast<int64_t>(ctx_.arena_bytes() - before_));
    }
  }

 private:
  obs::OperatorProfiler& prof_;
  QueryContext& ctx_;
  size_t before_;
};

bool KeysEqual(const std::vector<Value>& a, const std::vector<Value>& b) {
  for (size_t i = 0; i < a.size(); i++) {
    // Join keys: SQL equality — null never matches null.
    if (a[i].is_null() || b[i].is_null()) return false;
    if (!a[i].EqualsForGrouping(b[i])) return false;
  }
  return true;
}

// Infer the static type of every slot in `slots` from a full pass over the
// rows (an all-null slot stays kNull). Returns false — disabling compiled
// evaluation — when a slot is out of range or holds mixed non-null types
// (e.g. a SUM that came back Int for one group and Float for another).
bool InferSlotTypes(const RowSet& rows, const std::vector<int>& slots,
                    std::vector<ValueType>* types) {
  for (int s : slots) {
    if (s < 0 || static_cast<size_t>(s) >= types->size()) return false;
  }
  for (const Row& row : rows) {
    for (int s : slots) {
      const Value& v = row[s];
      if (v.is_null()) continue;
      ValueType& t = (*types)[s];
      if (t == ValueType::kNull) {
        t = v.type;
      } else if (t != v.type) {
        return false;
      }
    }
  }
  return true;
}

// Compiled batch evaluation of a fixed expression list over a RowSet.
// Construction infers slot types and compiles what it can; expressions that
// do not compile (or everything, when disabled) are interpreted per row by
// Get(). Copy instances per worker — LoadBatch/Get are not thread-safe.
class BatchedExprs {
 public:
  BatchedExprs(const RowSet& rows, std::vector<const Expr*> exprs, bool enable)
      : exprs_(std::move(exprs)) {
    if (!enable || rows.empty() || exprs_.empty()) return;
    const size_t num_slots = rows[0].size();
    slot_types_.assign(num_slots, ValueType::kNull);
    std::vector<int> all_slots;
    for (const Expr* e : exprs_) CollectSlotRefs(*e, &all_slots);
    if (!InferSlotTypes(rows, all_slots, &slot_types_)) return;
    programs_.resize(exprs_.size());
    compiled_.assign(exprs_.size(), 0);
    size_t num_compiled = 0;
    for (size_t i = 0; i < exprs_.size(); i++) {
      if (CompiledExpr::Compile(*exprs_[i], slot_types_, &programs_[i])) {
        compiled_[i] = 1;
        num_compiled++;
        for (int s : programs_[i].slots_used()) used_slots_.push_back(s);
      }
    }
    if (num_compiled == 0) return;
    std::sort(used_slots_.begin(), used_slots_.end());
    used_slots_.erase(std::unique(used_slots_.begin(), used_slots_.end()),
                      used_slots_.end());
    slot_vecs_.resize(num_slots);
    results_.resize(exprs_.size());
    enabled_ = true;
  }

  bool enabled() const { return enabled_; }

  /// Gather slots and run every compiled program over rows [begin, begin+n).
  void LoadBatch(const RowSet& rows, size_t begin, size_t n, Arena* arena) {
    sel_.SetAll(n);
    for (int s : used_slots_) {
      ColumnVector& vec = slot_vecs_[s];
      vec.Reset(slot_types_[s]);
      for (size_t k = 0; k < n; k++) vec.SetValue(k, rows[begin + k][s]);
    }
    for (size_t i = 0; i < exprs_.size(); i++) {
      if (compiled_[i]) {
        results_[i] = &programs_[i].Run(slot_vecs_.data(), sel_, arena);
      }
    }
  }

  /// Value of expression e for batch lane k (row = the matching input row).
  Value Get(size_t e, size_t k, const Row& row, Arena* arena) const {
    if (enabled_ && compiled_[e]) return results_[e]->GetValue(k);
    return EvalExpr(*exprs_[e], row.data(), arena);
  }

  /// Raw compiled result vector for expression e, or nullptr when e did not
  /// compile (callers must then go through Get). Valid until next LoadBatch.
  const ColumnVector* Result(size_t e) const {
    return enabled_ && compiled_[e] ? results_[e] : nullptr;
  }

 private:
  std::vector<const Expr*> exprs_;
  std::vector<CompiledExpr> programs_;
  std::vector<uint8_t> compiled_;
  std::vector<int> used_slots_;
  std::vector<ValueType> slot_types_;
  std::vector<ColumnVector> slot_vecs_;
  std::vector<const ColumnVector*> results_;
  SelectionVector sel_;
  bool enabled_ = false;
};

std::vector<const Expr*> RawExprs(const std::vector<ExprPtr>& exprs) {
  std::vector<const Expr*> out;
  out.reserve(exprs.size());
  for (const auto& e : exprs) out.push_back(e.get());
  return out;
}

}  // namespace

RowSet FilterExec(RowSet in, const ExprPtr& predicate, QueryContext& ctx) {
  if (predicate == nullptr) return in;
  JSONTILES_TRACE_SPAN("exec.filter");
  obs::OperatorProfiler prof(ctx.profile, "Filter");
  prof.set_rows_in(in.size());
  ArenaCounter arena_counter(prof, ctx);
  Arena* arena = ctx.arena(0);
  RowSet out;
  out.reserve(in.size());

  // Vectorized path: compile the predicate conjunct-by-conjunct against slot
  // types inferred from the rows, then filter batch-at-a-time with
  // selection-vector intersection (slots are gathered lazily per conjunct,
  // only for still-selected lanes).
  if (ctx.options().enable_vectorized && !in.empty()) {
    std::vector<ValueType> slot_types(in[0].size(), ValueType::kNull);
    std::vector<int> slots;
    CollectSlotRefs(*predicate, &slots);
    if (InferSlotTypes(in, slots, &slot_types)) {
      CompiledPredicate pred = CompiledPredicate::Compile(predicate, slot_types);
      if (pred.any_compiled()) {
        std::vector<ColumnVector> slot_vecs(in[0].size());
        std::vector<uint8_t> ready(in[0].size(), 0);
        SelectionVector sel;
        int64_t batches = 0;
        for (size_t b = 0; b < in.size(); b += kVectorSize) {
          const size_t n = std::min(kVectorSize, in.size() - b);
          batches++;
          sel.SetAll(n);
          std::fill(ready.begin(), ready.end(), 0);
          for (auto& cj : pred.conjuncts()) {
            for (int s : cj.slots) {
              if (ready[s]) continue;
              ready[s] = 1;
              ColumnVector& vec = slot_vecs[s];
              vec.Reset(slot_types[s]);
              for (size_t k = 0; k < sel.count; k++) {
                const uint16_t r = sel.idx[k];
                vec.SetValue(r, in[b + r][s]);
              }
            }
            IntersectSelection(cj.program.Run(slot_vecs.data(), sel, arena),
                               &sel);
            if (sel.empty()) break;
          }
          for (size_t k = 0; k < sel.count; k++) {
            Row& row = in[b + sel.idx[k]];
            bool keep_row = true;
            for (const auto& res : pred.residuals()) {
              Value keep = EvalExpr(*res, row.data(), arena);
              if (keep.is_null() || !keep.bool_value()) {
                keep_row = false;
                break;
              }
            }
            if (keep_row) out.push_back(std::move(row));
          }
        }
        prof.AddCounter("vec_batches", batches);
        JSONTILES_COUNTER_ADD("exec.vec.batches", batches);
        prof.set_rows_out(out.size());
        return out;
      }
    }
  }

  for (auto& row : in) {
    Value keep = EvalExpr(*predicate, row.data(), arena);
    if (!keep.is_null() && keep.bool_value()) out.push_back(std::move(row));
  }
  prof.set_rows_out(out.size());
  return out;
}

RowSet ProjectExec(const RowSet& in, const std::vector<ExprPtr>& exprs,
                   QueryContext& ctx) {
  JSONTILES_TRACE_SPAN("exec.project");
  obs::OperatorProfiler prof(ctx.profile, "Project",
                             std::to_string(exprs.size()) + " exprs");
  prof.set_rows_in(in.size());
  prof.set_rows_out(in.size());
  ArenaCounter arena_counter(prof, ctx);
  Arena* arena = ctx.arena(0);
  RowSet out;
  out.reserve(in.size());
  BatchedExprs batched(in, RawExprs(exprs), ctx.options().enable_vectorized);
  for (size_t b = 0; b < in.size(); b += kVectorSize) {
    const size_t n = std::min(kVectorSize, in.size() - b);
    if (batched.enabled()) batched.LoadBatch(in, b, n, arena);
    for (size_t k = 0; k < n; k++) {
      const Row& row = in[b + k];
      Row projected;
      projected.reserve(exprs.size());
      for (size_t e = 0; e < exprs.size(); e++) {
        projected.push_back(batched.Get(e, k, row, arena));
      }
      out.push_back(std::move(projected));
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

namespace {

// Accumulator / AggGroup / AggGroupMap moved to exec/agg_state.h so the
// distributed exchange can build worker-side partials and merge them in the
// coordinator through the same order-independent state.

// One row into the group map. When `batched` is set, group keys and agg args
// come from the compiled batch results (`lane` = row's index in the current
// batch); otherwise they are interpreted per row. `agg_expr_idx[a]` maps agg
// a to its argument's index in the batched expression list (-1 = COUNT(*)).
// Returns the approximate bytes newly allocated (non-zero only when this row
// created a group) so callers can charge the memory budget.
size_t Accumulate(AggGroupMap& groups, const std::vector<ExprPtr>& group_by,
                  const std::vector<AggSpec>& aggs,
                  const std::vector<int>& agg_expr_idx, const Row& row,
                  Arena* arena, const BatchedExprs* batched, size_t lane) {
  uint64_t h = kKeyHashSeed;
  std::vector<Value> keys;
  keys.reserve(group_by.size());
  size_t key_bytes = 0;
  for (size_t g = 0; g < group_by.size(); g++) {
    Value v = batched != nullptr
                  ? batched->Get(g, lane, row, arena)
                  : EvalExpr(*group_by[g], row.data(), arena);
    h = HashCombine(h, v.Hash());
    if (v.type == ValueType::kString) key_bytes += v.s.size();
    keys.push_back(v);
  }
  auto& bucket = groups[h];
  AggGroup* group = nullptr;
  for (auto& g : bucket) {
    bool equal = true;
    for (size_t i = 0; i < keys.size() && equal; i++) {
      equal = g.keys[i].EqualsForGrouping(keys[i]);
    }
    if (equal) {
      group = &g;
      break;
    }
  }
  size_t new_bytes = 0;
  if (group == nullptr) {
    bucket.push_back(AggGroup{std::move(keys), std::vector<Accumulator>(aggs.size())});
    group = &bucket.back();
    new_bytes = sizeof(AggGroup) + aggs.size() * sizeof(Accumulator) +
                group_by.size() * sizeof(Value) + key_bytes +
                kPerRowTableOverhead;
  }
  for (size_t a = 0; a < aggs.size(); a++) {
    Value v = Value::Null();
    if (aggs[a].arg != nullptr) {
      v = batched != nullptr
              ? batched->Get(static_cast<size_t>(agg_expr_idx[a]), lane, row,
                             arena)
              : EvalExpr(*aggs[a].arg, row.data(), arena);
    }
    group->accs[a].AddValue(aggs[a].kind, v);
  }
  return new_bytes;
}

// In-memory aggregation over `in`. When `budgeted`, scratch memory (group
// table) is reserved against ctx.budget() as groups are created; a refused
// charge drops all partial state, sets *aborted and returns OK — the caller
// then takes the spill path. With `budgeted` false the table grows freely
// (the forced path at the spill depth cap).
Status AggregateInMemory(const RowSet& in, const std::vector<ExprPtr>& group_by,
                         const std::vector<AggSpec>& aggs, QueryContext& ctx,
                         bool budgeted, bool* aborted, RowSet* out) {
  *aborted = false;
  const size_t parallel_threshold = 16384;
  std::vector<AggGroupMap> partials;
  // Reservations outlive the group maps' useful life below; one per worker
  // (BudgetReservation is single-threaded, the budget under it is atomic).
  std::deque<BudgetReservation> reservations;

  // Batched expression list: group keys first, then aggregate arguments.
  std::vector<const Expr*> batch_exprs = RawExprs(group_by);
  std::vector<int> agg_expr_idx(aggs.size(), -1);
  for (size_t a = 0; a < aggs.size(); a++) {
    if (aggs[a].arg != nullptr) {
      agg_expr_idx[a] = static_cast<int>(batch_exprs.size());
      batch_exprs.push_back(aggs[a].arg.get());
    }
  }
  // Type inference runs once here; workers run on private copies.
  BatchedExprs master(in, std::move(batch_exprs),
                      ctx.options().enable_vectorized);

  std::atomic<bool> over_budget{false};
  auto accumulate_range = [&](AggGroupMap& groups, size_t begin, size_t end,
                              Arena* arena, BatchedExprs* batched,
                              BudgetReservation* res) {
    JSONTILES_TRACE_SPAN("exec.agg.partial");
    size_t pending = 0;
    for (size_t b = begin; b < end; b += kVectorSize) {
      if (over_budget.load(std::memory_order_relaxed)) return;
      const size_t n = std::min(kVectorSize, end - b);
      const BatchedExprs* cur = nullptr;
      if (batched->enabled()) {
        batched->LoadBatch(in, b, n, arena);
        cur = batched;
      }
      for (size_t k = 0; k < n; k++) {
        pending += Accumulate(groups, group_by, aggs, agg_expr_idx, in[b + k],
                              arena, cur, k);
      }
      if (res != nullptr && pending > 0) {
        if (!res->Grow(pending)) {
          over_budget.store(true, std::memory_order_relaxed);
          return;
        }
        pending = 0;
      }
    }
  };

  if (ctx.pool() != nullptr && in.size() >= parallel_threshold) {
    size_t workers = ctx.num_workers();
    partials.resize(workers);
    std::vector<BatchedExprs> worker_batched(workers, master);
    for (size_t w = 0; w < workers; w++) {
      reservations.emplace_back(budgeted ? ctx.budget() : nullptr);
    }
    size_t chunk = (in.size() + workers - 1) / workers;
    JSONTILES_RETURN_NOT_OK(ctx.pool()->ParallelForStatus(
        workers,
        [&](size_t w, size_t) -> Status {
          JSONTILES_FAILPOINT_RETURN("exec.agg.worker");
          if (ctx.cancelled()) return Status::OK();
          size_t begin = w * chunk;
          size_t end = std::min(begin + chunk, in.size());
          if (begin < end) {
            accumulate_range(partials[w], begin, end, ctx.arena(w),
                             &worker_batched[w], &reservations[w]);
          }
          return Status::OK();
        },
        1));
  } else {
    partials.resize(1);
    reservations.emplace_back(budgeted ? ctx.budget() : nullptr);
    accumulate_range(partials[0], 0, in.size(), ctx.arena(0), &master,
                     &reservations[0]);
  }
  if (over_budget.load(std::memory_order_relaxed)) {
    *aborted = true;
    return Status::OK();
  }

  // Merge partials into the first map. Unique groups across partials were
  // all charged above, so the merged map never exceeds the reservation.
  AggGroupMap& merged = partials[0];
  {
    JSONTILES_TRACE_SPAN("exec.agg.merge");
    for (size_t p = 1; p < partials.size(); p++) {
      for (auto& [h, bucket] : partials[p]) {
        auto& dst_bucket = merged[h];
        for (auto& g : bucket) {
          AggGroup* target = nullptr;
          for (auto& existing : dst_bucket) {
            bool equal = true;
            for (size_t i = 0; i < g.keys.size() && equal; i++) {
              equal = existing.keys[i].EqualsForGrouping(g.keys[i]);
            }
            if (equal) {
              target = &existing;
              break;
            }
          }
          if (target == nullptr) {
            dst_bucket.push_back(std::move(g));
          } else {
            for (size_t a = 0; a < aggs.size(); a++) {
              target->accs[a].Merge(aggs[a].kind, g.accs[a]);
            }
          }
        }
      }
    }
  }

  for (auto& [h, bucket] : merged) {
    (void)h;
    for (auto& g : bucket) {
      Row row;
      row.reserve(group_by.size() + aggs.size());
      for (auto& k : g.keys) row.push_back(k);
      for (size_t a = 0; a < aggs.size(); a++) {
        row.push_back(g.accs[a].Finalize(aggs[a].kind));
      }
      out->push_back(std::move(row));
    }
  }
  return Status::OK();
}

// Aggregate one spill partition (taken by value so its disk space frees as
// soon as it is consumed). When the partition fits in the budget — or the
// recursion hit the depth cap, meaning its keys are unsplittable — it is
// materialized and aggregated in memory; otherwise it repartitions onto the
// next range of stored hash bits.
Status AggSpillPartition(SpillFile file, const std::vector<ExprPtr>& group_by,
                         const std::vector<AggSpec>& aggs, QueryContext& ctx,
                         size_t depth, SpillStats* stats, RowSet* out) {
  if (file.rows() == 0) return Status::OK();
  // Read-back rows + group table (at worst one group per row); 3x raw covers
  // keys and accumulators.
  const size_t est =
      static_cast<size_t>(file.raw_bytes()) * 3 +
      static_cast<size_t>(file.rows()) * kPerRowTableOverhead;
  BudgetReservation res(ctx.budget());
  if (depth >= kMaxSpillDepth || res.Grow(est)) {
    if (depth >= kMaxSpillDepth && stats != nullptr) stats->forced_inmem++;
    Arena part_arena;
    RowSet rows;
    JSONTILES_RETURN_NOT_OK(file.ReadAll(&part_arena, &rows));
    file = SpillFile({}, nullptr);  // release the disk space early
    RowSet local;
    bool aborted = false;
    JSONTILES_RETURN_NOT_OK(AggregateInMemory(rows, group_by, aggs, ctx,
                                              /*budgeted=*/false, &aborted,
                                              &local));
    for (Row& row : local) {
      RescueRowStrings(&row, ctx.arena(0));
      out->push_back(std::move(row));
    }
    return Status::OK();
  }
  std::vector<SpillFile> sub;
  for (size_t p = 0; p < kSpillFanout; p++) {
    sub.emplace_back(ctx.options().spill_dir, stats, ctx.options().spill_disk);
  }
  JSONTILES_RETURN_NOT_OK(file.ForEach(nullptr, [&](uint64_t h, Row&& row) {
    if (ctx.cancelled()) return Status::Cancelled("query cancelled");
    return sub[SpillPartitionOf(h, depth)].Add(h, row);
  }));
  file = SpillFile({}, nullptr);
  for (size_t p = 0; p < kSpillFanout; p++) {
    JSONTILES_RETURN_NOT_OK(sub[p].Finish());
  }
  for (size_t p = 0; p < kSpillFanout; p++) {
    if (ctx.cancelled()) return Status::Cancelled("query cancelled");
    JSONTILES_RETURN_NOT_OK(AggSpillPartition(std::move(sub[p]), group_by,
                                              aggs, ctx, depth + 1, stats,
                                              out));
  }
  return Status::OK();
}

// Grace aggregation: partition the input by group-key hash into disk runs,
// then aggregate each partition independently (a group never crosses
// partitions, so partition outputs concatenate).
Status AggSpill(const RowSet& in, const std::vector<ExprPtr>& group_by,
                const std::vector<AggSpec>& aggs, QueryContext& ctx,
                SpillStats* stats, RowSet* out) {
  JSONTILES_TRACE_SPAN("exec.agg.spill");
  std::vector<SpillFile> parts;
  for (size_t p = 0; p < kSpillFanout; p++) {
    parts.emplace_back(ctx.options().spill_dir, stats,
                       ctx.options().spill_disk);
  }
  Arena scratch;  // derived key strings live only until the row is hashed
  size_t since_reset = 0;
  for (const Row& row : in) {
    uint64_t h = kKeyHashSeed;
    for (const auto& g : group_by) {
      h = HashCombine(h, EvalExpr(*g, row.data(), &scratch).Hash());
    }
    JSONTILES_RETURN_NOT_OK(parts[SpillPartitionOf(h, 0)].Add(h, row));
    if (++since_reset == 4096) {
      if (ctx.cancelled()) return Status::Cancelled("query cancelled");
      scratch.Reset();
      since_reset = 0;
    }
  }
  for (size_t p = 0; p < kSpillFanout; p++) {
    JSONTILES_RETURN_NOT_OK(parts[p].Finish());
  }
  for (size_t p = 0; p < kSpillFanout; p++) {
    if (ctx.cancelled()) return Status::Cancelled("query cancelled");
    JSONTILES_RETURN_NOT_OK(AggSpillPartition(std::move(parts[p]), group_by,
                                              aggs, ctx, 1, stats, out));
  }
  return Status::OK();
}

}  // namespace

RowSet AggregateExec(const RowSet& in, const std::vector<ExprPtr>& group_by,
                     const std::vector<AggSpec>& aggs, QueryContext& ctx) {
  JSONTILES_TRACE_SPAN("exec.aggregate");
  obs::OperatorProfiler prof(ctx.profile, "Aggregate",
                             std::to_string(group_by.size()) + " keys, " +
                                 std::to_string(aggs.size()) + " aggs");
  prof.set_rows_in(in.size());
  ArenaCounter arena_counter(prof, ctx);
  if (ctx.cancelled()) return {};

  SpillStats stats;
  RowSet out;
  bool aborted = false;
  // A global aggregate is a single group — nothing to partition by, and its
  // state is tiny — so only grouped aggregation is budget-governed.
  const bool budgeted = !group_by.empty();
  Status st =
      AggregateInMemory(in, group_by, aggs, ctx, budgeted, &aborted, &out);
  if (st.ok() && aborted) {
    st = AggSpill(in, group_by, aggs, ctx, &stats, &out);
  }
  if (!st.ok()) {
    ctx.Cancel(std::move(st));
    return {};
  }

  // Global aggregate of empty input still yields one row.
  if (group_by.empty() && out.empty()) {
    Row row;
    std::vector<Accumulator> accs(aggs.size());
    for (size_t a = 0; a < aggs.size(); a++) {
      row.push_back(accs[a].Finalize(aggs[a].kind));
    }
    out.push_back(std::move(row));
  }
  ReportSpill(prof, stats, ctx);
  prof.set_rows_out(out.size());
  return out;
}

// ---------------------------------------------------------------------------
// Hash join
// ---------------------------------------------------------------------------

namespace {

struct JoinSpec {
  const std::vector<ExprPtr>& build_keys;
  const std::vector<ExprPtr>& probe_keys;
  JoinType type;
  const ExprPtr& residual;
  // Width of the full build side. Passed down instead of derived per
  // partition: a spill partition with an empty build side must still pad
  // left-join outputs to the real width.
  size_t build_width;
};

// One hash join entirely in memory. When `res` is non-null it is grown for
// the build-side scratch (key values + hash table) as it accumulates; on a
// refused charge the partial state is dropped, *aborted is set and the
// function returns OK — the caller then takes the spill path. With a null
// `res` the table grows freely (the forced path at the spill depth cap).
Status InMemoryJoin(const RowSet& build, const RowSet& probe,
                    const JoinSpec& spec, QueryContext& ctx,
                    BudgetReservation* res, bool* aborted, RowSet* out) {
  *aborted = false;
  const std::vector<ExprPtr>& build_keys = spec.build_keys;
  const std::vector<ExprPtr>& probe_keys = spec.probe_keys;
  const JoinType type = spec.type;
  const ExprPtr& residual = spec.residual;
  Arena* arena = ctx.arena(0);

  // Build phase: evaluate the build keys batch-at-a-time through the
  // compiled engine and hash integer-typed key lanes with the SIMD batch
  // kernels. Hashes are bit-identical to the scalar per-Value path —
  // int/bool/timestamp lanes hash as HashInt of the payload and null lanes
  // as Value::Null().Hash() — so probe lookups are unaffected. Rows insert
  // in a second pass after an exact reserve (only non-null-key rows count).
  std::unordered_map<uint64_t, std::vector<size_t>> table;
  std::vector<std::vector<Value>> build_key_values;
  build_key_values.reserve(build.size());
  std::vector<uint64_t> row_hash(build.size());
  std::vector<uint8_t> row_has_null(build.size(), 0);
  {
    JSONTILES_TRACE_SPAN("exec.join.build");
    BatchedExprs batched(build, RawExprs(build_keys),
                         ctx.options().enable_vectorized);
    uint64_t hacc[kVectorSize];
    uint64_t hkey[kVectorSize];
    for (size_t base = 0; base < build.size(); base += kVectorSize) {
      const size_t n = std::min(kVectorSize, build.size() - base);
      const BatchedExprs* cur = nullptr;
      if (batched.enabled()) {
        batched.LoadBatch(build, base, n, arena);
        cur = &batched;
      }
      size_t batch_bytes =
          n * (kPerRowTableOverhead + build_keys.size() * sizeof(Value));
      for (size_t k = 0; k < n; k++) {
        hacc[k] = kKeyHashSeed;
        build_key_values.emplace_back();
        build_key_values.back().reserve(build_keys.size());
      }
      for (size_t j = 0; j < build_keys.size(); j++) {
        const ColumnVector* col = cur != nullptr ? cur->Result(j) : nullptr;
        const bool batch_hashed =
            col != nullptr && simd::UseSimd() &&
            (col->type() == ValueType::kInt ||
             col->type() == ValueType::kBool ||
             col->type() == ValueType::kTimestamp);
        if (batch_hashed) {
          simd::HashI64Batch(col->i64(), col->nulls(), Value::Null().Hash(),
                             hkey, n);
          simd::HashCombineBatch(hacc, hkey, n);
        }
        for (size_t k = 0; k < n; k++) {
          Value v = cur != nullptr
                        ? cur->Get(j, k, build[base + k], arena)
                        : EvalExpr(*build_keys[j], build[base + k].data(),
                                   arena);
          row_has_null[base + k] |= static_cast<uint8_t>(v.is_null());
          if (!batch_hashed) hacc[k] = HashCombine(hacc[k], v.Hash());
          if (v.type == ValueType::kString) batch_bytes += v.s.size();
          build_key_values[base + k].push_back(v);
        }
      }
      for (size_t k = 0; k < n; k++) row_hash[base + k] = hacc[k];
      if (res != nullptr && !res->Grow(batch_bytes)) {
        *aborted = true;
        return Status::OK();
      }
    }
    size_t insertable = 0;
    for (size_t b = 0; b < build.size(); b++) {
      insertable += row_has_null[b] == 0;
    }
    table.reserve(insertable * 2);
    for (size_t b = 0; b < build.size(); b++) {
      if (row_has_null[b]) continue;  // null keys never match
      table[row_hash[b]].push_back(b);
    }
  }
  const size_t build_width = spec.build_width;

  // Probe phase (parallel chunks); probe keys evaluate batch-at-a-time with
  // compiled programs when possible. Each worker runs a private copy of the
  // compiled state; type inference runs once here.
  BatchedExprs probe_master(probe, RawExprs(probe_keys),
                            ctx.options().enable_vectorized);
  auto probe_chunk = [&](size_t begin, size_t end, Arena* worker_arena,
                         RowSet* out, BatchedExprs* batched) {
    JSONTILES_TRACE_SPAN("exec.join.probe");
    std::vector<Value> combined;
    std::vector<Value> pkeys;
    pkeys.reserve(probe_keys.size());
    for (size_t base = begin; base < end; base += kVectorSize) {
      const size_t n = std::min(kVectorSize, end - base);
      const BatchedExprs* cur = nullptr;
      if (batched->enabled()) {
        batched->LoadBatch(probe, base, n, worker_arena);
        cur = batched;
      }
      for (size_t k = 0; k < n; k++) {
        const Row& prow = probe[base + k];
        pkeys.clear();
        uint64_t h = kKeyHashSeed;
        bool has_null = false;
        for (size_t j = 0; j < probe_keys.size(); j++) {
          Value v = cur != nullptr
                        ? cur->Get(j, k, prow, worker_arena)
                        : EvalExpr(*probe_keys[j], prow.data(), worker_arena);
          has_null |= v.is_null();
          h = HashCombine(h, v.Hash());
          pkeys.push_back(v);
        }
        bool matched = false;
        if (!has_null) {
          auto it = table.find(h);
          if (it != table.end()) {
            for (size_t b : it->second) {
              if (!KeysEqual(build_key_values[b], pkeys)) continue;
              // Residual predicate over [probe..., build...].
              if (residual != nullptr) {
                combined.assign(prow.begin(), prow.end());
                combined.insert(combined.end(), build[b].begin(),
                                build[b].end());
                Value keep = EvalExpr(*residual, combined.data(), worker_arena);
                if (keep.is_null() || !keep.bool_value()) continue;
              }
              matched = true;
              if (type == JoinType::kInner || type == JoinType::kLeft) {
                Row out_row;
                out_row.reserve(prow.size() + build_width);
                out_row.insert(out_row.end(), prow.begin(), prow.end());
                out_row.insert(out_row.end(), build[b].begin(),
                               build[b].end());
                out->push_back(std::move(out_row));
              } else {
                break;  // semi/anti need only existence
              }
            }
          }
        }
        switch (type) {
          case JoinType::kInner:
            break;
          case JoinType::kLeft:
            if (!matched) {
              Row out_row;
              out_row.reserve(prow.size() + build_width);
              out_row.insert(out_row.end(), prow.begin(), prow.end());
              for (size_t i = 0; i < build_width; i++) {
                out_row.push_back(Value::Null());
              }
              out->push_back(std::move(out_row));
            }
            break;
          case JoinType::kSemi:
            if (matched) out->push_back(prow);
            break;
          case JoinType::kAnti:
            if (!matched) out->push_back(prow);
            break;
        }
      }
    }
  };

  const size_t parallel_threshold = 16384;
  if (ctx.pool() != nullptr && probe.size() >= parallel_threshold) {
    size_t workers = ctx.num_workers();
    std::vector<RowSet> partials(workers);
    std::vector<BatchedExprs> worker_batched(workers, probe_master);
    size_t chunk = (probe.size() + workers - 1) / workers;
    JSONTILES_RETURN_NOT_OK(ctx.pool()->ParallelForStatus(
        workers,
        [&](size_t w, size_t) -> Status {
          JSONTILES_FAILPOINT_RETURN("exec.join.probe.worker");
          if (ctx.cancelled()) return Status::OK();
          size_t begin = w * chunk;
          size_t end = std::min(begin + chunk, probe.size());
          if (begin < end) {
            probe_chunk(begin, end, ctx.arena(w), &partials[w],
                        &worker_batched[w]);
          }
          return Status::OK();
        },
        1));
    size_t total = 0;
    for (const auto& p : partials) total += p.size();
    out->reserve(out->size() + total);
    for (auto& p : partials) {
      for (auto& row : p) out->push_back(std::move(row));
    }
    return Status::OK();
  }
  probe_chunk(0, probe.size(), arena, out, &probe_master);
  return Status::OK();
}

// Join one spill partition pair (files taken by value so their disk space
// frees as soon as they are consumed). Fits in budget or depth-capped —
// materialize and join in memory; otherwise repartition both sides onto the
// next range of stored hash bits.
Status JoinSpillPartition(SpillFile bfile, SpillFile pfile,
                          const JoinSpec& spec, QueryContext& ctx,
                          size_t depth, SpillStats* stats, RowSet* out) {
  if (pfile.rows() == 0) return Status::OK();  // all join kinds emit per probe row
  const size_t est =
      static_cast<size_t>(bfile.raw_bytes()) * 2 +
      static_cast<size_t>(pfile.raw_bytes()) +
      static_cast<size_t>(bfile.rows() + pfile.rows()) * kPerRowTableOverhead;
  BudgetReservation res(ctx.budget());
  if (depth >= kMaxSpillDepth || res.Grow(est)) {
    if (depth >= kMaxSpillDepth && stats != nullptr) stats->forced_inmem++;
    Arena part_arena;
    RowSet bp, pp;
    JSONTILES_RETURN_NOT_OK(bfile.ReadAll(&part_arena, &bp));
    JSONTILES_RETURN_NOT_OK(pfile.ReadAll(&part_arena, &pp));
    bfile = SpillFile({}, nullptr);
    pfile = SpillFile({}, nullptr);
    RowSet local;
    bool aborted = false;
    JSONTILES_RETURN_NOT_OK(
        InMemoryJoin(bp, pp, spec, ctx, nullptr, &aborted, &local));
    for (Row& row : local) {
      RescueRowStrings(&row, ctx.arena(0));
      out->push_back(std::move(row));
    }
    return Status::OK();
  }
  std::vector<SpillFile> bsub, psub;
  for (size_t p = 0; p < kSpillFanout; p++) {
    bsub.emplace_back(ctx.options().spill_dir, stats, ctx.options().spill_disk);
    psub.emplace_back(ctx.options().spill_dir, stats, ctx.options().spill_disk);
  }
  auto reroute = [&](SpillFile* src, std::vector<SpillFile>& dst) {
    return src->ForEach(nullptr, [&](uint64_t h, Row&& row) {
      if (ctx.cancelled()) return Status::Cancelled("query cancelled");
      return dst[SpillPartitionOf(h, depth)].Add(h, row);
    });
  };
  JSONTILES_RETURN_NOT_OK(reroute(&bfile, bsub));
  JSONTILES_RETURN_NOT_OK(reroute(&pfile, psub));
  bfile = SpillFile({}, nullptr);
  pfile = SpillFile({}, nullptr);
  for (size_t p = 0; p < kSpillFanout; p++) {
    JSONTILES_RETURN_NOT_OK(bsub[p].Finish());
    JSONTILES_RETURN_NOT_OK(psub[p].Finish());
  }
  for (size_t p = 0; p < kSpillFanout; p++) {
    if (ctx.cancelled()) return Status::Cancelled("query cancelled");
    JSONTILES_RETURN_NOT_OK(JoinSpillPartition(std::move(bsub[p]),
                                               std::move(psub[p]), spec, ctx,
                                               depth + 1, stats, out));
  }
  return Status::OK();
}

// Grace hash join: try in memory under the budget; on refusal partition both
// sides by key hash into disk runs and join partition pairs independently.
// The partition of a row is a pure function of its key hash, so matching
// build/probe rows always land in the same pair and the result multiset is
// identical to the in-memory join (output order differs — grouped by
// partition).
Status JoinImpl(const RowSet& build, const RowSet& probe, const JoinSpec& spec,
                QueryContext& ctx, SpillStats* stats, RowSet* out) {
  {
    BudgetReservation res(ctx.budget());
    bool aborted = false;
    JSONTILES_RETURN_NOT_OK(
        InMemoryJoin(build, probe, spec, ctx, &res, &aborted, out));
    if (!aborted) return Status::OK();
  }  // the partial reservation is released before spilling starts
  JSONTILES_TRACE_SPAN("exec.join.spill");
  std::vector<SpillFile> bparts, pparts;
  for (size_t p = 0; p < kSpillFanout; p++) {
    bparts.emplace_back(ctx.options().spill_dir, stats,
                        ctx.options().spill_disk);
    pparts.emplace_back(ctx.options().spill_dir, stats,
                        ctx.options().spill_disk);
  }
  Arena scratch;  // derived key strings live only until the row is hashed
  auto partition_side = [&](const RowSet& rows,
                            const std::vector<ExprPtr>& keys,
                            std::vector<SpillFile>& parts) -> Status {
    size_t since_reset = 0;
    for (const Row& row : rows) {
      uint64_t h = kKeyHashSeed;
      for (const auto& k : keys) {
        h = HashCombine(h, EvalExpr(*k, row.data(), &scratch).Hash());
      }
      JSONTILES_RETURN_NOT_OK(parts[SpillPartitionOf(h, 0)].Add(h, row));
      if (++since_reset == 4096) {
        if (ctx.cancelled()) return Status::Cancelled("query cancelled");
        scratch.Reset();
        since_reset = 0;
      }
    }
    return Status::OK();
  };
  JSONTILES_RETURN_NOT_OK(partition_side(build, spec.build_keys, bparts));
  JSONTILES_RETURN_NOT_OK(partition_side(probe, spec.probe_keys, pparts));
  for (size_t p = 0; p < kSpillFanout; p++) {
    JSONTILES_RETURN_NOT_OK(bparts[p].Finish());
    JSONTILES_RETURN_NOT_OK(pparts[p].Finish());
  }
  for (size_t p = 0; p < kSpillFanout; p++) {
    if (ctx.cancelled()) return Status::Cancelled("query cancelled");
    JSONTILES_RETURN_NOT_OK(JoinSpillPartition(std::move(bparts[p]),
                                               std::move(pparts[p]), spec,
                                               ctx, 1, stats, out));
  }
  return Status::OK();
}

}  // namespace

RowSet HashJoinExec(const RowSet& build, const RowSet& probe,
                    const std::vector<ExprPtr>& build_keys,
                    const std::vector<ExprPtr>& probe_keys, JoinType type,
                    const ExprPtr& residual, QueryContext& ctx) {
  JSONTILES_CHECK(build_keys.size() == probe_keys.size());
  JSONTILES_TRACE_SPAN("exec.hash_join");
  const char* join_name = type == JoinType::kInner  ? "inner"
                          : type == JoinType::kLeft ? "left"
                          : type == JoinType::kSemi ? "semi"
                                                    : "anti";
  obs::OperatorProfiler prof(ctx.profile, "HashJoin", join_name);
  prof.set_rows_in(build.size() + probe.size());
  prof.AddCounter("build_rows", static_cast<int64_t>(build.size()));
  prof.AddCounter("probe_rows", static_cast<int64_t>(probe.size()));
  ArenaCounter arena_counter(prof, ctx);
  if (ctx.cancelled()) return {};

  SpillStats stats;
  JoinSpec spec{build_keys, probe_keys, type, residual,
                build.empty() ? 0 : build[0].size()};
  RowSet out;
  Status st = JoinImpl(build, probe, spec, ctx, &stats, &out);
  if (!st.ok()) {
    ctx.Cancel(std::move(st));
    return {};
  }
  ReportSpill(prof, stats, ctx);
  prof.set_rows_out(out.size());
  return out;
}

RowSet SortExec(RowSet in, const std::vector<SortKey>& keys, QueryContext& ctx) {
  JSONTILES_TRACE_SPAN("exec.sort");
  obs::OperatorProfiler prof(ctx.profile, "Sort",
                             std::to_string(keys.size()) + " keys");
  prof.set_rows_in(in.size());
  prof.set_rows_out(in.size());
  ArenaCounter arena_counter(prof, ctx);
  Arena* arena = ctx.arena(0);
  std::stable_sort(in.begin(), in.end(), [&](const Row& a, const Row& b) {
    for (const auto& key : keys) {
      Value va = EvalExpr(*key.expr, a.data(), arena);
      Value vb = EvalExpr(*key.expr, b.data(), arena);
      int cmp;
      if (va.is_null() || vb.is_null()) {
        // PostgreSQL default: nulls sort as the largest value (last when
        // ascending, first when descending).
        cmp = va.is_null() == vb.is_null() ? 0 : va.is_null() ? 1 : -1;
      } else {
        cmp = va.Compare(vb);
      }
      if (cmp != 0) return key.descending ? cmp > 0 : cmp < 0;
    }
    // Deterministic full-row tie-break: input order varies across
    // shard/thread configurations, so ties on every sort key must resolve
    // by row content for ORDER BY ... LIMIT cuts to be reproducible.
    for (size_t i = 0; i < a.size() && i < b.size(); i++) {
      int cmp = TotalValueOrder(a[i], b[i]);
      if (cmp != 0) return cmp < 0;
    }
    return false;
  });
  return in;
}

RowSet LimitExec(RowSet in, size_t limit) {
  if (in.size() > limit) in.resize(limit);
  return in;
}

RowSet LimitExec(RowSet in, size_t limit, QueryContext& ctx) {
  obs::OperatorProfiler prof(ctx.profile, "Limit", std::to_string(limit));
  prof.set_rows_in(in.size());
  if (in.size() > limit) in.resize(limit);
  prof.set_rows_out(in.size());
  return in;
}

}  // namespace jsontiles::exec
