#include "exec/exchange.h"

#include <string>

#include "obs/obs.h"
#include "obs/plan_profile.h"
#include "storage/shard.h"

namespace jsontiles::exec {

namespace {

// Stamp the exchange node with transfer counters and update the context's
// scan statistics (the fragments ran remotely, so the local scan path never
// touched ctx.tiles_* / ctx.shards_*).
void ReportExchange(obs::OperatorProfiler& prof, const ExchangeStats& stats,
                    QueryContext& ctx) {
  uint64_t frames = 0, bytes = 0, batches = 0, rows = 0;
  for (const ExchangeWorkerStats& w : stats.workers) {
    frames += w.frames;
    bytes += w.bytes;
    batches += w.batches;
    rows += w.rows;
  }
  ctx.shards_scanned += stats.shards_scanned;
  ctx.shards_pruned += stats.shards_pruned;
  ctx.tiles_scanned += stats.tiles_scanned;
  ctx.tiles_skipped += stats.tiles_skipped;
  JSONTILES_COUNTER_ADD("dist.workers",
                        static_cast<int64_t>(stats.workers.size()));
  JSONTILES_COUNTER_ADD("dist.frames", static_cast<int64_t>(frames));
  JSONTILES_COUNTER_ADD("dist.bytes_sent", static_cast<int64_t>(bytes));
  JSONTILES_COUNTER_ADD("dist.batches_sent", static_cast<int64_t>(batches));
  if (stats.fragments_retried > 0) {
    JSONTILES_COUNTER_ADD("dist.fragments_retried",
                          static_cast<int64_t>(stats.fragments_retried));
  }
  if (stats.workers_respawned > 0) {
    JSONTILES_COUNTER_ADD("dist.workers_respawned",
                          static_cast<int64_t>(stats.workers_respawned));
  }
  if (stats.frames_rejected_stale > 0) {
    JSONTILES_COUNTER_ADD("dist.frames_rejected_stale",
                          static_cast<int64_t>(stats.frames_rejected_stale));
  }
  if (!prof.active()) return;
  prof.AddCounter("workers", static_cast<int64_t>(stats.workers.size()));
  prof.AddCounter("frames", static_cast<int64_t>(frames));
  prof.AddCounter("bytes", static_cast<int64_t>(bytes));
  prof.AddCounter("batches", static_cast<int64_t>(batches));
  prof.AddCounter("shards", static_cast<int64_t>(stats.shards_scanned));
  prof.AddCounter("shards_pruned", static_cast<int64_t>(stats.shards_pruned));
  prof.AddCounter("tiles", static_cast<int64_t>(stats.tiles_scanned));
  prof.AddCounter("tiles_skipped",
                  static_cast<int64_t>(stats.tiles_skipped));
  // Recovery accounting appears only when recovery actually happened — the
  // happy path's EXPLAIN ANALYZE stays unchanged.
  if (stats.fragments_retried > 0) {
    prof.AddCounter("fragments_retried",
                    static_cast<int64_t>(stats.fragments_retried));
  }
  if (stats.workers_respawned > 0) {
    prof.AddCounter("workers_respawned",
                    static_cast<int64_t>(stats.workers_respawned));
  }
  if (stats.frames_rejected_stale > 0) {
    prof.AddCounter("frames_rejected_stale",
                    static_cast<int64_t>(stats.frames_rejected_stale));
  }
  if (stats.recovery_nanos > 0) {
    prof.AddCounter("recovery_nanos",
                    static_cast<int64_t>(stats.recovery_nanos));
  }
  // Per-worker rows/bytes/time: the EXPLAIN ANALYZE view of fragment skew.
  for (size_t i = 0; i < stats.workers.size(); i++) {
    const ExchangeWorkerStats& w = stats.workers[i];
    const std::string p = "w" + std::to_string(i) + "_";
    prof.AddCounter(p + "rows", static_cast<int64_t>(w.rows));
    prof.AddCounter(p + "bytes", static_cast<int64_t>(w.bytes));
    prof.AddCounter(p + "nanos", static_cast<int64_t>(w.wall_nanos));
    if (w.respawns > 0) {
      prof.AddCounter(p + "respawns", static_cast<int64_t>(w.respawns));
    }
  }
}

std::string ExchangeDetail(const ScanSpec& spec) {
  std::string detail = !spec.table_alias.empty()
                           ? spec.table_alias
                           : (spec.sharded != nullptr ? spec.sharded->name()
                                                      : std::string());
  if (!spec.sharded_side_path.empty()) detail += "$side";
  return detail;
}

}  // namespace

RowSet ExchangeExec(const ScanSpec& spec, QueryContext& ctx) {
  JSONTILES_TRACE_SPAN("dist.exchange");
  obs::OperatorProfiler prof(ctx.profile, "Exchange", ExchangeDetail(spec));
  if (ctx.cancelled()) return {};

  ExchangeStats stats;
  RowSet out;
  Status st = ctx.dist->Scan(spec, ctx, &out, &stats);
  ReportExchange(prof, stats, ctx);
  if (!st.ok()) {
    ctx.Cancel(std::move(st));
    return {};
  }
  prof.set_rows_out(out.size());
  return out;
}

RowSet ExchangeAggregateExec(const ScanSpec& spec,
                             const std::vector<ExprPtr>& group_by,
                             const std::vector<AggSpec>& aggs,
                             QueryContext& ctx) {
  JSONTILES_TRACE_SPAN("dist.exchange_agg");
  obs::OperatorProfiler prof(ctx.profile, "ExchangeAggregate",
                             ExchangeDetail(spec) + ": " +
                                 std::to_string(group_by.size()) + " keys, " +
                                 std::to_string(aggs.size()) + " aggs");
  if (ctx.cancelled()) return {};

  ExchangeStats stats;
  RowSet out;
  Status st = ctx.dist->Aggregate(spec, group_by, aggs, ctx, &out, &stats);
  ReportExchange(prof, stats, ctx);
  if (!st.ok()) {
    ctx.Cancel(std::move(st));
    return {};
  }
  prof.set_rows_out(out.size());
  return out;
}

}  // namespace jsontiles::exec
