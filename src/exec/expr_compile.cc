#include "exec/expr_compile.h"

#include <algorithm>

#include "util/logging.h"

namespace jsontiles::exec {

namespace {

void CollectSlotRefsImpl(const Expr& e, std::vector<int>* slots) {
  if (e.kind == ExprKind::kSlotRef) slots->push_back(e.slot);
  for (const auto& arg : e.args) CollectSlotRefsImpl(*arg, slots);
}

bool IsNumberType(ValueType t) {
  return t == ValueType::kInt || t == ValueType::kFloat ||
         t == ValueType::kNumeric;
}

// Operand types EvalArithmetic handles without touching a string payload.
bool IsArithOperand(ValueType t) {
  return t == ValueType::kBool || t == ValueType::kInt ||
         t == ValueType::kFloat || t == ValueType::kTimestamp ||
         t == ValueType::kNumeric;
}

bool IsBoolish(ValueType t) {
  return t == ValueType::kBool || t == ValueType::kNull;
}

// Recursive-descent compiler; returns the result register or -1 when the
// (sub)tree cannot be typed.
class Compiler {
 public:
  Compiler(const std::vector<ValueType>& slot_types,
           std::vector<vec::Instr>* instrs)
      : slot_types_(slot_types), instrs_(instrs) {}

  int CompileNode(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kConst: {
        vec::Instr in;
        in.op = vec::VecOp::kConst;
        in.out_type = e.constant.type;
        in.node = &e;
        return Emit(std::move(in));
      }
      case ExprKind::kSlotRef: {
        if (e.slot < 0 || static_cast<size_t>(e.slot) >= slot_types_.size()) {
          return -1;
        }
        vec::Instr in;
        in.op = vec::VecOp::kSlot;
        in.out_type = slot_types_[e.slot];
        in.a = e.slot;
        return Emit(std::move(in));
      }
      case ExprKind::kAccess:
      case ExprKind::kArrayContains:
        return -1;  // must have been rewritten to slots by the planner
      case ExprKind::kBinary:
        return CompileBinary(e);
      case ExprKind::kUnary:
        return CompileUnary(e);
      case ExprKind::kLike: {
        int a = CompileNode(*e.args[0]);
        if (a < 0) return -1;
        ValueType ta = TypeOf(a);
        // The interpreter yields null for any non-string input.
        if (ta != ValueType::kString) return EmitAllNull();
        vec::Instr in;
        in.op = vec::VecOp::kLike;
        in.out_type = ValueType::kBool;
        in.a_type = ta;
        in.a = a;
        in.node = &e;
        return Emit(std::move(in));
      }
      case ExprKind::kIn: {
        int a = CompileNode(*e.args[0]);
        if (a < 0) return -1;
        ValueType ta = TypeOf(a);
        if (ta == ValueType::kNull) return EmitAllNull();
        auto set = std::make_shared<vec::InSet>();
        for (const Value& v : e.in_list) set->by_hash.insert({v.Hash(), &v});
        vec::Instr in;
        in.op = vec::VecOp::kIn;
        in.out_type = ValueType::kBool;
        in.a_type = ta;
        in.a = a;
        in.node = &e;
        in.in_set = std::move(set);
        return Emit(std::move(in));
      }
      case ExprKind::kCase:
        return CompileCase(e);
      case ExprKind::kSubstring: {
        int a = CompileNode(*e.args[0]);
        if (a < 0) return -1;
        if (TypeOf(a) != ValueType::kString) return EmitAllNull();
        vec::Instr in;
        in.op = vec::VecOp::kSubstring;
        in.out_type = ValueType::kString;
        in.a_type = ValueType::kString;
        in.a = a;
        in.node = &e;
        return Emit(std::move(in));
      }
      case ExprKind::kExtractYear: {
        int a = CompileNode(*e.args[0]);
        if (a < 0) return -1;
        ValueType ta = TypeOf(a);
        if (ta != ValueType::kString && ta != ValueType::kTimestamp) {
          return EmitAllNull();
        }
        vec::Instr in;
        in.op = vec::VecOp::kExtractYear;
        in.out_type = ValueType::kInt;
        in.a_type = ta;
        in.a = a;
        return Emit(std::move(in));
      }
      case ExprKind::kCastTo: {
        int a = CompileNode(*e.args[0]);
        if (a < 0) return -1;
        ValueType ta = TypeOf(a);
        if (ta == ValueType::kNull || e.access_type == ValueType::kNull) {
          return EmitAllNull();
        }
        vec::Instr in;
        in.op = vec::VecOp::kCast;
        in.out_type = e.access_type;
        in.a_type = ta;
        in.a = a;
        in.node = &e;
        return Emit(std::move(in));
      }
    }
    return -1;
  }

 private:
  int Emit(vec::Instr instr) {
    instr.out = static_cast<int>(instrs_->size());
    instrs_->push_back(std::move(instr));
    return instrs_->back().out;
  }

  int EmitAllNull() {
    vec::Instr in;
    in.op = vec::VecOp::kAllNull;
    return Emit(std::move(in));
  }

  ValueType TypeOf(int reg) const { return (*instrs_)[reg].out_type; }

  int CompileBinary(const Expr& e) {
    int a = CompileNode(*e.args[0]);
    if (a < 0) return -1;
    int b = CompileNode(*e.args[1]);
    if (b < 0) return -1;
    ValueType ta = TypeOf(a);
    ValueType tb = TypeOf(b);
    vec::Instr in;
    in.bin_op = e.bin_op;
    in.a_type = ta;
    in.b_type = tb;
    in.a = a;
    in.b = b;
    switch (e.bin_op) {
      case BinOp::kAnd:
      case BinOp::kOr:
        // bool_value() over a non-boolean payload is interpreter territory
        // (it reads the int lane of the union); only typed booleans compile.
        if (!IsBoolish(ta) || !IsBoolish(tb)) return -1;
        in.op = e.bin_op == BinOp::kAnd ? vec::VecOp::kAnd : vec::VecOp::kOr;
        in.out_type = ValueType::kBool;
        return Emit(std::move(in));
      case BinOp::kAdd:
      case BinOp::kSub:
      case BinOp::kMul:
      case BinOp::kDiv:
      case BinOp::kMod:
        if (ta == ValueType::kNull || tb == ValueType::kNull) {
          return EmitAllNull();
        }
        if (!IsArithOperand(ta) || !IsArithOperand(tb)) return -1;
        in.op = vec::VecOp::kArith;
        if (e.bin_op == BinOp::kMod) {
          in.out_type = ValueType::kInt;
        } else if (ta == ValueType::kInt && tb == ValueType::kInt &&
                   e.bin_op != BinOp::kDiv) {
          in.out_type = ValueType::kInt;
        } else {
          in.out_type = ValueType::kFloat;
        }
        return Emit(std::move(in));
      default: {  // comparisons
        if (ta == ValueType::kNull || tb == ValueType::kNull) {
          return EmitAllNull();
        }
        bool comparable = (IsNumberType(ta) && IsNumberType(tb)) ||
                          (ta == ValueType::kString && tb == ValueType::kString) ||
                          ta == tb;
        if (!comparable) return EmitAllNull();  // interpreter: incomparable -> null
        in.op = vec::VecOp::kCompare;
        in.out_type = ValueType::kBool;
        return Emit(std::move(in));
      }
    }
  }

  int CompileUnary(const Expr& e) {
    int a = CompileNode(*e.args[0]);
    if (a < 0) return -1;
    ValueType ta = TypeOf(a);
    vec::Instr in;
    in.a_type = ta;
    in.a = a;
    switch (e.un_op) {
      case UnOp::kNot:
        if (ta == ValueType::kNull) return EmitAllNull();
        if (ta != ValueType::kBool) return -1;  // see kAnd/kOr comment
        in.op = vec::VecOp::kNot;
        in.out_type = ValueType::kBool;
        return Emit(std::move(in));
      case UnOp::kNeg:
        if (ta == ValueType::kNull) return EmitAllNull();
        if (ta == ValueType::kString) return -1;
        in.op = vec::VecOp::kNeg;
        in.out_type = ta == ValueType::kFloat     ? ValueType::kFloat
                      : ta == ValueType::kNumeric ? ValueType::kNumeric
                                                  : ValueType::kInt;
        return Emit(std::move(in));
      case UnOp::kIsNull:
        in.op = vec::VecOp::kIsNull;
        in.out_type = ValueType::kBool;
        return Emit(std::move(in));
      case UnOp::kIsNotNull:
        in.op = vec::VecOp::kIsNotNull;
        in.out_type = ValueType::kBool;
        return Emit(std::move(in));
    }
    return -1;
  }

  int CompileCase(const Expr& e) {
    vec::Instr in;
    in.op = vec::VecOp::kCase;
    in.case_regs.reserve(e.args.size());
    ValueType out = ValueType::kNull;
    for (size_t i = 0; i < e.args.size(); i++) {
      int r = CompileNode(*e.args[i]);
      if (r < 0) return -1;
      ValueType t = TypeOf(r);
      bool is_cond = i + 1 < e.args.size() && i % 2 == 0;
      if (is_cond) {
        if (!IsBoolish(t)) return -1;
      } else if (t != ValueType::kNull) {
        if (out == ValueType::kNull) {
          out = t;
        } else if (out != t) {
          return -1;  // mixed arm types: the interpreter decides at runtime
        }
      }
      in.case_regs.push_back(r);
    }
    in.out_type = out;
    return Emit(std::move(in));
  }

  const std::vector<ValueType>& slot_types_;
  std::vector<vec::Instr>* instrs_;
};

}  // namespace

void CollectSlotRefs(const Expr& e, std::vector<int>* slots) {
  CollectSlotRefsImpl(e, slots);
  std::sort(slots->begin(), slots->end());
  slots->erase(std::unique(slots->begin(), slots->end()), slots->end());
}

bool CompiledExpr::Compile(const Expr& e,
                           const std::vector<ValueType>& slot_types,
                           CompiledExpr* out) {
  out->instrs_.clear();
  out->slots_used_.clear();
  out->regs_.clear();
  out->result_reg_ = -1;
  Compiler compiler(slot_types, &out->instrs_);
  int r = compiler.CompileNode(e);
  if (r < 0) return false;
  out->result_reg_ = r;
  out->out_type_ = out->instrs_[r].out_type;
  CollectSlotRefs(e, &out->slots_used_);
  return true;
}

const ColumnVector& CompiledExpr::Run(const ColumnVector* slots,
                                      const SelectionVector& sel,
                                      Arena* arena) {
  if (regs_.empty()) {
    regs_.resize(instrs_.size());
    reg_ptrs_.resize(instrs_.size());
    filled_.assign(instrs_.size(), 0);
  }
  for (size_t k = 0; k < instrs_.size(); k++) {
    const vec::Instr& in = instrs_[k];
    switch (in.op) {
      case vec::VecOp::kSlot:
        reg_ptrs_[k] = &slots[in.a];
        continue;
      case vec::VecOp::kConst:
        if (!filled_[k]) {
          regs_[k].Reset(in.out_type);
          for (size_t l = 0; l < kVectorSize; l++) {
            regs_[k].SetValue(l, in.node->constant);
          }
          filled_[k] = 1;
        }
        break;
      case vec::VecOp::kAllNull:
        if (!filled_[k]) {
          regs_[k].ResetAllNull(kVectorSize);
          filled_[k] = 1;
        }
        break;
      default:
        vec::RunInstr(in, reg_ptrs_.data(), &regs_[k], sel, arena);
        break;
    }
    reg_ptrs_[k] = &regs_[k];
  }
  return *reg_ptrs_[result_reg_];
}

namespace {

void SplitConjuncts(const ExprPtr& e, std::vector<ExprPtr>* out) {
  if (e->kind == ExprKind::kBinary && e->bin_op == BinOp::kAnd) {
    SplitConjuncts(e->args[0], out);
    SplitConjuncts(e->args[1], out);
    return;
  }
  out->push_back(e);
}

}  // namespace

CompiledPredicate CompiledPredicate::Compile(
    const ExprPtr& filter, const std::vector<ValueType>& slot_types) {
  CompiledPredicate p;
  if (filter == nullptr) return p;
  std::vector<ExprPtr> conjuncts;
  SplitConjuncts(filter, &conjuncts);
  for (const ExprPtr& c : conjuncts) {
    Conjunct conj;
    // Only boolean-typed conjuncts can drive the selection vector; anything
    // else (e.g. `WHERE int_slot`, whose truthiness the interpreter derives
    // from the raw lane) stays a residual.
    if (CompiledExpr::Compile(*c, slot_types, &conj.program) &&
        IsBoolish(conj.program.out_type())) {
      CollectSlotRefs(*c, &conj.slots);
      p.conjuncts_.push_back(std::move(conj));
    } else {
      p.residuals_.push_back(c);
    }
  }
  return p;
}

}  // namespace jsontiles::exec
