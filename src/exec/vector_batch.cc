#include "exec/vector_batch.h"

#include "exec/simd.h"

namespace jsontiles::exec {

void IntersectSelection(const ColumnVector& pred, SelectionVector* sel) {
  JSONTILES_DCHECK(pred.type() == ValueType::kBool ||
                   pred.type() == ValueType::kNull);
  const uint8_t* nulls = pred.nulls();
  size_t out = 0;
  if (pred.type() == ValueType::kNull) {
    sel->count = 0;  // statically-null predicate keeps nothing
    return;
  }
  const int64_t* vals = pred.i64();
  if (sel->IsDense() && simd::UseSimd()) {
    uint8_t pass[kVectorSize];
    simd::BoolPassBytes(vals, nulls, pass, sel->count);
    sel->count = simd::CompactPassIndices(pass, sel->count, sel->idx);
    return;
  }
  for (size_t k = 0; k < sel->count; k++) {
    uint16_t row = sel->idx[k];
    if (nulls[row] == 0 && vals[row] != 0) sel->idx[out++] = row;
  }
  sel->count = out;
}

}  // namespace jsontiles::exec
