#include "util/lz4.h"

#include <cstring>

#include "util/bit_util.h"

namespace jsontiles::lz4 {

namespace {

constexpr int kMinMatch = 4;
constexpr int kHashBits = 16;
constexpr size_t kLastLiterals = 5;  // spec: final bytes are always literals

inline uint32_t HashSeq(uint32_t v) { return (v * 2654435761u) >> (32 - kHashBits); }

inline void WriteLength(std::vector<uint8_t>& out, size_t len) {
  while (len >= 255) {
    out.push_back(255);
    len -= 255;
  }
  out.push_back(static_cast<uint8_t>(len));
}

}  // namespace

size_t MaxCompressedSize(size_t n) { return n + n / 255 + 16; }

std::vector<uint8_t> Compress(const uint8_t* src, size_t src_size) {
  std::vector<uint8_t> out;
  out.reserve(src_size / 2 + 64);
  if (src_size == 0) {
    out.push_back(0);  // single token: zero literals, no match
    return out;
  }

  std::vector<uint32_t> table(size_t{1} << kHashBits, 0);  // position + 1
  size_t anchor = 0;
  size_t pos = 0;
  const size_t match_limit =
      src_size > kLastLiterals + kMinMatch ? src_size - kLastLiterals - kMinMatch : 0;

  while (pos < match_limit) {
    uint32_t seq = bit_util::LoadU32(src + pos);
    uint32_t h = HashSeq(seq);
    uint32_t cand = table[h];
    table[h] = static_cast<uint32_t>(pos + 1);
    size_t cand_pos = cand == 0 ? 0 : cand - 1;
    if (cand != 0 && pos - cand_pos <= 0xFFFF &&
        bit_util::LoadU32(src + cand_pos) == seq) {
      // Extend the match forward.
      size_t match_len = kMinMatch;
      size_t max_len = src_size - kLastLiterals - pos;
      while (match_len < max_len && src[cand_pos + match_len] == src[pos + match_len]) {
        match_len++;
      }
      size_t literal_len = pos - anchor;
      uint8_t token = static_cast<uint8_t>(
          (literal_len >= 15 ? 15 : literal_len) << 4 |
          (match_len - kMinMatch >= 15 ? 15 : match_len - kMinMatch));
      out.push_back(token);
      if (literal_len >= 15) WriteLength(out, literal_len - 15);
      out.insert(out.end(), src + anchor, src + anchor + literal_len);
      uint16_t offset = static_cast<uint16_t>(pos - cand_pos);
      out.push_back(static_cast<uint8_t>(offset));
      out.push_back(static_cast<uint8_t>(offset >> 8));
      if (match_len - kMinMatch >= 15) WriteLength(out, match_len - kMinMatch - 15);
      pos += match_len;
      anchor = pos;
      // Index one position inside the match to help future matches.
      if (pos < match_limit) {
        table[HashSeq(bit_util::LoadU32(src + pos - 2))] =
            static_cast<uint32_t>(pos - 2 + 1);
      }
    } else {
      pos++;
    }
  }

  // Final literal run.
  size_t literal_len = src_size - anchor;
  out.push_back(static_cast<uint8_t>((literal_len >= 15 ? 15 : literal_len) << 4));
  if (literal_len >= 15) WriteLength(out, literal_len - 15);
  out.insert(out.end(), src + anchor, src + src_size);
  return out;
}

bool Decompress(const uint8_t* src, size_t src_size, uint8_t* dst,
                size_t decompressed_size) {
  size_t ip = 0;
  size_t op = 0;
  while (ip < src_size) {
    uint8_t token = src[ip++];
    // Literals.
    size_t literal_len = token >> 4;
    if (literal_len == 15) {
      uint8_t b;
      do {
        if (ip >= src_size) return false;
        b = src[ip++];
        literal_len += b;
      } while (b == 255);
    }
    if (ip + literal_len > src_size || op + literal_len > decompressed_size) {
      return false;
    }
    std::memcpy(dst + op, src + ip, literal_len);
    ip += literal_len;
    op += literal_len;
    if (ip >= src_size) break;  // last sequence has no match part
    // Match.
    if (ip + 2 > src_size) return false;
    size_t offset = src[ip] | (static_cast<size_t>(src[ip + 1]) << 8);
    ip += 2;
    if (offset == 0 || offset > op) return false;
    size_t match_len = (token & 0x0F);
    if (match_len == 15) {
      uint8_t b;
      do {
        if (ip >= src_size) return false;
        b = src[ip++];
        match_len += b;
      } while (b == 255);
    }
    match_len += kMinMatch;
    if (op + match_len > decompressed_size) return false;
    // Byte-wise copy: overlapping matches are the common RLE case.
    const uint8_t* match = dst + op - offset;
    for (size_t i = 0; i < match_len; i++) dst[op + i] = match[i];
    op += match_len;
  }
  return op == decompressed_size;
}

}  // namespace jsontiles::lz4
