// Arena allocator: fast bump allocation for tile headers, JSONB documents and
// other variable-sized per-relation data that is freed all at once.

#ifndef JSONTILES_UTIL_ARENA_H_
#define JSONTILES_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace jsontiles {

/// A region allocator. Allocations are 8-byte aligned and live until the
/// arena is destroyed or Reset(). Not thread-safe; use one arena per thread.
class Arena {
 public:
  explicit Arena(size_t initial_block_size = 64 * 1024)
      : block_size_(initial_block_size) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;

  /// Allocate `size` bytes (8-byte aligned).
  uint8_t* Allocate(size_t size);

  /// Allocate and copy `size` bytes from `src`.
  uint8_t* AllocateCopy(const void* src, size_t size);

  /// Total bytes handed out (excluding block overhead / slack).
  size_t bytes_allocated() const { return bytes_allocated_; }

  /// Total bytes reserved from the system.
  size_t bytes_reserved() const { return bytes_reserved_; }

  /// Drop all blocks.
  void Reset();

 private:
  void NewBlock(size_t min_size);

  size_t block_size_;
  std::vector<std::unique_ptr<uint8_t[]>> blocks_;
  uint8_t* cur_ = nullptr;
  uint8_t* end_ = nullptr;
  size_t bytes_allocated_ = 0;
  size_t bytes_reserved_ = 0;
};

}  // namespace jsontiles

#endif  // JSONTILES_UTIL_ARENA_H_
