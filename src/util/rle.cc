#include "util/rle.h"

#include "util/bit_util.h"

namespace jsontiles::rle {

std::vector<uint8_t> EncodeInt64(const int64_t* values, size_t count) {
  std::vector<uint8_t> out;
  out.reserve(count / 4 + 16);
  uint8_t buf[10];
  size_t i = 0;
  int64_t previous = 0;
  while (i < count) {
    size_t run = 1;
    while (i + run < count && values[i + run] == values[i]) run++;
    out.insert(out.end(), buf, buf + bit_util::EncodeVarint(buf, run));
    uint64_t delta = bit_util::ZigZagEncode(values[i] - previous);
    out.insert(out.end(), buf, buf + bit_util::EncodeVarint(buf, delta));
    previous = values[i];
    i += run;
  }
  return out;
}

bool DecodeInt64(const uint8_t* data, size_t size, std::vector<int64_t>* out) {
  out->clear();
  size_t pos = 0;
  int64_t previous = 0;
  while (pos < size) {
    uint64_t run = bit_util::DecodeVarint(data, &pos);
    if (pos > size || run == 0) return false;
    uint64_t delta = bit_util::DecodeVarint(data, &pos);
    if (pos > size) return false;
    int64_t value = previous + bit_util::ZigZagDecode(delta);
    out->insert(out->end(), run, value);
    previous = value;
  }
  return pos == size;
}

size_t EncodedSizeInt64(const int64_t* values, size_t count) {
  size_t bytes = 0;
  size_t i = 0;
  int64_t previous = 0;
  while (i < count) {
    size_t run = 1;
    while (i + run < count && values[i + run] == values[i]) run++;
    bytes += static_cast<size_t>(bit_util::VarintSize(run));
    bytes += static_cast<size_t>(
        bit_util::VarintSize(bit_util::ZigZagEncode(values[i] - previous)));
    previous = values[i];
    i += run;
  }
  return bytes;
}

size_t CountRuns(const int64_t* values, size_t count) {
  if (count == 0) return 0;
  size_t runs = 1;
  for (size_t i = 1; i < count; i++) {
    if (values[i] != values[i - 1]) runs++;
  }
  return runs;
}

}  // namespace jsontiles::rle
