#include "util/date.h"

#include <cstdio>
#include <cstring>

namespace jsontiles {

namespace {

constexpr const char* kMonthNames[] = {"Jan", "Feb", "Mar", "Apr", "May", "Jun",
                                       "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};
constexpr const char* kDayNames[] = {"Sun", "Mon", "Tue", "Wed",
                                     "Thu", "Fri", "Sat"};

bool IsDigit(char c) { return c >= '0' && c <= '9'; }

// Parse exactly `n` digits at s[pos..]; returns -1 on failure.
int ParseDigits(std::string_view s, size_t pos, int n) {
  if (pos + static_cast<size_t>(n) > s.size()) return -1;
  int v = 0;
  for (int i = 0; i < n; i++) {
    char c = s[pos + static_cast<size_t>(i)];
    if (!IsDigit(c)) return -1;
    v = v * 10 + (c - '0');
  }
  return v;
}

int DaysInMonth(int year, int month) {
  static const int kDays[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  if (month == 2) {
    bool leap = (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
    return leap ? 29 : 28;
  }
  return kDays[month - 1];
}

bool ValidDate(int year, int month, int day) {
  return year >= 1 && year <= 9999 && month >= 1 && month <= 12 && day >= 1 &&
         day <= DaysInMonth(year, month);
}

int MonthFromName(std::string_view name) {
  for (int i = 0; i < 12; i++) {
    if (name == kMonthNames[i]) return i + 1;
  }
  return -1;
}

bool IsDayName(std::string_view name) {
  for (const char* d : kDayNames) {
    if (name == d) return true;
  }
  return false;
}

}  // namespace

int64_t DaysFromCivil(int y, int m, int d) {
  // Howard Hinnant's algorithm.
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy =
      static_cast<unsigned>((153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1);
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

void CivilFromDays(int64_t z, int* year, int* month, int* day) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t y = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;
  const unsigned m = mp + (mp < 10 ? 3 : -9);
  *year = static_cast<int>(y + (m <= 2));
  *month = static_cast<int>(m);
  *day = static_cast<int>(d);
}

Timestamp MakeTimestamp(int year, int month, int day, int hour, int minute,
                        int second, int micros) {
  int64_t days = DaysFromCivil(year, month, day);
  return days * kMicrosPerDay +
         (static_cast<int64_t>(hour) * 3600 + minute * 60 + second) *
             kMicrosPerSecond +
         micros;
}

namespace {

// Parse optional time-of-day + timezone suffix starting at s[pos].
// Accepts "HH:MM:SS[.ffffff][Z|±HH[:MM]]". Returns false on malformed input.
bool ParseTimeSuffix(std::string_view s, size_t pos, int64_t* micros_of_day) {
  int hour = ParseDigits(s, pos, 2);
  if (hour < 0 || hour > 23 || pos + 2 >= s.size() || s[pos + 2] != ':') {
    return false;
  }
  int minute = ParseDigits(s, pos + 3, 2);
  if (minute < 0 || minute > 59 || pos + 5 >= s.size() || s[pos + 5] != ':') {
    return false;
  }
  int second = ParseDigits(s, pos + 6, 2);
  if (second < 0 || second > 60) return false;
  pos += 8;
  int64_t micros = 0;
  if (pos < s.size() && s[pos] == '.') {
    pos++;
    int64_t scale = 100000;
    int ndigits = 0;
    while (pos < s.size() && IsDigit(s[pos]) && ndigits < 6) {
      micros += (s[pos] - '0') * scale;
      scale /= 10;
      pos++;
      ndigits++;
    }
    if (ndigits == 0) return false;
    while (pos < s.size() && IsDigit(s[pos])) pos++;  // ignore > µs precision
  }
  int64_t tz_offset_min = 0;
  if (pos < s.size()) {
    char c = s[pos];
    if (c == 'Z') {
      pos++;
    } else if (c == '+' || c == '-') {
      int sign = c == '+' ? 1 : -1;
      int tzh = ParseDigits(s, pos + 1, 2);
      if (tzh < 0) return false;
      pos += 3;
      int tzm = 0;
      if (pos < s.size() && s[pos] == ':') {
        tzm = ParseDigits(s, pos + 1, 2);
        if (tzm < 0) return false;
        pos += 3;
      } else if (pos + 1 < s.size() && IsDigit(s[pos]) && IsDigit(s[pos + 1])) {
        tzm = ParseDigits(s, pos, 2);
        pos += 2;
      }
      tz_offset_min = sign * (tzh * 60 + tzm);
    } else {
      return false;
    }
  }
  if (pos != s.size()) return false;
  *micros_of_day =
      (static_cast<int64_t>(hour) * 3600 + minute * 60 + second) *
          kMicrosPerSecond +
      micros - tz_offset_min * 60 * kMicrosPerSecond;
  return true;
}

// Twitter API format: "Wed Jun 01 12:34:56 +0000 2020" (30 chars).
bool ParseTwitterFormat(std::string_view s, Timestamp* out) {
  if (s.size() != 30) return false;
  if (!IsDayName(s.substr(0, 3)) || s[3] != ' ') return false;
  int month = MonthFromName(s.substr(4, 3));
  if (month < 0 || s[7] != ' ') return false;
  int day = ParseDigits(s, 8, 2);
  if (day < 0 || s[10] != ' ') return false;
  int hour = ParseDigits(s, 11, 2);
  int minute = ParseDigits(s, 14, 2);
  int second = ParseDigits(s, 17, 2);
  if (hour < 0 || minute < 0 || second < 0 || s[13] != ':' || s[16] != ':' ||
      s[19] != ' ') {
    return false;
  }
  if (s[20] != '+' && s[20] != '-') return false;
  int tzh = ParseDigits(s, 21, 2);
  int tzm = ParseDigits(s, 23, 2);
  if (tzh < 0 || tzm < 0 || s[25] != ' ') return false;
  int year = ParseDigits(s, 26, 4);
  if (year < 0 || !ValidDate(year, month, day) || hour > 23 || minute > 59 ||
      second > 60) {
    return false;
  }
  int sign = s[20] == '+' ? 1 : -1;
  *out = MakeTimestamp(year, month, day, hour, minute, second) -
         sign * (tzh * 60 + tzm) * 60LL * kMicrosPerSecond;
  return true;
}

}  // namespace

bool ParseTimestamp(std::string_view s, Timestamp* out) {
  if (s.size() < 10) return false;
  // ISO-style: starts with YYYY-MM-DD.
  int year = ParseDigits(s, 0, 4);
  if (year >= 0 && s[4] == '-') {
    int month = ParseDigits(s, 5, 2);
    int day = ParseDigits(s, 8, 2);
    if (month < 0 || day < 0 || s[7] != '-' || !ValidDate(year, month, day)) {
      return false;
    }
    int64_t date_micros = DaysFromCivil(year, month, day) * kMicrosPerDay;
    if (s.size() == 10) {
      *out = date_micros;
      return true;
    }
    if (s[10] != ' ' && s[10] != 'T') return false;
    int64_t micros_of_day;
    if (!ParseTimeSuffix(s, 11, &micros_of_day)) return false;
    *out = date_micros + micros_of_day;
    return true;
  }
  return ParseTwitterFormat(s, out);
}

std::string FormatDate(Timestamp ts) {
  int64_t days = ts / kMicrosPerDay;
  if (ts < 0 && ts % kMicrosPerDay != 0) days--;
  int y, m, d;
  CivilFromDays(days, &y, &m, &d);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", y, m, d);
  return buf;
}

std::string FormatTimestamp(Timestamp ts) {
  int64_t days = ts / kMicrosPerDay;
  int64_t rem = ts % kMicrosPerDay;
  if (rem < 0) {
    days--;
    rem += kMicrosPerDay;
  }
  int y, m, d;
  CivilFromDays(days, &y, &m, &d);
  int64_t secs = rem / kMicrosPerSecond;
  int64_t micros = rem % kMicrosPerSecond;
  char buf[40];
  if (micros != 0) {
    std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d:%02d.%06d", y, m, d,
                  static_cast<int>(secs / 3600), static_cast<int>(secs / 60 % 60),
                  static_cast<int>(secs % 60), static_cast<int>(micros));
  } else {
    std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d:%02d", y, m, d,
                  static_cast<int>(secs / 3600), static_cast<int>(secs / 60 % 60),
                  static_cast<int>(secs % 60));
  }
  return buf;
}

int TimestampYear(Timestamp ts) {
  int64_t days = ts / kMicrosPerDay;
  if (ts < 0 && ts % kMicrosPerDay != 0) days--;
  int y, m, d;
  CivilFromDays(days, &y, &m, &d);
  return y;
}

Timestamp AddDays(Timestamp ts, int64_t n) { return ts + n * kMicrosPerDay; }

Timestamp AddMonths(Timestamp ts, int n) {
  int64_t days = ts / kMicrosPerDay;
  int64_t rem = ts % kMicrosPerDay;
  if (rem < 0) {
    days--;
    rem += kMicrosPerDay;
  }
  int y, m, d;
  CivilFromDays(days, &y, &m, &d);
  int total = (y * 12 + (m - 1)) + n;
  y = total / 12;
  m = total % 12 + 1;
  if (d > DaysInMonth(y, m)) d = DaysInMonth(y, m);
  return DaysFromCivil(y, m, d) * kMicrosPerDay + rem;
}

Timestamp AddYears(Timestamp ts, int n) { return AddMonths(ts, n * 12); }

}  // namespace jsontiles
