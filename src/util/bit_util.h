// Small bit-manipulation helpers shared across modules.

#ifndef JSONTILES_UTIL_BIT_UTIL_H_
#define JSONTILES_UTIL_BIT_UTIL_H_

#include <bit>
#include <cstdint>
#include <cstring>

namespace jsontiles::bit_util {

/// Number of bytes required to represent `v` (at least 1).
inline int MinBytes(uint64_t v) {
  if (v == 0) return 1;
  return (64 - std::countl_zero(v) + 7) / 8;
}

/// Round `v` up to the next power of two (v > 0).
inline uint64_t NextPow2(uint64_t v) {
  if (v <= 1) return 1;
  return uint64_t{1} << (64 - std::countl_zero(v - 1));
}

inline bool IsPow2(uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

/// Store the low `n` bytes of `v` little-endian at `dst`.
inline void StoreLE(uint8_t* dst, uint64_t v, int n) {
  for (int i = 0; i < n; i++) dst[i] = static_cast<uint8_t>(v >> (8 * i));
}

/// Load `n` little-endian bytes from `src` into a uint64_t.
inline uint64_t LoadLE(const uint8_t* src, int n) {
  uint64_t v = 0;
  for (int i = 0; i < n; i++) v |= static_cast<uint64_t>(src[i]) << (8 * i);
  return v;
}

inline uint16_t LoadU16(const uint8_t* p) {
  uint16_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
inline uint32_t LoadU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
inline uint64_t LoadU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
inline void StoreU16(uint8_t* p, uint16_t v) { std::memcpy(p, &v, sizeof(v)); }
inline void StoreU32(uint8_t* p, uint32_t v) { std::memcpy(p, &v, sizeof(v)); }
inline void StoreU64(uint8_t* p, uint64_t v) { std::memcpy(p, &v, sizeof(v)); }

/// Bytes needed for an unsigned LEB128 varint.
inline int VarintSize(uint64_t v) {
  int n = 1;
  while (v >= 0x80) {
    v >>= 7;
    n++;
  }
  return n;
}

/// Encode unsigned LEB128; returns bytes written.
inline int EncodeVarint(uint8_t* dst, uint64_t v) {
  int n = 0;
  while (v >= 0x80) {
    dst[n++] = static_cast<uint8_t>(v) | 0x80;
    v >>= 7;
  }
  dst[n++] = static_cast<uint8_t>(v);
  return n;
}

/// Decode unsigned LEB128; advances *pos.
inline uint64_t DecodeVarint(const uint8_t* src, size_t* pos) {
  uint64_t v = 0;
  int shift = 0;
  while (true) {
    uint8_t b = src[(*pos)++];
    v |= static_cast<uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) break;
    shift += 7;
  }
  return v;
}

/// ZigZag encoding maps signed to unsigned keeping small magnitudes small.
inline uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
inline int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

}  // namespace jsontiles::bit_util

#endif  // JSONTILES_UTIL_BIT_UTIL_H_
