// Per-query memory governance: hierarchical budgets with atomic
// charge/release and a configurable hard limit.
//
// A MemoryBudget is a node in a reservation tree. Charging a node charges
// every ancestor, so one query-level hard limit governs all of the query's
// operators while each operator-level child still tracks its own usage (and
// may carry a tighter limit of its own). A failed charge leaves the whole
// tree unchanged: TryCharge either commits at every level or at none.
//
// Budgets govern operator *scratch* memory — hash-join and aggregation
// tables, spill-partition read-back — not the materialized row sets flowing
// between operators. When TryCharge refuses, operators spill to disk
// (exec/spill.h) instead of growing; a limit of 0 means unlimited and every
// charge succeeds with two relaxed atomic adds.

#ifndef JSONTILES_UTIL_RESOURCE_GOVERNOR_H_
#define JSONTILES_UTIL_RESOURCE_GOVERNOR_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace jsontiles {

class MemoryBudget {
 public:
  /// Limit 0 = unlimited.
  static constexpr size_t kUnlimited = 0;

  explicit MemoryBudget(size_t limit_bytes = kUnlimited,
                        MemoryBudget* parent = nullptr)
      : limit_(limit_bytes), parent_(parent) {}

  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  /// Charge `bytes` here and in every ancestor. Returns false — with no
  /// level charged — when any level would exceed its hard limit (or the
  /// "governor.charge" failpoint fires). Thread-safe.
  bool TryCharge(size_t bytes);

  /// Release a previous charge at every level. Thread-safe.
  void Release(size_t bytes);

  size_t limit() const { return limit_; }
  size_t used() const { return used_.load(std::memory_order_relaxed); }
  /// High-water mark of used().
  size_t peak() const { return peak_.load(std::memory_order_relaxed); }
  /// Bytes left under the hard limit; SIZE_MAX when unlimited.
  size_t remaining() const;

  MemoryBudget* parent() const {
    return parent_.load(std::memory_order_relaxed);
  }

  /// Sever the link to the parent: later charges/releases stop at this
  /// node. Call once every charge taken through the parent has been
  /// released — e.g. when a query context outlives its admission and the
  /// parent (a resource-group quota) may be destroyed before the context.
  /// Thread-safe, but not a rollback: it does not return outstanding bytes.
  void DetachParent() { parent_.store(nullptr, std::memory_order_relaxed); }

 private:
  bool TryChargeLocal(size_t bytes);

  const size_t limit_;
  std::atomic<MemoryBudget*> parent_;
  std::atomic<size_t> used_{0};
  std::atomic<size_t> peak_{0};
};

/// Shared spill-disk governor: one flat atomic budget capping the aggregate
/// temp-file bytes of every concurrently spilling query (the multi-tenant
/// analogue of Greenplum's workfile manager). SpillFile charges it block by
/// block as frames reach disk and releases everything when the run is
/// destroyed, so `used()` tracks live temp-disk exactly. A refused reserve
/// fails only the query that asked (it surfaces as a clean
/// ResourceExhausted), never the group or the service. Limit 0 = unlimited.
class DiskBudget {
 public:
  explicit DiskBudget(uint64_t limit_bytes = 0) : limit_(limit_bytes) {}

  DiskBudget(const DiskBudget&) = delete;
  DiskBudget& operator=(const DiskBudget&) = delete;

  /// Reserve `bytes` of temp disk. False — nothing reserved — when the cap
  /// would be exceeded (or the "service.spill_reserve" failpoint fires).
  /// Thread-safe.
  bool TryReserve(uint64_t bytes);

  /// Return a previous reserve. Thread-safe.
  void Release(uint64_t bytes);

  uint64_t limit() const { return limit_; }
  uint64_t used() const { return used_.load(std::memory_order_relaxed); }
  uint64_t peak() const { return peak_.load(std::memory_order_relaxed); }
  /// Reserves refused because the cap was reached (observability).
  uint64_t refused() const { return refused_.load(std::memory_order_relaxed); }

 private:
  const uint64_t limit_;
  std::atomic<uint64_t> used_{0};
  std::atomic<uint64_t> peak_{0};
  std::atomic<uint64_t> refused_{0};
};

/// RAII batch of charges against one budget: Grow() accumulates, the
/// destructor (or ReleaseAll) returns everything. One reservation per
/// thread — the held total is not atomic, only the budget underneath is.
class BudgetReservation {
 public:
  /// A null budget accepts every Grow (unlimited, untracked).
  explicit BudgetReservation(MemoryBudget* budget) : budget_(budget) {}
  ~BudgetReservation() { ReleaseAll(); }

  BudgetReservation(const BudgetReservation&) = delete;
  BudgetReservation& operator=(const BudgetReservation&) = delete;

  /// Charge `bytes` more; false (nothing charged) on budget breach.
  bool Grow(size_t bytes) {
    if (budget_ != nullptr && !budget_->TryCharge(bytes)) return false;
    held_ += bytes;
    return true;
  }

  void ReleaseAll() {
    if (budget_ != nullptr && held_ > 0) budget_->Release(held_);
    held_ = 0;
  }

  size_t held() const { return held_; }

 private:
  MemoryBudget* budget_;
  size_t held_ = 0;
};

}  // namespace jsontiles

#endif  // JSONTILES_UTIL_RESOURCE_GOVERNOR_H_
