// LZ4 block-format compressor/decompressor, implemented from scratch.
//
// Used by the storage-size experiment (paper Table 6: "+LZ4-Tiles"): column
// chunks of JSON tiles compress well because values of one key path are
// stored contiguously. The encoder is a greedy single-pass matcher with a
// 64 Ki-entry hash table (comparable to LZ4 "fast" mode); the block format
// follows the public LZ4 specification (token, literals, 16-bit offsets,
// extension bytes).

#ifndef JSONTILES_UTIL_LZ4_H_
#define JSONTILES_UTIL_LZ4_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace jsontiles::lz4 {

/// Worst-case compressed size for `input_size` bytes.
size_t MaxCompressedSize(size_t input_size);

/// Compress `src[0..src_size)`; returns the compressed bytes.
std::vector<uint8_t> Compress(const uint8_t* src, size_t src_size);

/// Decompress into a buffer of exactly `decompressed_size` bytes.
/// Returns false on malformed input.
bool Decompress(const uint8_t* src, size_t src_size, uint8_t* dst,
                size_t decompressed_size);

}  // namespace jsontiles::lz4

#endif  // JSONTILES_UTIL_LZ4_H_
