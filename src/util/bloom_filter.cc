#include "util/bloom_filter.h"

#include "util/bit_util.h"

namespace jsontiles {

BloomFilter::BloomFilter(size_t expected_entries) {
  if (expected_entries < 8) expected_entries = 8;
  // ~10 bits per entry, rounded up to a power of two for cheap masking.
  uint64_t bits = bit_util::NextPow2(expected_entries * 10);
  if (bits < 64) bits = 64;
  words_.assign(bits / 64, 0);
  bit_mask_ = bits - 1;
}

void BloomFilter::Insert(uint64_t hash) {
  uint64_t h1 = hash;
  uint64_t h2 = HashInt(hash) | 1;  // odd so all positions are reachable
  for (int i = 0; i < kNumProbes; i++) {
    uint64_t bit = (h1 + static_cast<uint64_t>(i) * h2) & bit_mask_;
    words_[bit >> 6] |= uint64_t{1} << (bit & 63);
  }
  num_inserted_++;
}

bool BloomFilter::MayContain(uint64_t hash) const {
  uint64_t h1 = hash;
  uint64_t h2 = HashInt(hash) | 1;
  for (int i = 0; i < kNumProbes; i++) {
    uint64_t bit = (h1 + static_cast<uint64_t>(i) * h2) & bit_mask_;
    if ((words_[bit >> 6] & (uint64_t{1} << (bit & 63))) == 0) return false;
  }
  return true;
}

}  // namespace jsontiles
