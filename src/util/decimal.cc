#include "util/decimal.h"

#include <cmath>
#include <cstdlib>

namespace jsontiles {

double Numeric::ToDouble() const {
  return static_cast<double>(unscaled) * std::pow(10.0, -static_cast<int>(scale));
}

int64_t Numeric::ToInt64() const {
  int64_t v = unscaled;
  for (int i = 0; i < scale; i++) v /= 10;
  return v;
}

std::string Numeric::ToString() const {
  bool negative = unscaled < 0;
  uint64_t mag = negative ? -static_cast<uint64_t>(unscaled)
                          : static_cast<uint64_t>(unscaled);
  std::string digits = std::to_string(mag);
  std::string out;
  if (scale == 0) {
    out = digits;
  } else {
    // Pad so there is at least one integer digit.
    while (digits.size() <= scale) digits.insert(digits.begin(), '0');
    out = digits.substr(0, digits.size() - scale) + "." +
          digits.substr(digits.size() - scale);
  }
  if (negative) out.insert(out.begin(), '-');
  return out;
}

bool ParseNumeric(std::string_view s, Numeric* out) {
  size_t pos = 0;
  bool negative = false;
  if (pos < s.size() && s[pos] == '-') {
    negative = true;
    pos++;
  }
  size_t int_begin = pos;
  while (pos < s.size() && s[pos] >= '0' && s[pos] <= '9') pos++;
  size_t int_digits = pos - int_begin;
  if (int_digits == 0) return false;
  // Canonical form: no leading zero unless the integer part is exactly "0".
  if (int_digits > 1 && s[int_begin] == '0') return false;
  size_t frac_digits = 0;
  if (pos < s.size() && s[pos] == '.') {
    pos++;
    size_t frac_begin = pos;
    while (pos < s.size() && s[pos] >= '0' && s[pos] <= '9') pos++;
    frac_digits = pos - frac_begin;
    if (frac_digits == 0) return false;
  }
  if (pos != s.size()) return false;
  if (int_digits + frac_digits > 18 || frac_digits > 255) return false;
  if (negative && int_digits == 1 && frac_digits == 0 && s[int_begin] == '0') {
    return false;  // "-0" is not canonical
  }
  int64_t unscaled = 0;
  for (size_t i = negative ? 1 : 0; i < s.size(); i++) {
    if (s[i] == '.') continue;
    unscaled = unscaled * 10 + (s[i] - '0');
  }
  if (negative) unscaled = -unscaled;
  out->unscaled = unscaled;
  out->scale = static_cast<uint8_t>(frac_digits);
  return true;
}

}  // namespace jsontiles
