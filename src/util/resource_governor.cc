#include "util/resource_governor.h"

#include "util/failpoint.h"

namespace jsontiles {

bool MemoryBudget::TryChargeLocal(size_t bytes) {
  size_t cur = used_.load(std::memory_order_relaxed);
  while (true) {
    if (limit_ != kUnlimited && (bytes > limit_ || cur > limit_ - bytes)) {
      return false;
    }
    if (used_.compare_exchange_weak(cur, cur + bytes,
                                    std::memory_order_relaxed)) {
      break;
    }
  }
  const size_t now = cur + bytes;
  size_t peak = peak_.load(std::memory_order_relaxed);
  while (peak < now &&
         !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
  }
  return true;
}

bool MemoryBudget::TryCharge(size_t bytes) {
  if (JSONTILES_FAILPOINT_FIRES("governor.charge")) return false;
  for (MemoryBudget* b = this; b != nullptr; b = b->parent()) {
    if (b->TryChargeLocal(bytes)) continue;
    // Roll back the levels already charged; the tree ends up unchanged.
    for (MemoryBudget* r = this; r != b; r = r->parent()) {
      r->used_.fetch_sub(bytes, std::memory_order_relaxed);
    }
    return false;
  }
  return true;
}

void MemoryBudget::Release(size_t bytes) {
  for (MemoryBudget* b = this; b != nullptr; b = b->parent()) {
    b->used_.fetch_sub(bytes, std::memory_order_relaxed);
  }
}

size_t MemoryBudget::remaining() const {
  if (limit_ == kUnlimited) return SIZE_MAX;
  const size_t u = used();
  return u >= limit_ ? 0 : limit_ - u;
}

bool DiskBudget::TryReserve(uint64_t bytes) {
  if (JSONTILES_FAILPOINT_FIRES("service.spill_reserve")) {
    refused_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  uint64_t cur = used_.load(std::memory_order_relaxed);
  while (true) {
    if (limit_ != 0 && (bytes > limit_ || cur > limit_ - bytes)) {
      refused_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    if (used_.compare_exchange_weak(cur, cur + bytes,
                                    std::memory_order_relaxed)) {
      break;
    }
  }
  const uint64_t now = cur + bytes;
  uint64_t peak = peak_.load(std::memory_order_relaxed);
  while (peak < now &&
         !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
  }
  return true;
}

void DiskBudget::Release(uint64_t bytes) {
  used_.fetch_sub(bytes, std::memory_order_relaxed);
}

}  // namespace jsontiles
