#include "util/arena.h"

#include <algorithm>
#include <cstring>

namespace jsontiles {

uint8_t* Arena::Allocate(size_t size) {
  size = (size + 7) & ~size_t{7};
  if (static_cast<size_t>(end_ - cur_) < size) NewBlock(size);
  uint8_t* result = cur_;
  cur_ += size;
  bytes_allocated_ += size;
  return result;
}

uint8_t* Arena::AllocateCopy(const void* src, size_t size) {
  uint8_t* dst = Allocate(size);
  std::memcpy(dst, src, size);
  return dst;
}

void Arena::NewBlock(size_t min_size) {
  size_t size = std::max(block_size_, min_size);
  blocks_.push_back(std::make_unique<uint8_t[]>(size));
  cur_ = blocks_.back().get();
  end_ = cur_ + size;
  bytes_reserved_ += size;
  // Grow geometrically up to 8 MiB blocks to amortize allocation.
  block_size_ = std::min<size_t>(block_size_ * 2, 8 * 1024 * 1024);
}

void Arena::Reset() {
  blocks_.clear();
  cur_ = end_ = nullptr;
  bytes_allocated_ = 0;
  bytes_reserved_ = 0;
}

}  // namespace jsontiles
