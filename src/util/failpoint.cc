#include "util/failpoint.h"

#include <atomic>
#include <mutex>
#include <unordered_map>

namespace jsontiles::failpoint {

namespace {

struct State {
  Spec spec;
  uint64_t hits = 0;
};

struct Registry {
  std::mutex mutex;
  std::unordered_map<std::string, State> points;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

// Fast path: when nothing is armed, Fires() is one relaxed load.
std::atomic<int>& EnabledCount() {
  static std::atomic<int> count{0};
  return count;
}

}  // namespace

void Enable(const std::string& name, Spec spec) {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  auto [it, inserted] = reg.points.insert_or_assign(name, State{spec, 0});
  (void)it;
  if (inserted) EnabledCount().fetch_add(1, std::memory_order_relaxed);
}

void Disable(const std::string& name) {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  if (reg.points.erase(name) > 0) {
    EnabledCount().fetch_sub(1, std::memory_order_relaxed);
  }
}

void DisableAll() {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  EnabledCount().fetch_sub(static_cast<int>(reg.points.size()),
                           std::memory_order_relaxed);
  reg.points.clear();
}

uint64_t Hits(const std::string& name) {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  auto it = reg.points.find(name);
  return it == reg.points.end() ? 0 : it->second.hits;
}

bool Fires(const char* name) {
  if (EnabledCount().load(std::memory_order_relaxed) == 0) return false;
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  auto it = reg.points.find(name);
  if (it == reg.points.end()) return false;
  State& st = it->second;
  const uint64_t hit = ++st.hits;
  switch (st.spec.mode) {
    case Spec::Mode::kAlways:
      return true;
    case Spec::Mode::kNth:
      return hit == st.spec.n;
    case Spec::Mode::kEveryK:
      return st.spec.n > 0 && hit % st.spec.n == 0;
  }
  return false;
}

Status Check(const char* name) {
  if (!Fires(name)) return Status::OK();
  return Status::Internal(std::string("failpoint '") + name + "' fired");
}

}  // namespace jsontiles::failpoint
