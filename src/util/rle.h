// Run-length encoding for column chunks.
//
// Paper §3.3: "reordering within a tile improves compression in systems that
// support run-length encoding" — clustering similar tuples produces longer
// runs per column. This codec quantifies that effect (see bench_ablations).

#ifndef JSONTILES_UTIL_RLE_H_
#define JSONTILES_UTIL_RLE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace jsontiles::rle {

/// Encode int64 values as (run length varint, zigzag delta-from-previous-run
/// varint) pairs. Returns the encoded bytes.
std::vector<uint8_t> EncodeInt64(const int64_t* values, size_t count);

/// Decode into `out` (resized to the decoded count).
bool DecodeInt64(const uint8_t* data, size_t size, std::vector<int64_t>* out);

/// Encoded size without materializing (for size accounting).
size_t EncodedSizeInt64(const int64_t* values, size_t count);

/// Number of runs (the compressibility signal reordering improves).
size_t CountRuns(const int64_t* values, size_t count);

}  // namespace jsontiles::rle

#endif  // JSONTILES_UTIL_RLE_H_
