// Thread pool with a parallel-for helper.
//
// Used for parallel bulk loading (one partition of tiles per task, paper
// §3.2) and morsel-style parallel scans in the query engine (Fig 8).

#ifndef JSONTILES_UTIL_THREAD_POOL_H_
#define JSONTILES_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/status.h"

namespace jsontiles {

class ThreadPool {
 public:
  /// `num_threads` == 0 means hardware concurrency.
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueue a task; returns immediately.
  void Submit(std::function<void()> task);

  /// Block until all submitted tasks have finished.
  void WaitIdle();

  /// Run fn(i) for i in [0, n). `fn` also receives the calling worker index
  /// in [0, num_threads]) so callers can keep per-thread state. Work is
  /// divided into contiguous chunks, one chunk claimed at a time
  /// (morsel-style). Blocks until done; the calling thread participates.
  void ParallelFor(size_t n, const std::function<void(size_t index, size_t worker)>& fn,
                   size_t chunk = 1);

  /// Fallible variant: `fn` returns Status. The first failing index's Status
  /// (first in wall-clock order) is captured and returned; after a failure no
  /// new morsels are claimed, though already-claimed chunks finish their
  /// current index. Always blocks until every participating worker has
  /// stopped, so the pool (and any state `fn` captures) may be destroyed the
  /// moment this returns — even on the error path.
  Status ParallelForStatus(
      size_t n, const std::function<Status(size_t index, size_t worker)>& fn,
      size_t chunk = 1);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  size_t active_ = 0;
  bool shutdown_ = false;
};

}  // namespace jsontiles

#endif  // JSONTILES_UTIL_THREAD_POOL_H_
