#include "util/hyperloglog.h"

#include <bit>
#include <cmath>

#include "util/logging.h"

namespace jsontiles {

HyperLogLog::HyperLogLog(int precision) : precision_(precision) {
  JSONTILES_CHECK(precision >= 4 && precision <= 16);
  registers_.assign(size_t{1} << precision, 0);
}

void HyperLogLog::Add(uint64_t hash) {
  uint64_t index = hash >> (64 - precision_);
  uint64_t rest = hash << precision_;
  // Rank = position of the leftmost 1-bit in the remaining bits, 1-based.
  uint8_t rank = static_cast<uint8_t>(std::countl_zero(rest | 1) + 1);
  if (rank > registers_[index]) registers_[index] = rank;
}

double HyperLogLog::Estimate() const {
  const size_t m = registers_.size();
  double sum = 0;
  size_t zeros = 0;
  for (uint8_t reg : registers_) {
    sum += std::ldexp(1.0, -reg);
    if (reg == 0) zeros++;
  }
  double alpha;
  switch (precision_) {
    case 4: alpha = 0.673; break;
    case 5: alpha = 0.697; break;
    case 6: alpha = 0.709; break;
    default: alpha = 0.7213 / (1.0 + 1.079 / static_cast<double>(m)); break;
  }
  double estimate = alpha * static_cast<double>(m) * static_cast<double>(m) / sum;
  // Small-range correction: linear counting.
  if (estimate <= 2.5 * static_cast<double>(m) && zeros > 0) {
    estimate = static_cast<double>(m) *
               std::log(static_cast<double>(m) / static_cast<double>(zeros));
  }
  return estimate;
}

void HyperLogLog::Merge(const HyperLogLog& other) {
  JSONTILES_CHECK(precision_ == other.precision_);
  for (size_t i = 0; i < registers_.size(); i++) {
    if (other.registers_[i] > registers_[i]) registers_[i] = other.registers_[i];
  }
}

}  // namespace jsontiles
