#include "util/thread_pool.h"

#include <algorithm>

#include "obs/obs.h"

namespace jsontiles {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; i++) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  JSONTILES_COUNTER_ADD("thread_pool.tasks_submitted", 1);
#if JSONTILES_OBS_AVAILABLE
  // Wrap the task so the dequeueing worker can report how long it sat queued.
  task = [submitted = obs::TraceCollector::Default().NowMicros(),
          inner = std::move(task)]() {
    JSONTILES_HIST_RECORD(
        "thread_pool.queue_wait_micros",
        static_cast<double>(obs::TraceCollector::Default().NowMicros() -
                            submitted));
    inner();
  };
#endif
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (shutdown_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      active_++;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      active_--;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t, size_t)>& fn,
                             size_t chunk) {
  ParallelForStatus(
      n,
      [&fn](size_t i, size_t worker) {
        fn(i, worker);
        return Status::OK();
      },
      chunk);
}

Status ThreadPool::ParallelForStatus(
    size_t n, const std::function<Status(size_t, size_t)>& fn, size_t chunk) {
  if (n == 0) return Status::OK();
  if (chunk == 0) chunk = 1;
  JSONTILES_COUNTER_ADD("thread_pool.parallel_for_calls", 1);
  JSONTILES_COUNTER_ADD("thread_pool.parallel_for_items",
                        static_cast<int64_t>(n));
  // All shared state lives on this frame; the final cv wait below guarantees
  // no helper task touches it after ParallelForStatus returns, so the caller
  // may destroy the pool immediately — including while unwinding a failure.
  struct ForState {
    std::atomic<size_t> next{0};
    std::atomic<bool> failed{false};
    std::mutex mutex;
    std::condition_variable done_cv;
    size_t done = 0;
    Status first_error;
  } st;
  auto work = [&](size_t worker) {
    while (!st.failed.load(std::memory_order_relaxed)) {
      size_t begin = st.next.fetch_add(chunk);
      if (begin >= n) break;
      size_t end = std::min(begin + chunk, n);
      for (size_t i = begin; i < end; i++) {
        Status s = fn(i, worker);
        if (!s.ok()) {
          std::lock_guard<std::mutex> lock(st.mutex);
          if (st.first_error.ok()) st.first_error = std::move(s);
          st.failed.store(true, std::memory_order_relaxed);
          return;
        }
      }
    }
  };
  const size_t helpers = workers_.size();
  for (size_t w = 0; w < helpers; w++) {
    Submit([&st, &work, w] {
      work(w);
      // Notify under the lock: the waiter may destroy the state the moment
      // it observes done == helpers, so the cv must not be touched after.
      std::lock_guard<std::mutex> lock(st.mutex);
      st.done++;
      st.done_cv.notify_all();
    });
  }
  work(helpers);  // the calling thread participates as the last worker
  std::unique_lock<std::mutex> lock(st.mutex);
  st.done_cv.wait(lock, [&st, helpers] { return st.done == helpers; });
  return std::move(st.first_error);
}

}  // namespace jsontiles
