#include "util/thread_pool.h"

#include <algorithm>

#include "obs/obs.h"

namespace jsontiles {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; i++) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  JSONTILES_COUNTER_ADD("thread_pool.tasks_submitted", 1);
#if JSONTILES_OBS_AVAILABLE
  // Wrap the task so the dequeueing worker can report how long it sat queued.
  task = [submitted = obs::TraceCollector::Default().NowMicros(),
          inner = std::move(task)]() {
    JSONTILES_HIST_RECORD(
        "thread_pool.queue_wait_micros",
        static_cast<double>(obs::TraceCollector::Default().NowMicros() -
                            submitted));
    inner();
  };
#endif
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (shutdown_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      active_++;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      active_--;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t, size_t)>& fn,
                             size_t chunk) {
  if (n == 0) return;
  if (chunk == 0) chunk = 1;
  JSONTILES_COUNTER_ADD("thread_pool.parallel_for_calls", 1);
  JSONTILES_COUNTER_ADD("thread_pool.parallel_for_items",
                        static_cast<int64_t>(n));
  std::atomic<size_t> next{0};
  auto work = [&](size_t worker) {
    while (true) {
      size_t begin = next.fetch_add(chunk);
      if (begin >= n) break;
      size_t end = std::min(begin + chunk, n);
      for (size_t i = begin; i < end; i++) fn(i, worker);
    }
  };
  std::atomic<size_t> done{0};
  size_t helpers = workers_.size();
  for (size_t w = 0; w < helpers; w++) {
    Submit([&, w] {
      work(w);
      done.fetch_add(1);
    });
  }
  work(helpers);  // the calling thread participates as the last worker
  while (done.load() < helpers) std::this_thread::yield();
}

}  // namespace jsontiles
