// Bloom filter over key paths stored in each tile header (paper §4.4).
//
// Uses Kirsch–Mitzenmacher double hashing [35]: k probe positions are derived
// from two independent 64-bit hashes, g_i(x) = h1(x) + i*h2(x), which gives
// the same asymptotic false-positive rate as k independent hash functions.

#ifndef JSONTILES_UTIL_BLOOM_FILTER_H_
#define JSONTILES_UTIL_BLOOM_FILTER_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "util/hash.h"

namespace jsontiles {

class BloomFilter {
 public:
  /// Create a filter sized for `expected_entries` at roughly 1% false
  /// positives (~10 bits per entry, 7 probes).
  explicit BloomFilter(size_t expected_entries = 64);

  void Insert(uint64_t hash);
  void InsertString(std::string_view s) { Insert(HashString(s)); }

  /// True if the element may have been inserted; false means definitely not.
  bool MayContain(uint64_t hash) const;
  bool MayContainString(std::string_view s) const {
    return MayContain(HashString(s));
  }

  size_t SizeBytes() const { return words_.size() * sizeof(uint64_t); }
  size_t num_inserted() const { return num_inserted_; }

  /// Serialization support: raw words (bit count is words * 64).
  const std::vector<uint64_t>& words() const { return words_; }
  static BloomFilter Restore(std::vector<uint64_t> words, size_t num_inserted) {
    BloomFilter f;
    f.bit_mask_ = words.size() * 64 - 1;
    f.words_ = std::move(words);
    f.num_inserted_ = num_inserted;
    return f;
  }

 private:
  static constexpr int kNumProbes = 7;

  std::vector<uint64_t> words_;
  uint64_t bit_mask_;  // number of bits - 1 (power of two)
  size_t num_inserted_ = 0;
};

}  // namespace jsontiles

#endif  // JSONTILES_UTIL_BLOOM_FILTER_H_
