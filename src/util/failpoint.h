// Named, deterministic failure-injection points.
//
// A failpoint is a named hook compiled into a fallible code path (allocation,
// temp-file I/O, worker-task execution). Tests enable a failpoint by name
// with a trigger spec — fire always, on the Nth hit, or on every Kth hit —
// and the hook then reports failure exactly as the real fault would: the
// governor refuses a charge, the temp file returns an I/O Status, the worker
// chunk fails. Every remote/disk/memory failure mode becomes reproducible.
//
// The CMake option JSONTILES_FAILPOINTS (default ON) defines
// JSONTILES_FAILPOINTS_ENABLED. When OFF the JSONTILES_FAILPOINT_* macros
// compile to nothing, so production builds carry zero cost; the registry
// functions stay compiled (they are cold library code) but nothing calls
// them.
//
// Hit counting is per failpoint name and global to the process; tests should
// call failpoint::DisableAll() in their teardown.

#ifndef JSONTILES_UTIL_FAILPOINT_H_
#define JSONTILES_UTIL_FAILPOINT_H_

#include <cstdint>
#include <string>

#include "util/status.h"

#ifdef JSONTILES_FAILPOINTS_ENABLED
#define JSONTILES_FAILPOINTS_AVAILABLE 1
#else
#define JSONTILES_FAILPOINTS_AVAILABLE 0
#endif

namespace jsontiles::failpoint {

struct Spec {
  enum class Mode : uint8_t {
    kAlways,  // fire on every hit
    kNth,     // fire on exactly the n-th hit (1-based)
    kEveryK,  // fire on every k-th hit (hit % k == 0)
  };
  Mode mode = Mode::kAlways;
  uint64_t n = 1;

  static Spec Always() { return Spec{Mode::kAlways, 1}; }
  static Spec Nth(uint64_t n) { return Spec{Mode::kNth, n}; }
  static Spec EveryK(uint64_t k) { return Spec{Mode::kEveryK, k}; }
};

/// Arm `name` with the given trigger. Re-enabling resets the hit count.
void Enable(const std::string& name, Spec spec);
void Disable(const std::string& name);
void DisableAll();

/// Hits recorded for an armed failpoint (0 when never enabled).
uint64_t Hits(const std::string& name);

/// Record a hit; true when the failpoint fires. Disabled or unknown names
/// never fire and cost one relaxed atomic load (no lock, no lookup).
bool Fires(const char* name);

/// Status form: Internal("failpoint '<name>' fired") when it fires.
Status Check(const char* name);

}  // namespace jsontiles::failpoint

#if JSONTILES_FAILPOINTS_AVAILABLE

/// True when the named failpoint fires (counts a hit).
#define JSONTILES_FAILPOINT_FIRES(name) (::jsontiles::failpoint::Fires(name))
/// Status::Internal when the named failpoint fires, OK otherwise.
#define JSONTILES_FAILPOINT_STATUS(name) (::jsontiles::failpoint::Check(name))
/// Propagate the injected failure to the caller (functions returning Status).
#define JSONTILES_FAILPOINT_RETURN(name) \
  JSONTILES_RETURN_NOT_OK(::jsontiles::failpoint::Check(name))

#else  // !JSONTILES_FAILPOINTS_AVAILABLE

#define JSONTILES_FAILPOINT_FIRES(name) (false)
#define JSONTILES_FAILPOINT_STATUS(name) (::jsontiles::Status::OK())
#define JSONTILES_FAILPOINT_RETURN(name) \
  do {                                   \
  } while (0)

#endif  // JSONTILES_FAILPOINTS_AVAILABLE

#endif  // JSONTILES_UTIL_FAILPOINT_H_
