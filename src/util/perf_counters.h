// Hardware performance counters via perf_event_open (paper Table 5).
//
// The paper reports cycles, instructions, branch misses and L1 misses per
// tuple for the micro benchmark. On kernels/containers that forbid
// perf_event_open the counters degrade gracefully to "unavailable" and the
// benchmark reports wall-clock-derived metrics only.

#ifndef JSONTILES_UTIL_PERF_COUNTERS_H_
#define JSONTILES_UTIL_PERF_COUNTERS_H_

#include <cstdint>

namespace jsontiles {

struct PerfSample {
  bool valid = false;
  uint64_t cycles = 0;
  uint64_t instructions = 0;
  uint64_t branch_misses = 0;
  uint64_t l1d_misses = 0;
};

/// Groups the four counters; Start()/Stop() bracket the measured region.
class PerfCounters {
 public:
  PerfCounters();
  ~PerfCounters();

  PerfCounters(const PerfCounters&) = delete;
  PerfCounters& operator=(const PerfCounters&) = delete;

  /// True if at least the cycles counter could be opened.
  bool available() const { return available_; }

  void Start();
  PerfSample Stop();

 private:
  int fd_cycles_ = -1;
  int fd_instructions_ = -1;
  int fd_branch_misses_ = -1;
  int fd_l1d_misses_ = -1;
  bool available_ = false;
};

}  // namespace jsontiles

#endif  // JSONTILES_UTIL_PERF_COUNTERS_H_
