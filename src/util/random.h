// Deterministic PRNG and distributions for the synthetic workload generators.
//
// All generators are seeded explicitly so every benchmark run sees identical
// data. Zipf sampling models the skew of real web data (users, hashtags).

#ifndef JSONTILES_UTIL_RANDOM_H_
#define JSONTILES_UTIL_RANDOM_H_

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

namespace jsontiles {

/// xorshift128+ generator: fast, decent quality, fully deterministic.
class Random {
 public:
  explicit Random(uint64_t seed = 42) {
    s0_ = seed * 0x9e3779b97f4a7c15ULL + 1;
    s1_ = (seed ^ 0xdeadbeefcafebabeULL) * 0xbf58476d1ce4e5b9ULL + 1;
    for (int i = 0; i < 8; i++) Next();
  }

  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform in [0, n).
  uint64_t Uniform(uint64_t n) { return n == 0 ? 0 : Next() % n; }

  /// Uniform in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  bool Chance(double p) { return NextDouble() < p; }

  /// Random lowercase ASCII string of length in [min_len, max_len].
  std::string NextString(int min_len, int max_len) {
    int len = static_cast<int>(Range(min_len, max_len));
    std::string s(static_cast<size_t>(len), 'a');
    for (char& c : s) c = static_cast<char>('a' + Uniform(26));
    return s;
  }

 private:
  uint64_t s0_, s1_;
};

/// Zipf-distributed values over [0, n) with parameter `theta` (0 < theta < 1
/// typical), using the standard inverse-CDF-free rejection method of Gray et
/// al. (as in YCSB).
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta = 0.99);

  uint64_t Next(Random& rng);

  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  double theta_;
  double alpha_, zetan_, eta_, zeta2_;
};

inline double ZetaStatic(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; i++) sum += 1.0 / std::pow(static_cast<double>(i), theta);
  return sum;
}

inline ZipfGenerator::ZipfGenerator(uint64_t n, double theta)
    : n_(n), theta_(theta) {
  zetan_ = ZetaStatic(n, theta);
  zeta2_ = ZetaStatic(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta2_ / zetan_);
}

inline uint64_t ZipfGenerator::Next(Random& rng) {
  double u = rng.NextDouble();
  double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  uint64_t v = static_cast<uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return v >= n_ ? n_ - 1 : v;
}

}  // namespace jsontiles

#endif  // JSONTILES_UTIL_RANDOM_H_
