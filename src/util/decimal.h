// SQL Numeric: fixed-point decimal used for numeric-string detection in the
// binary JSON format (paper §5.2).
//
// Strings such as "19.99" (monetary values) are detected at JSONB build time
// and stored typed. Round-trip safety holds because sign, digits, and scale
// reconstruct the exact original text; strings that are not in canonical
// decimal form (leading zeros, exponents, etc.) stay plain strings.

#ifndef JSONTILES_UTIL_DECIMAL_H_
#define JSONTILES_UTIL_DECIMAL_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace jsontiles {

/// A decimal value `unscaled * 10^-scale` with up to 18 significant digits.
struct Numeric {
  int64_t unscaled = 0;
  uint8_t scale = 0;

  double ToDouble() const;
  int64_t ToInt64() const;  // truncates toward zero

  /// Exact textual form ("-12.50" keeps its trailing zero via scale).
  std::string ToString() const;

  friend bool operator==(const Numeric&, const Numeric&) = default;
};

/// Parse a canonical decimal: `-?(0|[1-9][0-9]*)(\.[0-9]+)?` with at most 18
/// total digits. Returns false for anything else (exponents, leading '+',
/// leading zeros, lone '.', empty). Canonical-only parsing is what makes the
/// numeric-string representation round-trip safe.
bool ParseNumeric(std::string_view s, Numeric* out);

/// True when `s` would be detected as a numeric string (§5.2).
inline bool LooksLikeNumeric(std::string_view s) {
  Numeric n;
  return ParseNumeric(s, &n);
}

}  // namespace jsontiles

#endif  // JSONTILES_UTIL_DECIMAL_H_
