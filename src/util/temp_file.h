// RAII temp files for spill runs.
//
// Create() makes a file under `dir` (default $TMPDIR, else /tmp) with
// mkstemp and unlinks it immediately: the kernel reclaims the bytes when the
// last descriptor closes, so spill storage can never outlive the process —
// not on early unwind, not even on abort. The wrapper owns the descriptor
// (closed in the destructor; move-only) and tracks the logical size, giving
// the append/pread access pattern spill runs need without any seek state.

#ifndef JSONTILES_UTIL_TEMP_FILE_H_
#define JSONTILES_UTIL_TEMP_FILE_H_

#include <cstdint>
#include <string>
#include <utility>

#include "util/status.h"

namespace jsontiles {

class TempFile {
 public:
  /// An invalid handle; assign from Create().
  TempFile() = default;

  /// Create-and-unlink a temp file. `dir` empty: $TMPDIR, else /tmp.
  static Result<TempFile> Create(const std::string& dir = {});

  ~TempFile() { Close(); }

  TempFile(TempFile&& other) noexcept
      : fd_(std::exchange(other.fd_, -1)), size_(std::exchange(other.size_, 0)) {}
  TempFile& operator=(TempFile&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = std::exchange(other.fd_, -1);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }
  TempFile(const TempFile&) = delete;
  TempFile& operator=(const TempFile&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  /// Bytes appended so far.
  uint64_t size() const { return size_; }

  /// Append `size` bytes at the end (full write or error).
  Status Append(const void* data, size_t size);

  /// Read exactly `size` bytes at `offset` (short reads are errors).
  Status ReadAt(uint64_t offset, void* dst, size_t size) const;

 private:
  void Close();

  int fd_ = -1;
  uint64_t size_ = 0;
};

}  // namespace jsontiles

#endif  // JSONTILES_UTIL_TEMP_FILE_H_
