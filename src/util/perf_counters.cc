#include "util/perf_counters.h"

#ifdef __linux__
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cstring>
#include <initializer_list>
#endif

namespace jsontiles {

#ifdef __linux__

namespace {

int OpenCounter(uint32_t type, uint64_t config, int group_fd) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = type;
  attr.config = config;
  attr.disabled = group_fd == -1 ? 1 : 0;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  return static_cast<int>(
      syscall(SYS_perf_event_open, &attr, 0, -1, group_fd, 0));
}

uint64_t ReadCounter(int fd) {
  if (fd < 0) return 0;
  uint64_t value = 0;
  if (read(fd, &value, sizeof(value)) != sizeof(value)) return 0;
  return value;
}

}  // namespace

PerfCounters::PerfCounters() {
  fd_cycles_ = OpenCounter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES, -1);
  if (fd_cycles_ >= 0) {
    available_ = true;
    fd_instructions_ =
        OpenCounter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS, fd_cycles_);
    fd_branch_misses_ =
        OpenCounter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES, fd_cycles_);
    fd_l1d_misses_ = OpenCounter(
        PERF_TYPE_HW_CACHE,
        PERF_COUNT_HW_CACHE_L1D | (PERF_COUNT_HW_CACHE_OP_READ << 8) |
            (PERF_COUNT_HW_CACHE_RESULT_MISS << 16),
        fd_cycles_);
  }
}

PerfCounters::~PerfCounters() {
  for (int fd : {fd_cycles_, fd_instructions_, fd_branch_misses_, fd_l1d_misses_}) {
    if (fd >= 0) close(fd);
  }
}

void PerfCounters::Start() {
  if (!available_) return;
  ioctl(fd_cycles_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ioctl(fd_cycles_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
}

PerfSample PerfCounters::Stop() {
  PerfSample sample;
  if (!available_) return sample;
  ioctl(fd_cycles_, PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP);
  sample.valid = true;
  sample.cycles = ReadCounter(fd_cycles_);
  sample.instructions = ReadCounter(fd_instructions_);
  sample.branch_misses = ReadCounter(fd_branch_misses_);
  sample.l1d_misses = ReadCounter(fd_l1d_misses_);
  return sample;
}

#else  // !__linux__

PerfCounters::PerfCounters() = default;
PerfCounters::~PerfCounters() = default;
void PerfCounters::Start() {}
PerfSample PerfCounters::Stop() { return PerfSample{}; }

#endif

}  // namespace jsontiles
