// HyperLogLog sketch (Flajolet et al. [25]) used for distinct-count
// statistics on extracted key paths (paper §4.6).
//
// 2^p registers of 6 bits (stored as bytes). Sketches from different tiles
// merge by taking the register-wise maximum, which is how relation-level
// statistics are aggregated.

#ifndef JSONTILES_UTIL_HYPERLOGLOG_H_
#define JSONTILES_UTIL_HYPERLOGLOG_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "util/hash.h"

namespace jsontiles {

class HyperLogLog {
 public:
  /// `precision` p in [4, 16]; 2^p registers. Default 2^11 = 2048 registers
  /// (~1.6 KiB, ±2.3% standard error).
  explicit HyperLogLog(int precision = 11);

  void Add(uint64_t hash);
  void AddString(std::string_view s) { Add(HashString(s)); }
  void AddInt(uint64_t v) { Add(HashInt(v)); }

  /// Estimated number of distinct elements added.
  double Estimate() const;

  /// Merge another sketch of the same precision (register-wise max).
  void Merge(const HyperLogLog& other);

  int precision() const { return precision_; }
  size_t SizeBytes() const { return registers_.size(); }

  /// Serialization support.
  const std::vector<uint8_t>& registers() const { return registers_; }
  static HyperLogLog Restore(int precision, std::vector<uint8_t> registers) {
    HyperLogLog h(precision);
    h.registers_ = std::move(registers);
    return h;
  }

 private:
  int precision_;
  std::vector<uint8_t> registers_;
};

}  // namespace jsontiles

#endif  // JSONTILES_UTIL_HYPERLOGLOG_H_
