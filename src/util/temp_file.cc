#include "util/temp_file.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

#include "util/failpoint.h"

namespace jsontiles {

Result<TempFile> TempFile::Create(const std::string& dir) {
  JSONTILES_FAILPOINT_RETURN("tempfile.create");
  std::string base = dir;
  if (base.empty()) {
    const char* env = std::getenv("TMPDIR");
    base = (env != nullptr && env[0] != '\0') ? env : "/tmp";
  }
  std::string templ = base + "/jsontiles_spill_XXXXXX";
  std::vector<char> path(templ.begin(), templ.end());
  path.push_back('\0');
  int fd = ::mkstemp(path.data());
  if (fd < 0) {
    return Status::Internal(std::string("mkstemp failed in '") + base +
                            "': " + std::strerror(errno));
  }
  // Unlink now: the file survives only as long as the descriptor, so spill
  // runs can never leak past the process, whatever the unwind path.
  ::unlink(path.data());
  TempFile f;
  f.fd_ = fd;
  return f;
}

void TempFile::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  size_ = 0;
}

Status TempFile::Append(const void* data, size_t size) {
  JSONTILES_FAILPOINT_RETURN("tempfile.append");
  if (fd_ < 0) return Status::Internal("TempFile::Append on invalid handle");
  const uint8_t* p = static_cast<const uint8_t*>(data);
  size_t left = size;
  uint64_t offset = size_;
  while (left > 0) {
    ssize_t n = ::pwrite(fd_, p, left, static_cast<off_t>(offset));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("spill write failed: ") +
                              std::strerror(errno));
    }
    p += n;
    offset += static_cast<uint64_t>(n);
    left -= static_cast<size_t>(n);
  }
  size_ += size;
  return Status::OK();
}

Status TempFile::ReadAt(uint64_t offset, void* dst, size_t size) const {
  JSONTILES_FAILPOINT_RETURN("tempfile.read");
  if (fd_ < 0) return Status::Internal("TempFile::ReadAt on invalid handle");
  uint8_t* p = static_cast<uint8_t*>(dst);
  size_t left = size;
  while (left > 0) {
    ssize_t n = ::pread(fd_, p, left, static_cast<off_t>(offset));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("spill read failed: ") +
                              std::strerror(errno));
    }
    if (n == 0) {
      return Status::Internal("spill read past end of temp file");
    }
    p += n;
    offset += static_cast<uint64_t>(n);
    left -= static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace jsontiles
