// 64-bit hashing used by the bloom filter, HyperLogLog, hash joins and
// aggregation. A simple seeded wyhash-style byte hash plus integer mixers.

#ifndef JSONTILES_UTIL_HASH_H_
#define JSONTILES_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "util/bit_util.h"

namespace jsontiles {

/// Finalizer from MurmurHash3; a good standalone integer mixer.
inline uint64_t HashInt(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Seeded hash over arbitrary bytes (FNV-1a core with a strong finalizer).
inline uint64_t HashBytes(const void* data, size_t len, uint64_t seed = 0) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint64_t h = 0xcbf29ce484222325ULL ^ HashInt(seed + len);
  // Consume 8 bytes at a time.
  while (len >= 8) {
    h = (h ^ bit_util::LoadU64(p)) * 0x100000001b3ULL;
    h = (h << 31) | (h >> 33);
    p += 8;
    len -= 8;
  }
  while (len > 0) {
    h = (h ^ *p) * 0x100000001b3ULL;
    p++;
    len--;
  }
  return HashInt(h);
}

inline uint64_t HashString(std::string_view s, uint64_t seed = 0) {
  return HashBytes(s.data(), s.size(), seed);
}

/// Combine two hashes (boost-style).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4));
}

}  // namespace jsontiles

#endif  // JSONTILES_UTIL_HASH_H_
