// Lightweight assertion macros used throughout the library.
//
// The library does not use exceptions (fallible public APIs return Status /
// Result<T>); CHECK-style macros guard internal invariants and abort with a
// message on violation. DCHECK compiles away in release builds.

#ifndef JSONTILES_UTIL_LOGGING_H_
#define JSONTILES_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>

namespace jsontiles {

[[noreturn]] inline void FatalError(const char* file, int line, const char* expr) {
  std::fprintf(stderr, "FATAL %s:%d: check failed: %s\n", file, line, expr);
  std::abort();
}

}  // namespace jsontiles

#define JSONTILES_CHECK(expr)                            \
  do {                                                   \
    if (!(expr)) {                                       \
      ::jsontiles::FatalError(__FILE__, __LINE__, #expr); \
    }                                                    \
  } while (0)

#ifdef NDEBUG
#define JSONTILES_DCHECK(expr) \
  do {                         \
  } while (0)
#else
#define JSONTILES_DCHECK(expr) JSONTILES_CHECK(expr)
#endif

#endif  // JSONTILES_UTIL_LOGGING_H_
