// Status and Result<T>: exception-free error propagation.
//
// Modeled after arrow::Status / absl::Status. Library code that can fail on
// user input (e.g. JSON parsing) returns Status or Result<T>; internal
// invariants use JSONTILES_CHECK instead.

#ifndef JSONTILES_UTIL_STATUS_H_
#define JSONTILES_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "util/logging.h"

namespace jsontiles {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kParseError,
  kOutOfRange,
  kNotFound,
  kUnsupported,
  kInternal,
  /// A query was cancelled cooperatively (user request, runaway policy,
  /// resource-group teardown). Distinct from kInternal so callers can tell a
  /// deliberate cancellation from a fault.
  kCancelled,
  /// An admission or quota decision refused the work cleanly: concurrency
  /// queue full, admission timeout, memory reserve or spill-disk budget
  /// exhausted. Retrying later may succeed.
  kResourceExhausted,
};

/// Highest valid code. The wire layer (dist/wire.cc) validates decoded
/// status codes against this bound — keep it on the last enumerator so new
/// codes remain decodable without touching every bounds check.
inline constexpr StatusCode kMaxStatusCode = StatusCode::kResourceExhausted;

/// Result of a fallible operation: either OK or a code plus message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return CodeName(code_) + std::string(": ") + message_;
  }

 private:
  static const char* CodeName(StatusCode code) {
    switch (code) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "InvalidArgument";
      case StatusCode::kParseError: return "ParseError";
      case StatusCode::kOutOfRange: return "OutOfRange";
      case StatusCode::kNotFound: return "NotFound";
      case StatusCode::kUnsupported: return "Unsupported";
      case StatusCode::kInternal: return "Internal";
      case StatusCode::kCancelled: return "Cancelled";
      case StatusCode::kResourceExhausted: return "ResourceExhausted";
    }
    return "Unknown";
  }

  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status.
template <typename T>
class Result {
 public:
  Result(T value) : storage_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : storage_(std::move(status)) {  // NOLINT
    JSONTILES_DCHECK(!std::get<Status>(storage_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(storage_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(storage_);
  }

  /// Access the value; aborts when holding an error.
  T& ValueOrDie() {
    JSONTILES_CHECK(ok());
    return std::get<T>(storage_);
  }
  const T& ValueOrDie() const {
    JSONTILES_CHECK(ok());
    return std::get<T>(storage_);
  }
  T&& MoveValueOrDie() {
    JSONTILES_CHECK(ok());
    return std::move(std::get<T>(storage_));
  }

 private:
  std::variant<T, Status> storage_;
};

}  // namespace jsontiles

/// Propagate a non-OK Status to the caller.
#define JSONTILES_RETURN_NOT_OK(expr)          \
  do {                                         \
    ::jsontiles::Status _st = (expr);          \
    if (!_st.ok()) return _st;                 \
  } while (0)

#endif  // JSONTILES_UTIL_STATUS_H_
