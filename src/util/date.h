// Date / time / timestamp support (paper §4.9).
//
// Timestamps are int64 microseconds since the Unix epoch (SQL Timestamp).
// The tile extractor samples string columns and, when values parse as one of
// the recognized date/time formats, materializes them as Timestamp. On
// access, a cast to a Date/Time-like SQL type reads the extracted value
// directly; other casts fall back to the original string in the binary JSON.

#ifndef JSONTILES_UTIL_DATE_H_
#define JSONTILES_UTIL_DATE_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace jsontiles {

using Timestamp = int64_t;  // microseconds since 1970-01-01 00:00:00 UTC

constexpr int64_t kMicrosPerSecond = 1000000;
constexpr int64_t kMicrosPerDay = 86400LL * kMicrosPerSecond;

/// Days since epoch for a civil date (proleptic Gregorian).
int64_t DaysFromCivil(int year, int month, int day);

/// Inverse of DaysFromCivil.
void CivilFromDays(int64_t days, int* year, int* month, int* day);

/// Build a timestamp from components (fractional microseconds optional).
Timestamp MakeTimestamp(int year, int month, int day, int hour = 0, int minute = 0,
                        int second = 0, int micros = 0);

/// Recognized formats:
///   YYYY-MM-DD
///   YYYY-MM-DD[ T]HH:MM:SS[.ffffff][Z|±HH[:MM]]
///   Www Mmm DD HH:MM:SS ±ZZZZ YYYY   (Twitter API format)
/// Returns false when `s` does not match any format or has invalid fields.
bool ParseTimestamp(std::string_view s, Timestamp* out);

/// True if `s` looks like a date/time (ParseTimestamp succeeds).
inline bool LooksLikeTimestamp(std::string_view s) {
  Timestamp t;
  return ParseTimestamp(s, &t);
}

/// Format as "YYYY-MM-DD" (time-of-day dropped).
std::string FormatDate(Timestamp ts);

/// Format as "YYYY-MM-DD HH:MM:SS[.ffffff]".
std::string FormatTimestamp(Timestamp ts);

/// Extract the year of a timestamp (UTC).
int TimestampYear(Timestamp ts);

/// Add `n` days / months / years to a timestamp (calendar-aware for months).
Timestamp AddDays(Timestamp ts, int64_t n);
Timestamp AddMonths(Timestamp ts, int n);
Timestamp AddYears(Timestamp ts, int n);

}  // namespace jsontiles

#endif  // JSONTILES_UTIL_DATE_H_
