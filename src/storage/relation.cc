#include "storage/relation.h"

#include "tiles/tile_builder.h"

namespace jsontiles::storage {

const char* StorageModeName(StorageMode mode) {
  switch (mode) {
    case StorageMode::kJsonText: return "JSON";
    case StorageMode::kJsonb: return "JSONB";
    case StorageMode::kSinew: return "Sinew";
    case StorageMode::kTiles: return "Tiles";
  }
  return "?";
}

const tiles::Tile* Relation::TileForRow(size_t row) const {
  if (tiles_.empty()) return nullptr;
  if (tiles_.size() == 1) return &tiles_[0];  // Sinew: one global tile
  size_t index = row / config_.tile_size;
  if (index >= tiles_.size()) index = tiles_.size() - 1;
  return &tiles_[index];
}

size_t Relation::TileBytes() const {
  size_t bytes = 0;
  for (const auto& tile : tiles_) bytes += tile.ColumnMemoryBytes();
  return bytes;
}

Status Relation::UpdateRow(size_t row, std::string_view json_text) {
  if (row >= num_rows_) return Status::OutOfRange("row out of range");
  if (mode_ == StorageMode::kJsonText) {
    docs_[row] = DocRef{
        arena_.AllocateCopy(json_text.data(), json_text.size()), json_text.size()};
    return Status::OK();
  }
  json::JsonbBuilder builder;
  std::vector<uint8_t> buf;
  JSONTILES_RETURN_NOT_OK(builder.Transform(json_text, &buf));
  docs_[row] = DocRef{arena_.AllocateCopy(buf.data(), buf.size()), buf.size()};

  if (mode_ == StorageMode::kSinew || mode_ == StorageMode::kTiles) {
    size_t tile_index = tiles_.size() == 1 ? 0 : row / config_.tile_size;
    if (tile_index < tiles_.size()) {
      tiles::Tile& tile = tiles_[tile_index];
      tiles::UpdateTileRow(&tile, row - tile.row_begin, Jsonb(row), config_);
      if (tile.NeedsRecompute()) {
        // §4.7: recompute the materialized tile once most tuples mismatch.
        std::vector<json::JsonbValue> docs;
        docs.reserve(tile.row_count);
        for (size_t r = tile.row_begin; r < tile.row_begin + tile.row_count; r++) {
          docs.push_back(Jsonb(r));
        }
        tiles::TileBuilder tile_builder(config_);
        tile = tile_builder.Build(docs, tile.row_begin);
      }
    }
  }
  return Status::OK();
}

}  // namespace jsontiles::storage
