// A relation holding one JSON column under a selectable storage strategy.
//
// The paper's internal competitor set (§6) shares one engine and differs only
// in storage:
//   kJsonText — the document is stored as its raw text; every access parses.
//   kJsonb    — per-document binary JSON (§5); accesses are typed lookups.
//   kSinew    — Tahara et al. [57]: one *global* extraction over the whole
//               table at 60% table frequency, on top of JSONB. No per-tile
//               adaptation, no reordering, no date extraction, no optimizer
//               statistics.
//   kTiles    — JSON tiles: local extraction per tile, reordering,
//               statistics, date detection (this paper).

#ifndef JSONTILES_STORAGE_RELATION_H_
#define JSONTILES_STORAGE_RELATION_H_

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "json/jsonb.h"
#include "tiles/stats.h"
#include "tiles/tile.h"
#include "tiles/tile_config.h"
#include "util/arena.h"
#include "util/status.h"

namespace jsontiles::storage {

enum class StorageMode { kJsonText, kJsonb, kSinew, kTiles };

const char* StorageModeName(StorageMode mode);

class Relation {
 public:
  Relation(std::string name, StorageMode mode, tiles::TileConfig config = {})
      : name_(std::move(name)), mode_(mode), config_(config) {}

  Relation(const Relation&) = delete;
  Relation& operator=(const Relation&) = delete;

  const std::string& name() const { return name_; }
  StorageMode mode() const { return mode_; }
  const tiles::TileConfig& config() const { return config_; }
  size_t num_rows() const { return num_rows_; }

  /// Raw JSON text of a row (kJsonText only).
  std::string_view JsonText(size_t row) const {
    return {reinterpret_cast<const char*>(docs_[row].data), docs_[row].size};
  }

  /// Binary JSON document of a row (all modes except kJsonText).
  json::JsonbValue Jsonb(size_t row) const {
    return json::JsonbValue(docs_[row].data);
  }

  /// Byte size of the stored document (text or binary).
  size_t DocSize(size_t row) const { return docs_[row].size; }

  /// Materialized tiles (kSinew: exactly one covering the whole table).
  const std::vector<tiles::Tile>& tiles() const { return tiles_; }
  std::vector<tiles::Tile>& tiles() { return tiles_; }

  const tiles::Tile* TileForRow(size_t row) const;

  /// Relation-level optimizer statistics (kTiles only; Sinew has none, §6.1).
  const tiles::RelationStats& stats() const { return stats_; }
  tiles::RelationStats& stats() { return stats_; }
  bool has_stats() const { return mode_ == StorageMode::kTiles; }

  /// Side relations from high-cardinality array extraction (Tiles-*, §3.5):
  /// encoded array path -> relation of exploded elements (each carrying
  /// `_rowid`).
  const std::unordered_map<std::string, std::unique_ptr<Relation>>&
  side_relations() const {
    return side_relations_;
  }
  Relation* AddSideRelation(const std::string& array_path,
                            std::unique_ptr<Relation> relation) {
    auto [it, _] = side_relations_.emplace(array_path, std::move(relation));
    return it->second.get();
  }
  const Relation* FindSideRelation(std::string_view array_path) const {
    auto it = side_relations_.find(std::string(array_path));
    return it == side_relations_.end() ? nullptr : it->second.get();
  }

  /// §4.7: replace the document of `row` with new JSON text, updating the
  /// covering tile's columns in place. Triggers a tile recompute when the
  /// majority of the tile's tuples have become outliers.
  Status UpdateRow(size_t row, std::string_view json_text);

  /// Total bytes of stored documents.
  size_t DocumentBytes() const { return document_bytes_; }
  /// Total bytes of materialized tile columns + headers.
  size_t TileBytes() const;

  // Internal: used by the loader.
  void AppendDoc(const uint8_t* data, size_t size) {
    docs_.push_back(DocRef{arena_.AllocateCopy(data, size), size});
    document_bytes_ += size;
    num_rows_++;
  }
  Arena* arena() { return &arena_; }

 private:
  struct DocRef {
    const uint8_t* data;
    size_t size;
  };

  std::string name_;
  StorageMode mode_;
  tiles::TileConfig config_;
  Arena arena_;
  std::vector<DocRef> docs_;
  std::vector<tiles::Tile> tiles_;
  tiles::RelationStats stats_;
  std::unordered_map<std::string, std::unique_ptr<Relation>> side_relations_;
  size_t num_rows_ = 0;
  size_t document_bytes_ = 0;
};

}  // namespace jsontiles::storage

#endif  // JSONTILES_STORAGE_RELATION_H_
