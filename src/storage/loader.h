// Parallel bulk loading (paper §3.2 "the tile partitioning parallelizes
// well", §6.8 Figures 16/17).
//
// The input is split into partitions of partition_size * tile_size documents;
// worker threads process partitions independently (no interaction needed, the
// information is disjoint): transform text to binary JSON, collect key paths,
// reorder tuples within the partition, mine itemsets per tile and materialize
// columns. A short serial phase appends the results in partition order, so
// the loaded relation is deterministic regardless of thread scheduling.

#ifndef JSONTILES_STORAGE_LOADER_H_
#define JSONTILES_STORAGE_LOADER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "storage/relation.h"
#include "util/status.h"

namespace jsontiles::storage {

/// Per-phase insertion time breakdown (Figure 16). With multiple threads the
/// phase times are summed CPU seconds across workers.
struct LoadBreakdown {
  double jsonb_secs = 0;    // text -> JSONB transformation + storing
  double mine_secs = 0;     // key-path collection + per-tile itemset mining
  double reorder_secs = 0;  // partition reordering (§3.2)
  double extract_secs = 0;  // column materialization + statistics
  double total_wall_secs = 0;
  size_t tuples = 0;
  size_t moved_tuples = 0;
  /// Malformed documents skipped under LoadOptions::max_errors.
  size_t skipped_docs = 0;

  double TuplesPerSecond() const {
    return total_wall_secs > 0 ? static_cast<double>(tuples) / total_wall_secs : 0;
  }
};

struct LoadOptions {
  size_t num_threads = 1;
  /// Use the two-stage on-demand parse path (json/ondemand.h) for the
  /// text -> JSONB phase: a SIMD structural-index scan plus a lazy walker,
  /// falling back per document to the streaming parser on any anomaly.
  /// Produces byte-identical JSONB and an identical LoadBreakdown; purely a
  /// speed knob, enforced by the parser-differential CI leg.
  bool ondemand = false;
  /// Degraded-mode loading: skip (and count, across all partitions) up to
  /// this many malformed documents instead of failing the whole load. The
  /// default 0 keeps fail-fast behavior: the first parse error aborts.
  /// Skipped documents are reported in LoadBreakdown::skipped_docs.
  size_t max_errors = 0;
  /// Tiles-*: extract high-cardinality arrays into side relations (§3.5).
  bool extract_arrays = false;
  double array_min_avg_elements = 2.0;
  double array_min_presence = 0.2;
  size_t array_detect_sample = 1024;
  /// When several Loader instances load shards of one dataset concurrently,
  /// they share a skip counter so max_errors caps the skips globally, not
  /// per shard. LoadBreakdown::skipped_docs still reports this load's own
  /// skips. Null (the default) keeps a private counter.
  std::atomic<size_t>* shared_skip_counter = nullptr;
  /// Added to local row indices when materializing parent row ids in array
  /// side relations (`_rowid`), so a shard's side rows reference global ids.
  int64_t rowid_base = 0;
};

class Loader {
 public:
  Loader(StorageMode mode, tiles::TileConfig config, LoadOptions options = {})
      : mode_(mode), config_(config), options_(options) {}

  /// Bulk load JSON documents (one per element). On success the returned
  /// relation is fully materialized per the storage mode.
  Result<std::unique_ptr<Relation>> Load(const std::vector<std::string>& docs,
                                         const std::string& name,
                                         LoadBreakdown* breakdown = nullptr);

 private:
  StorageMode mode_;
  tiles::TileConfig config_;
  LoadOptions options_;
};

}  // namespace jsontiles::storage

#endif  // JSONTILES_STORAGE_LOADER_H_
