#include "storage/shard.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "json/jsonb.h"
#include "json/ondemand.h"
#include "obs/obs.h"
#include "storage/serialize.h"
#include "tiles/keypath.h"
#include "util/bit_util.h"
#include "util/failpoint.h"
#include "util/thread_pool.h"

namespace jsontiles::storage {

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

/// Documents-per-shard cap mirrored by OpenSharded validation: a corrupt
/// manifest cannot make us allocate an absurd shard vector.
constexpr uint64_t kMaxShardCount = 4096;

Status AnnotateShard(const Status& st, size_t shard, const std::string& name) {
  return Status(st.code(), "shard " + std::to_string(shard) + " of '" + name +
                               "': " + st.message());
}

/// Per-document routing decision. Returns the target shard and classifies
/// the routing value so ShardedRelation::routing_kind() can tell the exec
/// layer whether equality pruning is sound.
struct RouteFlags {
  bool has_int = false;
  bool has_string = false;
  bool has_other = false;
};

uint32_t RouteOne(std::string_view doc, size_t index, size_t shard_count,
                  const std::string& routing_path, json::JsonbBuilder* builder,
                  json::OndemandTransformer* ondemand,
                  std::vector<uint8_t>* scratch, RouteFlags* flags) {
  const uint32_t fallback = static_cast<uint32_t>(index % shard_count);
  scratch->clear();
  // Both parse paths produce byte-identical JSONB, so the routing decision
  // cannot depend on which one LoadOptions::ondemand selected.
  const Status parse_st = ondemand != nullptr
                              ? ondemand->Transform(doc, scratch)
                              : builder->Transform(doc, scratch);
  if (!parse_st.ok()) {
    // Malformed: route by position; the shard loader applies the
    // max_errors policy exactly as an unsharded load would.
    return fallback;
  }
  auto value =
      tiles::LookupPath(json::JsonbValue(scratch->data()), routing_path);
  if (!value.has_value()) return fallback;
  switch (value->type()) {
    case json::JsonType::kNull:
      // SQL NULL never matches an equality predicate, so position-routing
      // nulls keeps pruning sound without flagging kMixed.
      return fallback;
    case json::JsonType::kInt:
      flags->has_int = true;
      return static_cast<uint32_t>(ShardKeyHashInt(value->GetInt()) %
                                   shard_count);
    case json::JsonType::kFloat: {
      double d = value->GetDouble();
      if (std::floor(d) == d && d >= -9223372036854775808.0 &&
          d < 9223372036854775808.0) {
        flags->has_int = true;
        return static_cast<uint32_t>(
            ShardKeyHashInt(static_cast<int64_t>(d)) % shard_count);
      }
      flags->has_other = true;
      return fallback;
    }
    case json::JsonType::kString:
      flags->has_string = true;
      return static_cast<uint32_t>(ShardKeyHashString(value->GetString()) %
                                   shard_count);
    default:
      // Bools, numeric strings, objects, arrays: no pruning contract.
      flags->has_other = true;
      return fallback;
  }
}

RoutingValueKind KindFromFlags(const RouteFlags& f) {
  if (f.has_other || (f.has_int && f.has_string)) {
    return RoutingValueKind::kMixed;
  }
  if (f.has_int) return RoutingValueKind::kIntOnly;
  if (f.has_string) return RoutingValueKind::kStringOnly;
  return RoutingValueKind::kNone;
}

// --- Manifest serialization ------------------------------------------------
// serialize.cc keeps its Writer/Reader in an anonymous namespace, so the
// manifest carries its own small LEB128 writer/reader with the same
// defensive shape (bounds-checked reads, JT_READ-style early returns).

constexpr char kManifestMagic[4] = {'J', 'T', 'S', 'M'};
// Version 2 appends a per-shard side-relation inventory (path + rows) to
// each shard entry, so a coordinator can plan side-scan fragments from the
// manifest alone. Version-1 manifests are still accepted (no inventory).
constexpr uint32_t kManifestVersion = 2;

class ManifestWriter {
 public:
  explicit ManifestWriter(std::vector<uint8_t>* out) : out_(out) {}

  void U8(uint8_t v) { out_->push_back(v); }
  void Varint(uint64_t v) {
    uint8_t buf[10];
    int n = bit_util::EncodeVarint(buf, v);
    out_->insert(out_->end(), buf, buf + n);
  }
  void F64(double v) {
    size_t pos = out_->size();
    out_->resize(pos + 8);
    std::memcpy(out_->data() + pos, &v, 8);
  }
  void Str(std::string_view s) {
    Varint(s.size());
    out_->insert(out_->end(), s.begin(), s.end());
  }

 private:
  std::vector<uint8_t>* out_;
};

class ManifestReader {
 public:
  ManifestReader(const uint8_t* data, size_t size)
      : data_(data), size_(size) {}

  bool U8(uint8_t* v) {
    if (pos_ >= size_) return false;
    *v = data_[pos_++];
    return true;
  }
  bool Varint(uint64_t* v) {
    uint64_t result = 0;
    int shift = 0;
    while (pos_ < size_) {
      uint8_t b = data_[pos_++];
      result |= static_cast<uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) {
        *v = result;
        return true;
      }
      shift += 7;
      if (shift > 63) return false;
    }
    return false;
  }
  bool F64(double* v) {
    if (pos_ + 8 > size_) return false;
    std::memcpy(v, data_ + pos_, 8);
    pos_ += 8;
    return true;
  }
  bool Str(std::string* s) {
    uint64_t n;
    if (!Varint(&n) || pos_ + n > size_) return false;
    s->assign(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return true;
  }
  bool AtEnd() const { return pos_ == size_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

#define JTSM_READ(expr) \
  if (!(expr)) return Status::ParseError("corrupt shard manifest: " #expr)

Status WriteFile(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::Internal("cannot open " + path);
  size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (written != bytes.size()) {
    return Status::Internal("short write to " + path);
  }
  return Status::OK();
}

Result<std::vector<uint8_t>> ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("cannot open " + path);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (size < 0) {
    std::fclose(f);
    return Status::Internal("cannot stat " + path);
  }
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  size_t read = std::fread(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (read != bytes.size()) return Status::Internal("short read from " + path);
  return bytes;
}

std::string ShardFileName(const std::string& name, size_t shard) {
  return name + ".shard-" + std::to_string(shard) + ".jtrl";
}

}  // namespace

ShardStats ComputeShardStats(const Relation& shard) {
  ShardStats stats;
  if (shard.mode() != StorageMode::kTiles) return stats;

  // Bloom: the union of the tile blooms. Tile blooms cover every path
  // MayContainPath would say yes to (extracted-path prefixes plus seen
  // non-extracted paths), so the union is a sound shard-level filter. All
  // tiles are built with the same bloom geometry; bail out (no path stats)
  // if a restored relation ever disagrees.
  std::vector<uint64_t> words;
  size_t inserted = 0;
  bool geometry_ok = true;
  for (const auto& tile : shard.tiles()) {
    const auto& tw = tile.seen_paths().words();
    if (words.empty()) {
      words = tw;
    } else if (tw.size() != words.size()) {
      geometry_ok = false;
      break;
    } else {
      for (size_t i = 0; i < words.size(); i++) words[i] |= tw[i];
    }
    inserted += tile.seen_paths().num_inserted();
  }
  if (!geometry_ok) return stats;
  stats.has_path_stats = true;
  if (!words.empty()) {
    stats.paths = BloomFilter::Restore(std::move(words), inserted);
  }

  // Zone maps: for every path any tile extracted with a min/max, widen the
  // range across tiles. The entry is only valid when every tile that may
  // contain the path has a trustworthy extracted column of one
  // order-preserving storage class — otherwise values hide in binary JSON
  // (or in another class) outside the range.
  auto int_class = [](tiles::ColumnType t) {
    return t == tiles::ColumnType::kInt64 || t == tiles::ColumnType::kTimestamp;
  };
  for (const auto& tile : shard.tiles()) {
    for (const auto& col : tile.columns) {
      if (!col.has_minmax) continue;
      auto [it, fresh] = stats.zones.try_emplace(col.path);
      if (fresh) it->second.storage_type = col.storage_type;
    }
  }
  for (auto& [path, zone] : stats.zones) {
    for (const auto& tile : shard.tiles()) {
      if (!tile.MayContainPath(path)) continue;
      const tiles::ExtractedColumn* col = tile.FindColumn(path);
      if (col == nullptr || !col->has_minmax || col->has_type_outliers) {
        zone.valid = false;
        break;
      }
      bool same_class =
          (int_class(col->storage_type) && int_class(zone.storage_type)) ||
          (col->storage_type == tiles::ColumnType::kFloat64 &&
           zone.storage_type == tiles::ColumnType::kFloat64);
      if (!same_class) {
        zone.valid = false;
        break;
      }
      // Timestamp beats plain Int64 when both appear: scans compare
      // timestamps as int64 microseconds either way.
      if (!zone.any_values) {
        zone.min_i = col->min_i;
        zone.max_i = col->max_i;
        zone.min_d = col->min_d;
        zone.max_d = col->max_d;
        zone.any_values = true;
      } else {
        zone.min_i = std::min(zone.min_i, col->min_i);
        zone.max_i = std::max(zone.max_i, col->max_i);
        zone.min_d = std::min(zone.min_d, col->min_d);
        zone.max_d = std::max(zone.max_d, col->max_d);
      }
    }
    if (!zone.any_values) zone.valid = false;
  }
  // Drop invalid entries so FindZone misses are cheap and unambiguous.
  for (auto it = stats.zones.begin(); it != stats.zones.end();) {
    if (it->second.valid) {
      ++it;
    } else {
      it = stats.zones.erase(it);
    }
  }
  return stats;
}

Result<std::unique_ptr<ShardedRelation>> ShardedRelation::Load(
    const std::vector<std::string>& docs, const std::string& name,
    StorageMode mode, tiles::TileConfig config, LoadOptions load_options,
    ShardOptions shard_options, LoadBreakdown* breakdown) {
  JSONTILES_TRACE_SPAN("shard.load");
  if (shard_options.shard_count == 0 ||
      shard_options.shard_count > kMaxShardCount) {
    return Status::InvalidArgument("shard_count must be in [1, " +
                                   std::to_string(kMaxShardCount) + "]");
  }
  if (shard_options.routing == ShardRouting::kHashKey &&
      shard_options.routing_keys.empty()) {
    return Status::InvalidArgument("hash routing requires routing_keys");
  }
  auto wall0 = Clock::now();
  const size_t shard_count = shard_options.shard_count;

  std::string routing_path;
  if (shard_options.routing == ShardRouting::kHashKey) {
    for (const auto& key : shard_options.routing_keys) {
      tiles::AppendKeySegment(&routing_path, key);
    }
  }

  // Route every document to a shard. Hash routing parses each document once
  // to find the routing value; the per-doc work is independent, so it runs
  // on the pool alongside nothing else (the shard loads come after).
  std::vector<uint32_t> target(docs.size(), 0);
  RoutingValueKind routing_kind = RoutingValueKind::kNone;
  if (shard_count > 1 || shard_options.routing == ShardRouting::kHashKey) {
    if (shard_options.routing == ShardRouting::kRoundRobin) {
      for (size_t i = 0; i < docs.size(); i++) {
        target[i] = static_cast<uint32_t>(i % shard_count);
      }
    } else {
      JSONTILES_TRACE_SPAN("shard.route");
      const size_t workers = std::max<size_t>(load_options.num_threads, 1);
      std::vector<RouteFlags> flags(workers + 1);
      if (workers > 1 && docs.size() > 1) {
        ThreadPool pool(workers);
        std::vector<json::JsonbBuilder> builders(workers + 1);
        std::vector<json::OndemandTransformer> transformers(
            load_options.ondemand ? workers + 1 : 0);
        std::vector<std::vector<uint8_t>> scratch(workers + 1);
        pool.ParallelFor(
            docs.size(),
            [&](size_t i, size_t w) {
              target[i] =
                  RouteOne(docs[i], i, shard_count, routing_path, &builders[w],
                           load_options.ondemand ? &transformers[w] : nullptr,
                           &scratch[w], &flags[w]);
            },
            /*chunk=*/256);
      } else {
        json::JsonbBuilder builder;
        json::OndemandTransformer transformer;
        std::vector<uint8_t> scratch;
        for (size_t i = 0; i < docs.size(); i++) {
          target[i] = RouteOne(docs[i], i, shard_count, routing_path, &builder,
                               load_options.ondemand ? &transformer : nullptr,
                               &scratch, &flags[0]);
        }
      }
      RouteFlags merged;
      for (const auto& f : flags) {
        merged.has_int |= f.has_int;
        merged.has_string |= f.has_string;
        merged.has_other |= f.has_other;
      }
      routing_kind = KindFromFlags(merged);
    }
  }

  std::vector<std::vector<std::string>> shard_docs(shard_count);
  if (shard_count > 1) {
    std::vector<size_t> counts(shard_count, 0);
    for (uint32_t t : target) counts[t]++;
    for (size_t s = 0; s < shard_count; s++) shard_docs[s].reserve(counts[s]);
    for (size_t i = 0; i < docs.size(); i++) {
      shard_docs[target[i]].push_back(docs[i]);
    }
  } else {
    shard_docs[0] = docs;
  }

  // Load the shards concurrently: one single-threaded Loader per shard, the
  // outer pool provides the parallelism. max_errors is enforced globally
  // through the shared counter (checked inside each Loader).
  std::atomic<size_t> shared_skips{0};
  std::vector<std::unique_ptr<Relation>> shards(shard_count);
  std::vector<LoadBreakdown> shard_bd(shard_count);
  auto load_shard = [&](size_t s, size_t) -> Status {
    JSONTILES_FAILPOINT_RETURN("shard.shard_load");
    JSONTILES_TRACE_SPAN("shard.shard_load");
    LoadOptions opts = load_options;
    opts.num_threads = 1;
    opts.shared_skip_counter = &shared_skips;
    opts.rowid_base = RowIdBase(s);
    Loader loader(mode, config, opts);
    auto result = loader.Load(shard_docs[s], name, &shard_bd[s]);
    if (!result.ok()) return result.status();
    shards[s] = result.MoveValueOrDie();
    return Status::OK();
  };
  const size_t load_workers =
      std::min(std::max<size_t>(load_options.num_threads, 1), shard_count);
  Status load_st;
  if (load_workers > 1 && shard_count > 1) {
    ThreadPool pool(load_workers);
    // Annotating with the shard index needs the index of the *failing*
    // iteration; wrap so the returned Status already carries it.
    load_st = pool.ParallelForStatus(shard_count, [&](size_t s, size_t w) {
      Status st = load_shard(s, w);
      return st.ok() ? st : AnnotateShard(st, s, name);
    });
  } else {
    for (size_t s = 0; s < shard_count && load_st.ok(); s++) {
      Status st = load_shard(s, 0);
      if (!st.ok()) load_st = AnnotateShard(st, s, name);
    }
  }
  if (!load_st.ok()) return load_st;

  auto sharded = std::unique_ptr<ShardedRelation>(new ShardedRelation());
  sharded->name_ = name;
  sharded->mode_ = mode;
  sharded->config_ = config;
  sharded->shard_options_ = shard_options;
  sharded->routing_path_ = std::move(routing_path);
  sharded->routing_kind_ = routing_kind;
  sharded->shards_ = std::move(shards);
  sharded->shard_stats_.reserve(shard_count);
  for (size_t s = 0; s < shard_count; s++) {
    sharded->shard_stats_.push_back(ComputeShardStats(*sharded->shards_[s]));
    sharded->num_rows_ += sharded->shards_[s]->num_rows();
  }
  JSONTILES_COUNTER_ADD("shard.loads", 1);
  JSONTILES_COUNTER_ADD("shard.shards_loaded", shard_count);

  if (breakdown != nullptr) {
    *breakdown = LoadBreakdown{};
    for (const auto& bd : shard_bd) {
      breakdown->jsonb_secs += bd.jsonb_secs;
      breakdown->mine_secs += bd.mine_secs;
      breakdown->reorder_secs += bd.reorder_secs;
      breakdown->extract_secs += bd.extract_secs;
      breakdown->tuples += bd.tuples;
      breakdown->moved_tuples += bd.moved_tuples;
      breakdown->skipped_docs += bd.skipped_docs;
    }
    breakdown->total_wall_secs = Seconds(wall0, Clock::now());
  }
  return sharded;
}

std::vector<ShardedRelation::SidePart> ShardedRelation::SideParts(
    std::string_view array_path) const {
  std::vector<SidePart> parts;
  for (size_t s = 0; s < shards_.size(); s++) {
    const Relation* side = shards_[s]->FindSideRelation(array_path);
    if (side != nullptr) parts.push_back({side, RowIdBase(s)});
  }
  return parts;
}

bool ShardedRelation::HasSideRelation(std::string_view array_path) const {
  for (const auto& shard : shards_) {
    if (shard->FindSideRelation(array_path) != nullptr) return true;
  }
  return false;
}

std::unique_ptr<ShardedRelation> ShardedRelation::Assemble(
    std::string name, StorageMode mode, tiles::TileConfig config,
    ShardOptions shard_options, std::string routing_path,
    RoutingValueKind routing_kind,
    std::vector<std::unique_ptr<Relation>> shards) {
  auto sharded = std::unique_ptr<ShardedRelation>(new ShardedRelation());
  sharded->name_ = std::move(name);
  sharded->mode_ = mode;
  sharded->config_ = config;
  sharded->shard_options_ = std::move(shard_options);
  sharded->routing_path_ = std::move(routing_path);
  sharded->routing_kind_ = routing_kind;
  sharded->shards_ = std::move(shards);
  sharded->shard_stats_.reserve(sharded->shards_.size());
  for (const auto& shard : sharded->shards_) {
    sharded->shard_stats_.push_back(ComputeShardStats(*shard));
    sharded->num_rows_ += shard->num_rows();
  }
  return sharded;
}

std::string ShardManifestPath(const std::string& dir,
                              const std::string& name) {
  return dir + "/" + name + ".jtsm";
}

Status SaveSharded(const ShardedRelation& sharded, const std::string& dir) {
  JSONTILES_TRACE_SPAN("shard.save");
  std::vector<std::string> written;
  auto cleanup = [&]() {
    for (const auto& path : written) std::remove(path.c_str());
  };

  std::vector<size_t> file_sizes(sharded.shard_count(), 0);
  for (size_t s = 0; s < sharded.shard_count(); s++) {
    std::vector<uint8_t> bytes;
    Status st = SerializeRelation(sharded.shard(s), &bytes);
    if (st.ok()) {
      const std::string path = dir + "/" + ShardFileName(sharded.name(), s);
      written.push_back(path);
      file_sizes[s] = bytes.size();
      st = WriteFile(path, bytes);
    }
    if (!st.ok()) {
      cleanup();
      return AnnotateShard(st, s, sharded.name());
    }
  }

  {
    Status st = JSONTILES_FAILPOINT_STATUS("shard.manifest_write");
    if (!st.ok()) {
      cleanup();
      return st;
    }
  }

  std::vector<uint8_t> manifest;
  ManifestWriter w(&manifest);
  manifest.insert(manifest.end(), kManifestMagic, kManifestMagic + 4);
  w.Varint(kManifestVersion);
  w.Str(sharded.name());
  w.U8(static_cast<uint8_t>(sharded.mode()));
  w.U8(static_cast<uint8_t>(sharded.shard_options().routing));
  w.Str(sharded.routing_path());
  w.U8(static_cast<uint8_t>(sharded.routing_kind()));
  const auto& config = sharded.config();
  w.Varint(config.tile_size);
  w.Varint(config.partition_size);
  w.F64(config.extraction_threshold);
  w.U8(config.enable_date_extraction ? 1 : 0);
  w.U8(config.enable_reordering ? 1 : 0);
  w.Varint(sharded.shard_count());
  for (size_t s = 0; s < sharded.shard_count(); s++) {
    w.Str(ShardFileName(sharded.name(), s));
    w.Varint(sharded.shard(s).num_rows());
    w.Varint(file_sizes[s]);
    // v2: the shard's side-relation inventory, sorted by path (the in-memory
    // map iterates in hash order; the manifest must be deterministic).
    std::vector<std::pair<std::string, uint64_t>> sides;
    for (const auto& [path, side] : sharded.shard(s).side_relations()) {
      sides.emplace_back(path, side->num_rows());
    }
    std::sort(sides.begin(), sides.end());
    w.Varint(sides.size());
    for (const auto& [path, rows] : sides) {
      w.Str(path);
      w.Varint(rows);
    }
  }

  // Manifest last, via temp file + rename: a reader either sees no manifest
  // or a manifest whose shard files are all complete.
  const std::string manifest_path = ShardManifestPath(dir, sharded.name());
  const std::string tmp_path = manifest_path + ".tmp";
  Status st = WriteFile(tmp_path, manifest);
  if (st.ok() && std::rename(tmp_path.c_str(), manifest_path.c_str()) != 0) {
    st = Status::Internal("cannot rename " + tmp_path);
  }
  if (!st.ok()) {
    std::remove(tmp_path.c_str());
    cleanup();
    return st;
  }
  JSONTILES_COUNTER_ADD("shard.manifests_written", 1);
  return Status::OK();
}

namespace {

Status ValidateShardFileName(const std::string& filename) {
  if (filename.empty()) {
    return Status::ParseError("corrupt shard manifest: empty shard filename");
  }
  if (filename.find('/') != std::string::npos ||
      filename.find('\\') != std::string::npos ||
      filename.find('\0') != std::string::npos ||
      filename == "." || filename == "..") {
    return Status::ParseError(
        "corrupt shard manifest: shard filename must be a plain file name");
  }
  return Status::OK();
}

Status ParseManifest(const std::vector<uint8_t>& bytes,
                     ShardManifestInfo* info) {
  ManifestReader r(bytes.data(), bytes.size());
  JTSM_READ(bytes.size() >= 4 &&
            std::memcmp(bytes.data(), kManifestMagic, 4) == 0);
  // Skip the magic (the reader starts at 0).
  {
    uint8_t b;
    for (int i = 0; i < 4; i++) JTSM_READ(r.U8(&b));
  }
  uint64_t version;
  JTSM_READ(r.Varint(&version));
  JTSM_READ(version >= 1 && version <= kManifestVersion);
  info->version = version;
  JTSM_READ(r.Str(&info->name));
  JTSM_READ(!info->name.empty());
  uint8_t mode_raw, routing_raw, kind_raw;
  JTSM_READ(r.U8(&mode_raw));
  JTSM_READ(mode_raw <= static_cast<uint8_t>(StorageMode::kTiles));
  info->mode = static_cast<StorageMode>(mode_raw);
  JTSM_READ(r.U8(&routing_raw));
  JTSM_READ(routing_raw <= static_cast<uint8_t>(ShardRouting::kHashKey));
  info->shard_options.routing = static_cast<ShardRouting>(routing_raw);
  JTSM_READ(r.Str(&info->routing_path));
  JTSM_READ(r.U8(&kind_raw));
  JTSM_READ(kind_raw <= static_cast<uint8_t>(RoutingValueKind::kMixed));
  info->routing_kind = static_cast<RoutingValueKind>(kind_raw);
  uint64_t tile_size, partition_size;
  JTSM_READ(r.Varint(&tile_size));
  JTSM_READ(tile_size >= 1 && tile_size <= (1u << 20));
  JTSM_READ(r.Varint(&partition_size));
  JTSM_READ(partition_size >= 1 && partition_size <= (1u << 20));
  info->config.tile_size = tile_size;
  info->config.partition_size = partition_size;
  JTSM_READ(r.F64(&info->config.extraction_threshold));
  JTSM_READ(info->config.extraction_threshold >= 0 &&
            info->config.extraction_threshold <= 1);
  uint8_t flag;
  JTSM_READ(r.U8(&flag));
  JTSM_READ(flag <= 1);
  info->config.enable_date_extraction = flag != 0;
  JTSM_READ(r.U8(&flag));
  JTSM_READ(flag <= 1);
  info->config.enable_reordering = flag != 0;
  uint64_t shard_count;
  JTSM_READ(r.Varint(&shard_count));
  JTSM_READ(shard_count >= 1 && shard_count <= kMaxShardCount);
  info->shard_options.shard_count = shard_count;
  for (uint64_t s = 0; s < shard_count; s++) {
    std::string filename;
    uint64_t rows, size;
    JTSM_READ(r.Str(&filename));
    JSONTILES_RETURN_NOT_OK(ValidateShardFileName(filename));
    JTSM_READ(r.Varint(&rows));
    JTSM_READ(r.Varint(&size));
    info->filenames.push_back(std::move(filename));
    info->num_rows.push_back(rows);
    info->file_sizes.push_back(size);
    info->sides.emplace_back();
    if (version >= 2) {
      uint64_t side_count;
      JTSM_READ(r.Varint(&side_count));
      JTSM_READ(side_count <= bytes.size());  // each side costs >= 1 byte
      for (uint64_t i = 0; i < side_count; i++) {
        ShardManifestInfo::SideInfo side;
        JTSM_READ(r.Str(&side.path));
        JTSM_READ(!side.path.empty());
        JTSM_READ(r.Varint(&side.num_rows));
        // Sorted + unique: the writer emits sorted paths; enforcing it here
        // keeps the inventory canonical for consumers.
        JTSM_READ(info->sides.back().empty() ||
                  info->sides.back().back().path < side.path);
        info->sides.back().push_back(std::move(side));
      }
    }
  }
  JTSM_READ(r.AtEnd());
  if (info->shard_options.routing == ShardRouting::kRoundRobin) {
    // Defensive: a round-robin manifest must not smuggle in pruning state.
    if (!info->routing_path.empty() ||
        info->routing_kind != RoutingValueKind::kNone) {
      return Status::ParseError(
          "corrupt shard manifest: round-robin with routing state");
    }
  }
  return Status::OK();
}

}  // namespace

Result<ShardManifestInfo> ReadShardManifest(const std::string& manifest_path) {
  JSONTILES_FAILPOINT_RETURN("shard.open");
  auto bytes = ReadFile(manifest_path);
  if (!bytes.ok()) return bytes.status();
  ShardManifestInfo info;
  JSONTILES_RETURN_NOT_OK(ParseManifest(bytes.ValueOrDie(), &info));
  info.dir = ".";
  if (auto slash = manifest_path.find_last_of('/');
      slash != std::string::npos) {
    info.dir = manifest_path.substr(0, slash);
  }
  return info;
}

Result<std::vector<std::unique_ptr<Relation>>> OpenShardSubset(
    const ShardManifestInfo& info, const std::vector<size_t>& shard_indices) {
  std::vector<std::unique_ptr<Relation>> shards;
  shards.reserve(shard_indices.size());
  for (size_t i = 0; i < shard_indices.size(); i++) {
    const size_t s = shard_indices[i];
    if (s >= info.shard_count() || (i > 0 && shard_indices[i - 1] >= s)) {
      return Status::InvalidArgument(
          "shard indices must be ascending, unique and in range");
    }
    const std::string path = info.dir + "/" + info.filenames[s];
    auto file = ReadFile(path);
    if (!file.ok()) return AnnotateShard(file.status(), s, info.name);
    // Exact-size check first: truncated or padded shard files fail with a
    // clear message even when the content happens to still deserialize.
    if (file.ValueOrDie().size() != info.file_sizes[s]) {
      return AnnotateShard(
          Status::ParseError("shard file " + info.filenames[s] + " has " +
                             std::to_string(file.ValueOrDie().size()) +
                             " bytes, manifest expects " +
                             std::to_string(info.file_sizes[s])),
          s, info.name);
    }
    auto relation = DeserializeRelation(file.ValueOrDie().data(),
                                        file.ValueOrDie().size());
    if (!relation.ok()) return AnnotateShard(relation.status(), s, info.name);
    std::unique_ptr<Relation> shard = relation.MoveValueOrDie();
    if (shard->mode() != info.mode) {
      return AnnotateShard(
          Status::ParseError("shard file mode disagrees with manifest"), s,
          info.name);
    }
    if (shard->num_rows() != info.num_rows[s]) {
      return AnnotateShard(
          Status::ParseError("shard file has " +
                             std::to_string(shard->num_rows()) +
                             " rows, manifest expects " +
                             std::to_string(info.num_rows[s])),
          s, info.name);
    }
    shards.push_back(std::move(shard));
  }
  return shards;
}

Result<std::unique_ptr<ShardedRelation>> OpenSharded(
    const std::string& manifest_path) {
  JSONTILES_TRACE_SPAN("shard.open");
  auto info = ReadShardManifest(manifest_path);
  if (!info.ok()) return info.status();

  std::vector<size_t> all(info.ValueOrDie().shard_count());
  for (size_t s = 0; s < all.size(); s++) all[s] = s;
  auto shards = OpenShardSubset(info.ValueOrDie(), all);
  if (!shards.ok()) return shards.status();
  JSONTILES_COUNTER_ADD("shard.manifests_opened", 1);
  ShardManifestInfo& i = info.ValueOrDie();
  return ShardedRelation::Assemble(std::move(i.name), i.mode, i.config,
                                   std::move(i.shard_options),
                                   std::move(i.routing_path), i.routing_kind,
                                   shards.MoveValueOrDie());
}

}  // namespace jsontiles::storage
