#include "storage/serialize.h"

#include <cstdio>
#include <cstring>

#include "util/bit_util.h"

namespace jsontiles::storage {

namespace {

constexpr char kMagic[4] = {'J', 'T', 'R', 'L'};
constexpr uint32_t kVersion = 1;

class Writer {
 public:
  explicit Writer(std::vector<uint8_t>* out) : out_(out) {}

  void U8(uint8_t v) { out_->push_back(v); }
  void Varint(uint64_t v) {
    uint8_t buf[10];
    int n = bit_util::EncodeVarint(buf, v);
    out_->insert(out_->end(), buf, buf + n);
  }
  void SVarint(int64_t v) { Varint(bit_util::ZigZagEncode(v)); }
  void F64(double v) {
    size_t pos = out_->size();
    out_->resize(pos + 8);
    std::memcpy(out_->data() + pos, &v, 8);
  }
  void Bytes(const void* data, size_t size) {
    Varint(size);
    const uint8_t* p = static_cast<const uint8_t*>(data);
    out_->insert(out_->end(), p, p + size);
  }
  void Str(std::string_view s) { Bytes(s.data(), s.size()); }

 private:
  std::vector<uint8_t>* out_;
};

class Reader {
 public:
  Reader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  bool U8(uint8_t* v) {
    if (pos_ >= size_) return false;
    *v = data_[pos_++];
    return true;
  }
  bool Varint(uint64_t* v) {
    uint64_t result = 0;
    int shift = 0;
    while (pos_ < size_) {
      uint8_t b = data_[pos_++];
      result |= static_cast<uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) {
        *v = result;
        return true;
      }
      shift += 7;
      if (shift > 63) return false;
    }
    return false;
  }
  bool SVarint(int64_t* v) {
    uint64_t raw;
    if (!Varint(&raw)) return false;
    *v = bit_util::ZigZagDecode(raw);
    return true;
  }
  bool F64(double* v) {
    if (pos_ + 8 > size_) return false;
    std::memcpy(v, data_ + pos_, 8);
    pos_ += 8;
    return true;
  }
  bool Bytes(const uint8_t** data, size_t* size) {
    uint64_t n;
    if (!Varint(&n) || pos_ + n > size_) return false;
    *data = data_ + pos_;
    *size = n;
    pos_ += n;
    return true;
  }
  bool Str(std::string* s) {
    const uint8_t* p;
    size_t n;
    if (!Bytes(&p, &n)) return false;
    s->assign(reinterpret_cast<const char*>(p), n);
    return true;
  }
  bool AtEnd() const { return pos_ == size_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

#define JT_READ(expr) \
  if (!(expr)) return Status::ParseError("corrupt relation file: " #expr)

template <typename T>
void WriteVec(Writer& w, const std::vector<T>& v) {
  w.Varint(v.size());
  w.Bytes(v.data(), v.size() * sizeof(T));
}

template <typename T>
Status ReadVec(Reader& r, std::vector<T>* out) {
  uint64_t count;
  JT_READ(r.Varint(&count));
  const uint8_t* p;
  size_t n;
  JT_READ(r.Bytes(&p, &n));
  JT_READ(n == count * sizeof(T));
  out->resize(count);
  std::memcpy(out->data(), p, n);
  return Status::OK();
}

void WriteBitVec(Writer& w, const std::vector<bool>& v) {
  w.Varint(v.size());
  std::vector<uint8_t> packed((v.size() + 7) / 8, 0);
  for (size_t i = 0; i < v.size(); i++) {
    if (v[i]) packed[i / 8] |= static_cast<uint8_t>(1u << (i % 8));
  }
  w.Bytes(packed.data(), packed.size());
}

Status ReadBitVec(Reader& r, std::vector<bool>* out) {
  uint64_t count;
  JT_READ(r.Varint(&count));
  const uint8_t* p;
  size_t n;
  JT_READ(r.Bytes(&p, &n));
  JT_READ(n == (count + 7) / 8);
  out->assign(count, false);
  for (size_t i = 0; i < count; i++) {
    if (p[i / 8] & (1u << (i % 8))) (*out)[i] = true;
  }
  return Status::OK();
}

void WriteColumn(Writer& w, const tiles::Column& col) {
  w.U8(static_cast<uint8_t>(col.type()));
  WriteBitVec(w, col.validity());
  WriteVec(w, col.i64_data());
  WriteVec(w, col.f64_data());
  WriteVec(w, col.scales_data());
  WriteVec(w, col.starts_data());
  WriteVec(w, col.lens_data());
  w.Str(col.string_heap());
}

Status ReadColumn(Reader& r, tiles::Column* out) {
  uint8_t type;
  JT_READ(r.U8(&type));
  JT_READ(type <= static_cast<uint8_t>(tiles::ColumnType::kNumeric));
  std::vector<bool> valid;
  JSONTILES_RETURN_NOT_OK(ReadBitVec(r, &valid));
  std::vector<int64_t> i64;
  std::vector<double> f64;
  std::vector<uint8_t> scales;
  std::vector<uint32_t> starts, lens;
  std::string heap;
  JSONTILES_RETURN_NOT_OK(ReadVec(r, &i64));
  JSONTILES_RETURN_NOT_OK(ReadVec(r, &f64));
  JSONTILES_RETURN_NOT_OK(ReadVec(r, &scales));
  JSONTILES_RETURN_NOT_OK(ReadVec(r, &starts));
  JSONTILES_RETURN_NOT_OK(ReadVec(r, &lens));
  JT_READ(r.Str(&heap));
  *out = tiles::Column::Restore(static_cast<tiles::ColumnType>(type),
                                std::move(valid), std::move(i64), std::move(f64),
                                std::move(scales), std::move(starts),
                                std::move(lens), std::move(heap));
  return Status::OK();
}

void WriteHll(Writer& w, const HyperLogLog& hll) {
  w.Varint(static_cast<uint64_t>(hll.precision()));
  WriteVec(w, hll.registers());
}

Status ReadHll(Reader& r, HyperLogLog* out) {
  uint64_t precision;
  JT_READ(r.Varint(&precision));
  JT_READ(precision >= 4 && precision <= 16);
  std::vector<uint8_t> registers;
  JSONTILES_RETURN_NOT_OK(ReadVec(r, &registers));
  JT_READ(registers.size() == (size_t{1} << precision));
  *out = HyperLogLog::Restore(static_cast<int>(precision), std::move(registers));
  return Status::OK();
}

void WriteTile(Writer& w, const tiles::Tile& tile) {
  w.Varint(tile.row_begin);
  w.Varint(tile.row_count);
  w.Varint(tile.outlier_count);
  w.Varint(tile.columns.size());
  for (const auto& col : tile.columns) {
    w.Str(col.path);
    w.U8(static_cast<uint8_t>(col.source_type));
    w.U8(static_cast<uint8_t>(col.storage_type));
    w.U8(static_cast<uint8_t>((col.has_type_outliers ? 1 : 0) |
                              (col.nullable ? 2 : 0) |
                              (col.is_timestamp ? 4 : 0) |
                              (col.has_minmax ? 8 : 0)));
    if (col.has_minmax) {
      w.SVarint(col.min_i);
      w.SVarint(col.max_i);
      w.F64(col.min_d);
      w.F64(col.max_d);
    }
    WriteColumn(w, col.column);
  }
  // Stats.
  w.Varint(tile.stats.path_frequencies.size());
  for (const auto& [key, count] : tile.stats.path_frequencies) {
    w.Str(key);
    w.Varint(count);
  }
  w.Varint(tile.stats.column_sketches.size());
  for (const auto& hll : tile.stats.column_sketches) WriteHll(w, hll);
  // Bloom filter.
  WriteVec(w, tile.seen_paths().words());
  w.Varint(tile.seen_paths().num_inserted());
}

Status ReadTile(Reader& r, tiles::Tile* tile) {
  uint64_t row_begin, row_count, outliers, num_columns;
  JT_READ(r.Varint(&row_begin));
  JT_READ(r.Varint(&row_count));
  JT_READ(r.Varint(&outliers));
  JT_READ(r.Varint(&num_columns));
  tile->row_begin = row_begin;
  tile->row_count = row_count;
  tile->outlier_count = outliers;
  for (uint64_t i = 0; i < num_columns; i++) {
    tiles::ExtractedColumn col;
    JT_READ(r.Str(&col.path));
    uint8_t source_type, storage_type, flags;
    JT_READ(r.U8(&source_type));
    JT_READ(r.U8(&storage_type));
    JT_READ(r.U8(&flags));
    col.source_type = static_cast<json::JsonType>(source_type);
    col.storage_type = static_cast<tiles::ColumnType>(storage_type);
    col.has_type_outliers = flags & 1;
    col.nullable = flags & 2;
    col.is_timestamp = flags & 4;
    col.has_minmax = flags & 8;
    if (col.has_minmax) {
      JT_READ(r.SVarint(&col.min_i));
      JT_READ(r.SVarint(&col.max_i));
      JT_READ(r.F64(&col.min_d));
      JT_READ(r.F64(&col.max_d));
    }
    JSONTILES_RETURN_NOT_OK(ReadColumn(r, &col.column));
    JT_READ(col.column.size() == row_count);
    tile->columns.push_back(std::move(col));
  }
  uint64_t num_freqs;
  JT_READ(r.Varint(&num_freqs));
  for (uint64_t i = 0; i < num_freqs; i++) {
    std::string key;
    uint64_t count;
    JT_READ(r.Str(&key));
    JT_READ(r.Varint(&count));
    tile->stats.path_frequencies.emplace_back(std::move(key),
                                              static_cast<uint32_t>(count));
  }
  uint64_t num_sketches;
  JT_READ(r.Varint(&num_sketches));
  for (uint64_t i = 0; i < num_sketches; i++) {
    HyperLogLog hll;
    JSONTILES_RETURN_NOT_OK(ReadHll(r, &hll));
    tile->stats.column_sketches.push_back(std::move(hll));
  }
  std::vector<uint64_t> words;
  JSONTILES_RETURN_NOT_OK(ReadVec(r, &words));
  JT_READ(!words.empty() && (words.size() & (words.size() - 1)) == 0);
  uint64_t inserted;
  JT_READ(r.Varint(&inserted));
  tile->RestoreSeenPaths(BloomFilter::Restore(std::move(words), inserted));
  tile->BuildColumnIndex();
  return Status::OK();
}

Status SerializeInto(const Relation& rel, Writer& w);

Status SerializeBody(const Relation& rel, Writer& w) {
  w.U8(static_cast<uint8_t>(rel.mode()));
  w.Str(rel.name());
  const tiles::TileConfig& config = rel.config();
  w.Varint(config.tile_size);
  w.Varint(config.partition_size);
  w.F64(config.extraction_threshold);
  w.U8(config.enable_date_extraction ? 1 : 0);
  // Documents.
  w.Varint(rel.num_rows());
  for (size_t row = 0; row < rel.num_rows(); row++) {
    if (rel.mode() == StorageMode::kJsonText) {
      w.Str(rel.JsonText(row));
    } else {
      w.Bytes(rel.Jsonb(row).data(), rel.DocSize(row));
    }
  }
  // Tiles.
  w.Varint(rel.tiles().size());
  for (const auto& tile : rel.tiles()) WriteTile(w, tile);
  // Relation stats.
  const auto& counters = rel.stats().counters();
  w.Varint(counters.size());
  for (const auto& c : counters) {
    w.Str(c.key);
    w.Varint(c.count);
    w.Varint(c.last_tile);
  }
  const auto& sketches = rel.stats().sketches();
  w.Varint(sketches.size());
  for (const auto& s : sketches) {
    w.Str(s.key);
    WriteHll(w, s.hll);
    w.Varint(s.last_tile);
    w.Varint(s.weight);
  }
  w.Varint(rel.stats().total_tuples());
  // Side relations.
  w.Varint(rel.side_relations().size());
  for (const auto& [path, side] : rel.side_relations()) {
    w.Str(path);
    JSONTILES_RETURN_NOT_OK(SerializeInto(*side, w));
  }
  return Status::OK();
}

Status SerializeInto(const Relation& rel, Writer& w) {
  return SerializeBody(rel, w);
}

Result<std::unique_ptr<Relation>> DeserializeBody(Reader& r) {
  uint8_t mode;
  std::string name;
  JT_READ(r.U8(&mode));
  JT_READ(mode <= static_cast<uint8_t>(StorageMode::kTiles));
  JT_READ(r.Str(&name));
  tiles::TileConfig config;
  uint64_t tile_size, partition_size;
  double threshold;
  uint8_t date_extraction;
  JT_READ(r.Varint(&tile_size));
  JT_READ(r.Varint(&partition_size));
  JT_READ(r.F64(&threshold));
  JT_READ(r.U8(&date_extraction));
  config.tile_size = tile_size;
  config.partition_size = partition_size;
  config.extraction_threshold = threshold;
  config.enable_date_extraction = date_extraction != 0;

  auto rel = std::make_unique<Relation>(name, static_cast<StorageMode>(mode),
                                        config);
  uint64_t num_rows;
  JT_READ(r.Varint(&num_rows));
  for (uint64_t row = 0; row < num_rows; row++) {
    const uint8_t* p;
    size_t n;
    JT_READ(r.Bytes(&p, &n));
    rel->AppendDoc(p, n);
  }
  uint64_t num_tiles;
  JT_READ(r.Varint(&num_tiles));
  for (uint64_t t = 0; t < num_tiles; t++) {
    tiles::Tile tile;
    JSONTILES_RETURN_NOT_OK(ReadTile(r, &tile));
    JT_READ(tile.row_begin + tile.row_count <= num_rows);
    rel->tiles().push_back(std::move(tile));
  }
  // Relation stats.
  uint64_t num_counters;
  JT_READ(r.Varint(&num_counters));
  std::vector<tiles::RelationStats::Counter> counters;
  for (uint64_t i = 0; i < num_counters; i++) {
    tiles::RelationStats::Counter c;
    uint64_t last_tile;
    JT_READ(r.Str(&c.key));
    JT_READ(r.Varint(&c.count));
    JT_READ(r.Varint(&last_tile));
    c.last_tile = static_cast<uint32_t>(last_tile);
    counters.push_back(std::move(c));
  }
  uint64_t num_sketches;
  JT_READ(r.Varint(&num_sketches));
  std::vector<tiles::RelationStats::Sketch> sketches;
  for (uint64_t i = 0; i < num_sketches; i++) {
    tiles::RelationStats::Sketch s;
    uint64_t last_tile;
    JT_READ(r.Str(&s.key));
    JSONTILES_RETURN_NOT_OK(ReadHll(r, &s.hll));
    JT_READ(r.Varint(&last_tile));
    JT_READ(r.Varint(&s.weight));
    s.last_tile = static_cast<uint32_t>(last_tile);
    sketches.push_back(std::move(s));
  }
  uint64_t total_tuples;
  JT_READ(r.Varint(&total_tuples));
  rel->stats().Restore(std::move(counters), std::move(sketches), total_tuples);
  // Side relations.
  uint64_t num_sides;
  JT_READ(r.Varint(&num_sides));
  for (uint64_t i = 0; i < num_sides; i++) {
    std::string path;
    JT_READ(r.Str(&path));
    auto side = DeserializeBody(r);
    if (!side.ok()) return side.status();
    rel->AddSideRelation(path, side.MoveValueOrDie());
  }
  return rel;
}

}  // namespace

Status SerializeRelation(const Relation& relation, std::vector<uint8_t>* out) {
  out->clear();
  out->insert(out->end(), kMagic, kMagic + 4);
  Writer w(out);
  w.Varint(kVersion);
  return SerializeBody(relation, w);
}

Result<std::unique_ptr<Relation>> DeserializeRelation(const uint8_t* data,
                                                      size_t size) {
  if (size < 5 || std::memcmp(data, kMagic, 4) != 0) {
    return Status::ParseError("not a jsontiles relation file");
  }
  Reader r(data + 4, size - 4);
  uint64_t version;
  JT_READ(r.Varint(&version));
  if (version != kVersion) {
    return Status::Unsupported("unsupported relation file version");
  }
  auto rel = DeserializeBody(r);
  if (!rel.ok()) return rel.status();
  if (!r.AtEnd()) return Status::ParseError("trailing bytes in relation file");
  return rel;
}

Status SaveRelation(const Relation& relation, const std::string& path) {
  std::vector<uint8_t> bytes;
  JSONTILES_RETURN_NOT_OK(SerializeRelation(relation, &bytes));
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::Internal("cannot open " + path);
  size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (written != bytes.size()) return Status::Internal("short write to " + path);
  return Status::OK();
}

Result<std::unique_ptr<Relation>> LoadRelation(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("cannot open " + path);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  size_t read = std::fread(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (read != bytes.size()) return Status::Internal("short read from " + path);
  return DeserializeRelation(bytes.data(), bytes.size());
}

}  // namespace jsontiles::storage
