// Sharded storage: route documents to N independent shards, each a full
// Relation (own tiles, bloom filters, statistics), loaded concurrently on the
// thread pool — the shard is the unit of load parallelism (the paper's
// partition pipeline, §3.2/Figures 16-17, lifted one level up). Scans
// iterate shards and can skip whole shards using shard-level statistics
// before any tile-level work (DESIGN.md §10).
//
// Persistence: SaveSharded writes one JTRL file per shard plus a small
// "JTSM" manifest naming them; the manifest is written last (temp file +
// rename), so a crashed or failed save never leaves a readable manifest
// pointing at incomplete shards. OpenSharded validates the manifest and
// every shard file defensively, like DeserializeRelation.

#ifndef JSONTILES_STORAGE_SHARD_H_
#define JSONTILES_STORAGE_SHARD_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "storage/loader.h"
#include "storage/relation.h"
#include "util/bloom_filter.h"
#include "util/hash.h"
#include "util/status.h"

namespace jsontiles::storage {

enum class ShardRouting : uint8_t {
  /// Document i goes to shard i % N: balanced, key-oblivious.
  kRoundRobin = 0,
  /// Hash of the value under ShardOptions::routing_keys; equal keys land in
  /// the same shard, so a selective equality filter on the routing key can
  /// prune all shards but one. Documents whose routing value is missing or
  /// null fall back to round-robin (they cannot match an equality anyway).
  kHashKey = 1,
};

/// What value types the routing key actually held across all documents.
/// Equality pruning is only sound when every routed value hashed the same
/// way the predicate constant does (see ShardKeyHashInt/String): a shard may
/// only be skipped for `key = 5` when no document routed a string "5" (or any
/// other castable type) elsewhere.
enum class RoutingValueKind : uint8_t {
  kNone = 0,    // no non-null routing values seen (or round-robin)
  kIntOnly = 1,      // integers (including integral floats)
  kStringOnly = 2,   // strings
  kMixed = 3,        // anything else, or a mix — equality pruning disabled
};

struct ShardOptions {
  size_t shard_count = 1;
  ShardRouting routing = ShardRouting::kRoundRobin;
  /// Object-key path of the routing value (kHashKey), e.g. {"user", "id"}.
  std::vector<std::string> routing_keys;
};

/// Routing hashes over primitives. The exec layer re-derives the same hash
/// from a predicate constant to prune shards, so these are the contract
/// between routing and pruning. Integral floats hash as their integer value
/// (a document {"k": 5.0} must land with {"k": 5}).
inline uint64_t ShardKeyHashInt(int64_t v) {
  return HashInt(static_cast<uint64_t>(v));
}
inline uint64_t ShardKeyHashString(std::string_view s) { return HashString(s); }

/// Shard-level zone map for one key path: the union of the shard's tile
/// zone maps. `valid` only when every tile that may contain the path has a
/// trustworthy extracted column (min/max present, no type outliers, one
/// order-preserving storage class), so the range covers every non-null value
/// of the path in the shard.
struct ShardZoneEntry {
  tiles::ColumnType storage_type = tiles::ColumnType::kInt64;
  bool valid = true;
  bool any_values = false;
  int64_t min_i = 0, max_i = 0;  // Int64 / Timestamp
  double min_d = 0, max_d = 0;   // Float64
};

/// Per-shard statistics computed from the shard's tiles (never serialized;
/// rebuilt deterministically at load and at open). The bloom filter is the
/// union of the tile bloom filters, so MayContainPath is exactly "some tile
/// may contain it" — false means no tile-level scan could produce the path.
struct ShardStats {
  bool has_path_stats = false;
  BloomFilter paths{64};
  std::unordered_map<std::string, ShardZoneEntry> zones;

  bool MayContainPath(std::string_view path) const {
    return !has_path_stats || paths.MayContainString(path);
  }
  const ShardZoneEntry* FindZone(std::string_view path) const {
    auto it = zones.find(std::string(path));
    return it == zones.end() ? nullptr : &it->second;
  }
};

/// Compute shard-level statistics for one loaded shard (tiled modes only;
/// kJsonText/kJsonb shards have no tiles and report has_path_stats=false).
ShardStats ComputeShardStats(const Relation& shard);

/// A relation split into N independently-loaded shards. Query results over a
/// ShardedRelation are bit-identical to the same documents loaded unsharded
/// (DESIGN.md §10 spells out the determinism guarantee).
class ShardedRelation {
 public:
  /// Shard-local row r of shard s has the global virtual row id
  /// RowIdBase(s) + r. The base depends only on the shard index, so ids are
  /// assignable during concurrent shard loads (array side relations bake the
  /// parent id into their `_rowid` field at load time).
  static constexpr int kRowIdShardShift = 40;
  static int64_t RowIdBase(size_t shard) {
    return static_cast<int64_t>(shard) << kRowIdShardShift;
  }

  /// Route `docs` to shards and load them concurrently: the outer thread
  /// pool runs min(load_options.num_threads, shard_count) shard loads at a
  /// time, each with a single-threaded Loader. LoadOptions::max_errors is a
  /// global cap across all shards (a shared atomic counter); the merged
  /// breakdown sums per-phase CPU seconds across shards while
  /// total_wall_secs stays wall-clock.
  static Result<std::unique_ptr<ShardedRelation>> Load(
      const std::vector<std::string>& docs, const std::string& name,
      StorageMode mode, tiles::TileConfig config = {},
      LoadOptions load_options = {}, ShardOptions shard_options = {},
      LoadBreakdown* breakdown = nullptr);

  const std::string& name() const { return name_; }
  StorageMode mode() const { return mode_; }
  const tiles::TileConfig& config() const { return config_; }
  const ShardOptions& shard_options() const { return shard_options_; }

  size_t shard_count() const { return shards_.size(); }
  const Relation& shard(size_t i) const { return *shards_[i]; }
  const ShardStats& shard_stats(size_t i) const { return shard_stats_[i]; }
  /// Total rows across all shards.
  size_t num_rows() const { return num_rows_; }

  /// Encoded routing key path; empty unless routing == kHashKey.
  const std::string& routing_path() const { return routing_path_; }
  RoutingValueKind routing_kind() const { return routing_kind_; }

  /// Array side relations (§3.5) of a sharded load: one part per shard that
  /// produced elements for the path. Each part's `_rowid` field already
  /// holds global parent ids (RowIdBase of its shard), so joining the parts
  /// against the sharded base relation is consistent.
  struct SidePart {
    const Relation* relation;
    int64_t rowid_base;
  };
  std::vector<SidePart> SideParts(std::string_view array_path) const;

  /// True when any shard carries a side relation for `array_path`.
  bool HasSideRelation(std::string_view array_path) const;

  // Internal: assemble from externally built shards (OpenSharded).
  static std::unique_ptr<ShardedRelation> Assemble(
      std::string name, StorageMode mode, tiles::TileConfig config,
      ShardOptions shard_options, std::string routing_path,
      RoutingValueKind routing_kind,
      std::vector<std::unique_ptr<Relation>> shards);

  ShardedRelation(const ShardedRelation&) = delete;
  ShardedRelation& operator=(const ShardedRelation&) = delete;

 private:
  ShardedRelation() = default;

  std::string name_;
  StorageMode mode_ = StorageMode::kTiles;
  tiles::TileConfig config_;
  ShardOptions shard_options_;
  std::string routing_path_;
  RoutingValueKind routing_kind_ = RoutingValueKind::kNone;
  std::vector<std::unique_ptr<Relation>> shards_;
  std::vector<ShardStats> shard_stats_;
  size_t num_rows_ = 0;
};

/// Path of the manifest SaveSharded writes for `name` into `dir`.
std::string ShardManifestPath(const std::string& dir, const std::string& name);

/// Write `<dir>/<name>.shard-<i>.jtrl` for every shard, then the manifest
/// `<dir>/<name>.jtsm` via temp file + rename. On any failure (I/O or the
/// `shard.manifest_write` / shard-save failpoints) every file written so far
/// is removed — a manifest on disk always names complete shard files.
Status SaveSharded(const ShardedRelation& sharded, const std::string& dir);

/// Everything the manifest records: enough for a distributed coordinator to
/// plan fragment assignment (per-shard row counts, byte sizes, side-relation
/// inventory) without opening any shard file. Manifest version 2 added the
/// per-shard side inventory; version-1 manifests still parse, with `sides`
/// left empty.
struct ShardManifestInfo {
  uint64_t version = 0;
  std::string name;
  StorageMode mode = StorageMode::kTiles;
  ShardOptions shard_options;
  std::string routing_path;
  RoutingValueKind routing_kind = RoutingValueKind::kNone;
  tiles::TileConfig config;
  /// Directory holding the manifest (and thus the shard files).
  std::string dir;
  // Parallel arrays, one entry per shard.
  std::vector<std::string> filenames;
  std::vector<uint64_t> num_rows;
  std::vector<uint64_t> file_sizes;
  /// Array side relations (§3.5) per shard: encoded path + element rows,
  /// sorted by path. Empty (outer vector) for version-1 manifests.
  struct SideInfo {
    std::string path;
    uint64_t num_rows = 0;
  };
  std::vector<std::vector<SideInfo>> sides;

  size_t shard_count() const { return filenames.size(); }
};

/// Parse and validate a manifest written by SaveSharded without touching any
/// shard file.
Result<ShardManifestInfo> ReadShardManifest(const std::string& manifest_path);

/// Open the shard files at `shard_indices` (ascending, in-range, unique) of
/// a parsed manifest. Validates each file's exact size (truncated or
/// oversized files fail cleanly) and JTRL content against the manifest;
/// statuses name the failing shard file. This is the worker-process entry
/// point: a worker opens only its assigned shards.
Result<std::vector<std::unique_ptr<Relation>>> OpenShardSubset(
    const ShardManifestInfo& info, const std::vector<size_t>& shard_indices);

/// Open a manifest written by SaveSharded (ReadShardManifest + OpenShardSubset
/// over every shard); shard statistics are recomputed.
Result<std::unique_ptr<ShardedRelation>> OpenSharded(
    const std::string& manifest_path);

}  // namespace jsontiles::storage

#endif  // JSONTILES_STORAGE_SHARD_H_
