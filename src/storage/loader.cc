#include "storage/loader.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <mutex>

#include "json/ondemand.h"
#include "obs/obs.h"
#include "tiles/array_extract.h"
#include "tiles/keypath.h"
#include "tiles/reorder.h"
#include "tiles/tile_builder.h"
#include "util/failpoint.h"
#include "util/thread_pool.h"

namespace jsontiles::storage {

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point begin, Clock::time_point end) {
  return std::chrono::duration<double>(end - begin).count();
}

// Work product of one partition, produced thread-locally and appended in
// partition order.
struct PartitionResult {
  std::vector<std::vector<uint8_t>> jsonb;  // permuted document order
  std::vector<tiles::Tile> tiles;           // row_begin relative to partition
  size_t moved_tuples = 0;
  // Phase seconds.
  double jsonb_secs = 0, mine_secs = 0, reorder_secs = 0, extract_secs = 0;
};

}  // namespace

Result<std::unique_ptr<Relation>> Loader::Load(
    const std::vector<std::string>& docs, const std::string& name,
    LoadBreakdown* breakdown) {
  auto wall_begin = Clock::now();
  JSONTILES_TRACE_SPAN("loader.load");
  auto relation = std::make_unique<Relation>(name, mode_, config_);
  LoadBreakdown local_breakdown;
  LoadBreakdown* bd = breakdown != nullptr ? breakdown : &local_breakdown;
  *bd = LoadBreakdown{};
  bd->tuples = docs.size();

  // ---------------------------------------------------------------- text --
  if (mode_ == StorageMode::kJsonText) {
    auto t0 = Clock::now();
    for (const auto& doc : docs) {
      relation->AppendDoc(reinterpret_cast<const uint8_t*>(doc.data()), doc.size());
    }
    bd->jsonb_secs += Seconds(t0, Clock::now());
    bd->total_wall_secs = Seconds(wall_begin, Clock::now());
    return relation;
  }

  // ------------------------------------------------ binary JSON pipeline --
  const size_t partition_docs =
      mode_ == StorageMode::kTiles ? config_.tile_size * config_.partition_size
                                   : std::max<size_t>(config_.tile_size * 8, 4096);
  const size_t num_partitions = docs.empty() ? 0 : (docs.size() + partition_docs - 1) / partition_docs;
  std::vector<PartitionResult> results(num_partitions);

  // Tiles-*: detect high-cardinality arrays on a leading sample.
  std::vector<std::string> detected_arrays;
  if (mode_ == StorageMode::kTiles && options_.extract_arrays && !docs.empty()) {
    json::JsonbBuilder sample_builder;
    std::vector<std::vector<uint8_t>> sample;
    for (size_t i = 0; i < docs.size() && i < options_.array_detect_sample; i++) {
      std::vector<uint8_t> buf;
      if (sample_builder.Transform(docs[i], &buf).ok()) {
        sample.push_back(std::move(buf));
      }
    }
    std::vector<json::JsonbValue> views;
    views.reserve(sample.size());
    for (const auto& b : sample) views.emplace_back(b.data());
    for (auto& info : tiles::DetectHighCardinalityArrays(
             views, config_, options_.array_min_avg_elements,
             options_.array_min_presence)) {
      detected_arrays.push_back(info.path);
    }
  }

  // Malformed documents skipped by this load, shared across partitions. The
  // max_errors cap is checked against shared_skip_counter when set (sharded
  // loads enforce one global cap across concurrent shard loads), otherwise
  // against this load's own count; skipped_total always holds this load's
  // own skips for the breakdown.
  std::atomic<size_t> skipped_total{0};
  std::atomic<size_t>* cap_counter = options_.shared_skip_counter
                                         ? options_.shared_skip_counter
                                         : &skipped_total;

  auto process_partition = [&](size_t p) -> Status {
    JSONTILES_FAILPOINT_RETURN("loader.partition");
    JSONTILES_TRACE_SPAN("loader.partition");
    JSONTILES_COUNTER_ADD("loader.partitions_processed", 1);
    PartitionResult& result = results[p];
    size_t begin = p * partition_docs;
    size_t end = std::min(begin + partition_docs, docs.size());
    size_t count = end - begin;

    // Phase: text -> JSONB. A malformed document either aborts the load
    // (fail-fast default) or — under max_errors — is skipped and counted,
    // so one bad record cannot take down a billion-row bulk load.
    auto t0 = Clock::now();
    json::JsonbBuilder builder;
    json::OndemandTransformer ondemand;
    // Tiles + on-demand: the emitter collects each document's scalar
    // directory during the very walk that serializes it, so key-path
    // collection and column materialization below skip re-navigating the
    // JSONB. The pool holds the partition's directories in ORIGINAL document
    // order (failed documents append nothing); after reordering each tile
    // indexes into it through the permutation rather than shuffling the
    // directories themselves.
    const bool direct_ingest =
        mode_ == StorageMode::kTiles && options_.ondemand;
    const json::OndemandIngestConfig ingest_config{config_.max_path_depth,
                                                   config_.max_array_elements};
    json::OndemandIngestPool dirs;
    if (direct_ingest) dirs.docs.reserve(count);
    result.jsonb.reserve(count);
    for (size_t i = 0; i < count; i++) {
      std::vector<uint8_t> buf;
      Status st;
      if (direct_ingest) {
        st = ondemand.Transform(docs[begin + i], &buf, ingest_config, &dirs);
      } else if (options_.ondemand) {
        st = ondemand.Transform(docs[begin + i], &buf);
      } else {
        st = builder.Transform(docs[begin + i], &buf);
      }
      if (!st.ok()) {
        const size_t so_far =
            cap_counter->fetch_add(1, std::memory_order_relaxed) + 1;
        if (so_far > options_.max_errors) return st;
        if (cap_counter != &skipped_total) {
          skipped_total.fetch_add(1, std::memory_order_relaxed);
        }
        JSONTILES_COUNTER_ADD("loader.docs_skipped", 1);
        continue;
      }
      result.jsonb.push_back(std::move(buf));
    }
    count = result.jsonb.size();
    auto t1 = Clock::now();
    result.jsonb_secs += Seconds(t0, t1);
    if (mode_ == StorageMode::kJsonb || mode_ == StorageMode::kSinew) {
      return Status::OK();
    }

    // Phase: key-path collection (input of mining and reordering).
    std::vector<json::JsonbValue> views;
    views.reserve(count);
    for (const auto& b : result.jsonb) views.emplace_back(b.data());
    tiles::DocumentItems items;
    if (direct_ingest) {
      items.CollectFromIngest(dirs);
    } else {
      items.Collect(views, config_);
    }
    auto t2 = Clock::now();
    result.mine_secs += Seconds(t1, t2);

    // Phase: reordering within the partition.
    std::vector<uint32_t> permutation;
    if (config_.enable_reordering && config_.partition_size > 1) {
      tiles::ReorderResult reordered = tiles::ReorderPartition(items, config_);
      permutation = std::move(reordered.permutation);
      result.moved_tuples = reordered.moved_tuples;
      if (result.moved_tuples > 0) {
        std::vector<std::vector<uint8_t>> permuted(count);
        for (size_t i = 0; i < count; i++) {
          permuted[i] = std::move(result.jsonb[permutation[i]]);
        }
        result.jsonb = std::move(permuted);
        views.clear();
        for (const auto& b : result.jsonb) views.emplace_back(b.data());
      }
    } else {
      permutation.resize(count);
      for (size_t i = 0; i < count; i++) permutation[i] = static_cast<uint32_t>(i);
    }
    auto t3 = Clock::now();
    result.reorder_secs += Seconds(t2, t3);

    // Phases: per-tile mining + extraction.
    tiles::TileBuilder tile_builder(config_);
    size_t num_tiles = (count + config_.tile_size - 1) / config_.tile_size;
    for (size_t t = 0; t < num_tiles; t++) {
      size_t tile_begin = t * config_.tile_size;
      size_t tile_end = std::min(tile_begin + config_.tile_size, count);
      std::vector<uint32_t> indices;
      indices.reserve(tile_end - tile_begin);
      for (size_t i = tile_begin; i < tile_end; i++) {
        indices.push_back(permutation[i]);
      }
      auto m0 = Clock::now();
      tiles::DocumentItems tile_items = items.Project(indices);
      uint32_t min_support = static_cast<uint32_t>(std::ceil(
          config_.extraction_threshold * static_cast<double>(indices.size())));
      if (min_support == 0) min_support = 1;
      std::vector<mining::Itemset> itemsets =
          tile_builder.MineItemsets(tile_items, min_support);
      auto m1 = Clock::now();
      result.mine_secs += Seconds(m0, m1);

      std::vector<json::JsonbValue> tile_views(views.begin() + static_cast<long>(tile_begin),
                                               views.begin() + static_cast<long>(tile_end));
      // The pool stays in original document order; hand the tile its
      // directories through the permutation as borrowed leaf runs.
      std::vector<json::OndemandLeafRun> tile_dirs;
      if (direct_ingest) {
        tile_dirs.reserve(indices.size());
        for (uint32_t doc_index : indices) {
          const auto& d = dirs.docs[doc_index];
          tile_dirs.push_back(json::OndemandLeafRun{
              dirs.leaves.data() + d.leaf_begin,
              static_cast<size_t>(d.leaf_end - d.leaf_begin)});
        }
      }
      result.tiles.push_back(tile_builder.BuildFromItems(
          tile_views, tile_items, tile_begin, &itemsets,
          direct_ingest ? tile_dirs.data() : nullptr));
      result.extract_secs += Seconds(m1, Clock::now());
    }
    return Status::OK();
  };

  JSONTILES_COUNTER_ADD("loader.morsels",
                        static_cast<int64_t>(num_partitions));
  if (options_.num_threads > 1 && num_partitions > 1) {
    JSONTILES_TRACE_SPAN("loader.parallel_for");
    ThreadPool pool(options_.num_threads);
    JSONTILES_RETURN_NOT_OK(pool.ParallelForStatus(
        num_partitions, [&](size_t p, size_t) { return process_partition(p); }));
  } else {
    for (size_t p = 0; p < num_partitions; p++) {
      JSONTILES_RETURN_NOT_OK(process_partition(p));
    }
  }

  // Serial phase: append in partition order; fix tile row offsets.
  for (size_t p = 0; p < num_partitions; p++) {
    PartitionResult& result = results[p];
    size_t partition_row_begin = relation->num_rows();
    auto t0 = Clock::now();
    for (const auto& buf : result.jsonb) {
      relation->AppendDoc(buf.data(), buf.size());
    }
    result.jsonb_secs += Seconds(t0, Clock::now());
    for (auto& tile : result.tiles) {
      tile.row_begin += partition_row_begin;
      relation->tiles().push_back(std::move(tile));
    }
    bd->jsonb_secs += result.jsonb_secs;
    bd->mine_secs += result.mine_secs;
    bd->reorder_secs += result.reorder_secs;
    bd->extract_secs += result.extract_secs;
    bd->moved_tuples += result.moved_tuples;
  }

  // Sinew: one global extraction over the entire table (single-threaded, as
  // in the original system).
  if (mode_ == StorageMode::kSinew && relation->num_rows() > 0) {
    auto t0 = Clock::now();
    tiles::TileConfig sinew_config = config_;
    sinew_config.enable_date_extraction = false;  // Sinew has no §4.9
    sinew_config.enable_reordering = false;
    std::vector<json::JsonbValue> views;
    views.reserve(relation->num_rows());
    for (size_t r = 0; r < relation->num_rows(); r++) {
      views.push_back(relation->Jsonb(r));
    }
    tiles::TileBuilder tile_builder(sinew_config);
    relation->tiles().push_back(tile_builder.Build(views, 0));
    auto t1 = Clock::now();
    bd->mine_secs += Seconds(t0, t1) / 2;
    bd->extract_secs += Seconds(t0, t1) / 2;
  }

  // Tiles: aggregate relation statistics (§4.6).
  if (mode_ == StorageMode::kTiles) {
    for (size_t t = 0; t < relation->tiles().size(); t++) {
      const tiles::Tile& tile = relation->tiles()[t];
      std::vector<std::string> extracted;
      extracted.reserve(tile.columns.size());
      for (const auto& col : tile.columns) {
        extracted.push_back(tiles::MakeDictKey(
            col.path, static_cast<uint8_t>(col.source_type)));
      }
      relation->stats().MergeTile(static_cast<uint32_t>(t), tile.stats, extracted);
    }
    relation->stats().AddTuples(relation->num_rows());
  }

  // Tiles-*: one side relation per detected array path, exploded against the
  // final (reordered) row ids so `_rowid` joins back to the base table.
  if (!detected_arrays.empty()) {
    LoadOptions side_options = options_;
    side_options.extract_arrays = false;
    Loader side_loader(StorageMode::kTiles, config_, side_options);
    for (const auto& path : detected_arrays) {
      std::vector<std::string> docs_for_path;
      for (size_t r = 0; r < relation->num_rows(); r++) {
        std::vector<std::vector<uint8_t>> exploded;
        tiles::ExplodeArray(relation->Jsonb(r), path,
                            options_.rowid_base + static_cast<int64_t>(r),
                            &exploded);
        for (const auto& e : exploded) {
          docs_for_path.push_back(json::JsonbValue(e.data()).ToJsonText());
        }
      }
      if (docs_for_path.empty()) continue;
      auto side = side_loader.Load(docs_for_path,
                                   name + "$" + tiles::PathToDisplayString(path));
      if (side.ok()) relation->AddSideRelation(path, side.MoveValueOrDie());
    }
  }

  bd->skipped_docs = skipped_total.load(std::memory_order_relaxed);
  bd->tuples = docs.size() - bd->skipped_docs;
  bd->total_wall_secs = Seconds(wall_begin, Clock::now());
  JSONTILES_COUNTER_ADD("loader.tuples_loaded",
                        static_cast<int64_t>(bd->tuples));
  JSONTILES_HIST_RECORD("loader.load_wall_micros", bd->total_wall_secs * 1e6);
  return relation;
}

}  // namespace jsontiles::storage
