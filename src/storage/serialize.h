// Relation persistence: write a loaded relation — documents, tiles (columns,
// headers, bloom filters, statistics), relation statistics and array side
// relations — to a single binary file and read it back without re-running
// extraction.
//
// Format: "JTRL" magic, version, then length-prefixed sections. All integers
// are LEB128 varints; byte buffers are length-prefixed. The format is an
// implementation detail (no cross-version guarantees), but reads validate
// structure defensively and fail with Status on corruption.

#ifndef JSONTILES_STORAGE_SERIALIZE_H_
#define JSONTILES_STORAGE_SERIALIZE_H_

#include <memory>
#include <string>

#include "storage/relation.h"
#include "util/status.h"

namespace jsontiles::storage {

/// Serialize the relation into `out` (cleared first).
Status SerializeRelation(const Relation& relation, std::vector<uint8_t>* out);

/// Reconstruct a relation from serialized bytes.
Result<std::unique_ptr<Relation>> DeserializeRelation(const uint8_t* data,
                                                      size_t size);

/// File convenience wrappers.
Status SaveRelation(const Relation& relation, const std::string& path);
Result<std::unique_ptr<Relation>> LoadRelation(const std::string& path);

}  // namespace jsontiles::storage

#endif  // JSONTILES_STORAGE_SERIALIZE_H_
