// A simple JSON DOM used by tests, tools and the BSON/CBOR baseline codecs.
//
// The hot paths of the library never materialize a DOM (documents go straight
// from text to JSONB via the two-pass transformation); the DOM exists for
// convenience and for the format-comparison experiments of §6.9.

#ifndef JSONTILES_JSON_DOM_H_
#define JSONTILES_JSON_DOM_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "json/json_type.h"
#include "util/status.h"

namespace jsontiles::json {

/// A mutable JSON value tree. Object member order is preserved on parse
/// (serialization order is the input order, unlike JSONB which sorts keys).
class JsonValue {
 public:
  using Member = std::pair<std::string, JsonValue>;

  JsonValue() : type_(JsonType::kNull) {}
  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b) {
    JsonValue v;
    v.type_ = JsonType::kBool;
    v.bool_ = b;
    return v;
  }
  static JsonValue Int(int64_t i) {
    JsonValue v;
    v.type_ = JsonType::kInt;
    v.int_ = i;
    return v;
  }
  static JsonValue Float(double d) {
    JsonValue v;
    v.type_ = JsonType::kFloat;
    v.double_ = d;
    return v;
  }
  static JsonValue String(std::string s) {
    JsonValue v;
    v.type_ = JsonType::kString;
    v.string_ = std::move(s);
    return v;
  }
  static JsonValue Object() {
    JsonValue v;
    v.type_ = JsonType::kObject;
    return v;
  }
  static JsonValue Array() {
    JsonValue v;
    v.type_ = JsonType::kArray;
    return v;
  }

  JsonType type() const { return type_; }
  bool is_null() const { return type_ == JsonType::kNull; }

  bool bool_value() const { return bool_; }
  int64_t int_value() const { return int_; }
  double double_value() const { return double_; }
  const std::string& string_value() const { return string_; }

  /// Object members (only valid for kObject).
  std::vector<Member>& members() { return members_; }
  const std::vector<Member>& members() const { return members_; }

  /// Array elements (only valid for kArray).
  std::vector<JsonValue>& elements() { return elements_; }
  const std::vector<JsonValue>& elements() const { return elements_; }

  /// Append a member to an object.
  void Add(std::string key, JsonValue value) {
    members_.emplace_back(std::move(key), std::move(value));
  }
  /// Append an element to an array.
  void Append(JsonValue value) { elements_.push_back(std::move(value)); }

  /// Linear-scan member lookup; nullptr when absent.
  const JsonValue* Find(std::string_view key) const {
    for (const auto& [k, v] : members_) {
      if (k == key) return &v;
    }
    return nullptr;
  }

 private:
  JsonType type_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0;
  std::string string_;
  std::vector<Member> members_;
  std::vector<JsonValue> elements_;
};

/// Parse a complete JSON document (one value, trailing whitespace only).
Result<JsonValue> ParseJson(std::string_view text);

/// Serialize to compact JSON text.
std::string WriteJson(const JsonValue& value);
void WriteJson(const JsonValue& value, std::string* out);

/// Escape a string into JSON representation (adds no quotes).
void EscapeJsonString(std::string_view s, std::string* out);

/// Shortest round-trip formatting of a double (no trailing ".0" for whole
/// numbers; matches std::to_chars).
void FormatDouble(double d, std::string* out);

}  // namespace jsontiles::json

#endif  // JSONTILES_JSON_DOM_H_
