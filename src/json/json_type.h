// Logical JSON value types shared by the parser, the JSONB binary format and
// the tile extractor.
//
// The physical types of the binary representation match the RFC 8259
// requirements and are the same types used for JSON tiles extraction
// (paper §3.3 / §5.1), so the cast rewriting of §4.3 applies uniformly.

#ifndef JSONTILES_JSON_JSON_TYPE_H_
#define JSONTILES_JSON_JSON_TYPE_H_

#include <cstdint>

namespace jsontiles::json {

enum class JsonType : uint8_t {
  kNull = 0,
  kBool,
  kInt,            // SQL BigInt
  kFloat,          // SQL Float (IEEE 754 double)
  kString,         // SQL Text
  kNumericString,  // SQL Numeric hidden in a string (§5.2)
  kObject,
  kArray,
};

inline const char* JsonTypeName(JsonType t) {
  switch (t) {
    case JsonType::kNull: return "null";
    case JsonType::kBool: return "bool";
    case JsonType::kInt: return "int";
    case JsonType::kFloat: return "float";
    case JsonType::kString: return "string";
    case JsonType::kNumericString: return "numeric";
    case JsonType::kObject: return "object";
    case JsonType::kArray: return "array";
  }
  return "?";
}

}  // namespace jsontiles::json

#endif  // JSONTILES_JSON_JSON_TYPE_H_
