#include "json/cbor.h"

#include <bit>
#include <cstring>

#include "json/float16.h"

namespace jsontiles::json::cbor {

namespace {

constexpr uint8_t kMajorUint = 0;
constexpr uint8_t kMajorNegint = 1;
constexpr uint8_t kMajorText = 3;
constexpr uint8_t kMajorArray = 4;
constexpr uint8_t kMajorMap = 5;
constexpr uint8_t kMajorSimple = 7;

constexpr uint8_t kSimpleFalse = 20;
constexpr uint8_t kSimpleTrue = 21;
constexpr uint8_t kSimpleNull = 22;
constexpr uint8_t kAiHalf = 25;
constexpr uint8_t kAiSingle = 26;
constexpr uint8_t kAiDouble = 27;

void AppendBE(std::vector<uint8_t>& out, uint64_t v, int bytes) {
  for (int i = bytes - 1; i >= 0; i--) {
    out.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void EncodeHead(std::vector<uint8_t>& out, uint8_t major, uint64_t value) {
  if (value < 24) {
    out.push_back(static_cast<uint8_t>(major << 5 | value));
  } else if (value <= 0xFF) {
    out.push_back(static_cast<uint8_t>(major << 5 | 24));
    AppendBE(out, value, 1);
  } else if (value <= 0xFFFF) {
    out.push_back(static_cast<uint8_t>(major << 5 | 25));
    AppendBE(out, value, 2);
  } else if (value <= 0xFFFFFFFF) {
    out.push_back(static_cast<uint8_t>(major << 5 | 26));
    AppendBE(out, value, 4);
  } else {
    out.push_back(static_cast<uint8_t>(major << 5 | 27));
    AppendBE(out, value, 8);
  }
}

void EncodeValue(const JsonValue& v, std::vector<uint8_t>& out) {
  switch (v.type()) {
    case JsonType::kNull:
      out.push_back(kMajorSimple << 5 | kSimpleNull);
      break;
    case JsonType::kBool:
      out.push_back(static_cast<uint8_t>(
          kMajorSimple << 5 | (v.bool_value() ? kSimpleTrue : kSimpleFalse)));
      break;
    case JsonType::kInt: {
      int64_t i = v.int_value();
      if (i >= 0) {
        EncodeHead(out, kMajorUint, static_cast<uint64_t>(i));
      } else {
        EncodeHead(out, kMajorNegint, static_cast<uint64_t>(-(i + 1)));
      }
      break;
    }
    case JsonType::kFloat: {
      double d = v.double_value();
      if (IsLosslessHalf(d)) {
        out.push_back(kMajorSimple << 5 | kAiHalf);
        AppendBE(out, FloatToHalf(static_cast<float>(d)), 2);
      } else if (IsLosslessSingle(d)) {
        out.push_back(kMajorSimple << 5 | kAiSingle);
        AppendBE(out, std::bit_cast<uint32_t>(static_cast<float>(d)), 4);
      } else {
        out.push_back(kMajorSimple << 5 | kAiDouble);
        AppendBE(out, std::bit_cast<uint64_t>(d), 8);
      }
      break;
    }
    case JsonType::kString:
    case JsonType::kNumericString:
      EncodeHead(out, kMajorText, v.string_value().size());
      out.insert(out.end(), v.string_value().begin(), v.string_value().end());
      break;
    case JsonType::kArray:
      EncodeHead(out, kMajorArray, v.elements().size());
      for (const auto& e : v.elements()) EncodeValue(e, out);
      break;
    case JsonType::kObject:
      EncodeHead(out, kMajorMap, v.members().size());
      for (const auto& [k, e] : v.members()) {
        EncodeHead(out, kMajorText, k.size());
        out.insert(out.end(), k.begin(), k.end());
        EncodeValue(e, out);
      }
      break;
  }
}

struct Reader {
  const uint8_t* data;
  size_t size;
  size_t pos = 0;

  bool ReadByte(uint8_t* b) {
    if (pos >= size) return false;
    *b = data[pos++];
    return true;
  }
  bool ReadBE(int bytes, uint64_t* v) {
    if (pos + static_cast<size_t>(bytes) > size) return false;
    uint64_t r = 0;
    for (int i = 0; i < bytes; i++) r = r << 8 | data[pos++];
    *v = r;
    return true;
  }
  // Decode head; for major 7, *value holds the additional-info code and raw
  // payload handling is done by the caller via ai.
  bool ReadHead(uint8_t* major, uint8_t* ai, uint64_t* value) {
    uint8_t b;
    if (!ReadByte(&b)) return false;
    *major = b >> 5;
    *ai = b & 0x1F;
    if (*ai < 24) {
      *value = *ai;
      return true;
    }
    switch (*ai) {
      case 24: return ReadBE(1, value);
      case 25: return ReadBE(2, value);
      case 26: return ReadBE(4, value);
      case 27: return ReadBE(8, value);
      default: return false;  // indefinite lengths unsupported
    }
  }
};

Status DecodeOne(Reader& r, JsonValue* out, int depth);

// Skip one value without materializing it. Containers require walking every
// nested element (counts, not byte sizes) — CBOR's access weakness.
Status SkipOne(Reader& r, int depth) {
  if (depth > 256) return Status::ParseError("nesting too deep");
  uint8_t major, ai;
  uint64_t value;
  if (!r.ReadHead(&major, &ai, &value)) return Status::ParseError("truncated");
  switch (major) {
    case kMajorUint:
    case kMajorNegint:
      return Status::OK();
    case 2:  // byte string
    case kMajorText:
      if (r.pos + value > r.size) return Status::ParseError("truncated string");
      r.pos += value;
      return Status::OK();
    case kMajorArray:
      for (uint64_t i = 0; i < value; i++) JSONTILES_RETURN_NOT_OK(SkipOne(r, depth + 1));
      return Status::OK();
    case kMajorMap:
      for (uint64_t i = 0; i < value; i++) {
        JSONTILES_RETURN_NOT_OK(SkipOne(r, depth + 1));  // key
        JSONTILES_RETURN_NOT_OK(SkipOne(r, depth + 1));  // value
      }
      return Status::OK();
    case kMajorSimple:
      switch (ai) {
        case kAiHalf: r.pos += 0; return Status::OK();     // payload consumed by head
        case kAiSingle: return Status::OK();
        case kAiDouble: return Status::OK();
        default: return Status::OK();
      }
    default:
      return Status::ParseError("unsupported CBOR major type");
  }
}

Status DecodeOne(Reader& r, JsonValue* out, int depth) {
  if (depth > 256) return Status::ParseError("nesting too deep");
  uint8_t major, ai;
  uint64_t value;
  if (!r.ReadHead(&major, &ai, &value)) return Status::ParseError("truncated");
  switch (major) {
    case kMajorUint:
      *out = JsonValue::Int(static_cast<int64_t>(value));
      return Status::OK();
    case kMajorNegint:
      *out = JsonValue::Int(-1 - static_cast<int64_t>(value));
      return Status::OK();
    case kMajorText: {
      if (r.pos + value > r.size) return Status::ParseError("truncated string");
      *out = JsonValue::String(
          std::string(reinterpret_cast<const char*>(r.data + r.pos), value));
      r.pos += value;
      return Status::OK();
    }
    case kMajorArray: {
      *out = JsonValue::Array();
      for (uint64_t i = 0; i < value; i++) {
        JsonValue child;
        JSONTILES_RETURN_NOT_OK(DecodeOne(r, &child, depth + 1));
        out->Append(std::move(child));
      }
      return Status::OK();
    }
    case kMajorMap: {
      *out = JsonValue::Object();
      for (uint64_t i = 0; i < value; i++) {
        JsonValue key;
        JSONTILES_RETURN_NOT_OK(DecodeOne(r, &key, depth + 1));
        if (key.type() != JsonType::kString) {
          return Status::ParseError("non-text map key");
        }
        JsonValue child;
        JSONTILES_RETURN_NOT_OK(DecodeOne(r, &child, depth + 1));
        out->Add(key.string_value(), std::move(child));
      }
      return Status::OK();
    }
    case kMajorSimple:
      switch (ai) {
        case kSimpleFalse: *out = JsonValue::Bool(false); return Status::OK();
        case kSimpleTrue: *out = JsonValue::Bool(true); return Status::OK();
        case kSimpleNull: *out = JsonValue::Null(); return Status::OK();
        case kAiHalf:
          *out = JsonValue::Float(HalfToFloat(static_cast<uint16_t>(value)));
          return Status::OK();
        case kAiSingle:
          *out = JsonValue::Float(
              std::bit_cast<float>(static_cast<uint32_t>(value)));
          return Status::OK();
        case kAiDouble:
          *out = JsonValue::Float(std::bit_cast<double>(value));
          return Status::OK();
        default:
          return Status::ParseError("unsupported simple value");
      }
    default:
      return Status::ParseError("unsupported CBOR major type");
  }
}

}  // namespace

Status Encode(const JsonValue& root, std::vector<uint8_t>* out) {
  out->clear();
  EncodeValue(root, *out);
  return Status::OK();
}

Result<JsonValue> Decode(const uint8_t* data, size_t size) {
  Reader r{data, size};
  JsonValue out;
  Status st = DecodeOne(r, &out, 0);
  if (!st.ok()) return st;
  if (r.pos != size) return Status::ParseError("trailing bytes");
  return out;
}

bool FindMapKey(const uint8_t* data, size_t size, std::string_view key,
                size_t* pos) {
  Reader r{data, size};
  uint8_t major, ai;
  uint64_t count;
  if (!r.ReadHead(&major, &ai, &count) || major != kMajorMap) return false;
  for (uint64_t i = 0; i < count; i++) {
    uint8_t kmajor, kai;
    uint64_t klen;
    if (!r.ReadHead(&kmajor, &kai, &klen) || kmajor != kMajorText) return false;
    if (r.pos + klen > r.size) return false;
    std::string_view k(reinterpret_cast<const char*>(r.data + r.pos), klen);
    r.pos += klen;
    if (k == key) {
      *pos = r.pos;
      return true;
    }
    if (!SkipOne(r, 0).ok()) return false;
  }
  return false;
}

Result<JsonValue> DecodeValueAt(const uint8_t* data, size_t size, size_t pos) {
  Reader r{data, size};
  r.pos = pos;
  JsonValue out;
  Status st = DecodeOne(r, &out, 0);
  if (!st.ok()) return st;
  return out;
}

}  // namespace jsontiles::json::cbor
