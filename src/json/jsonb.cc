#include "json/jsonb.h"

#include <algorithm>
#include <bit>
#include <cstring>

#include "json/dom.h"
#include "json/float16.h"
#include "json/jsonb_wire.h"
#include "obs/obs.h"
#include "util/bit_util.h"
#include "util/logging.h"

namespace jsontiles::json {

// Wire constants and leaf encoders are shared with the direct emitter
// (ondemand.cc) via jsonb_wire.h, so the two serializers cannot drift.
using namespace wire;  // NOLINT

namespace {

constexpr int kMaxNesting = JsonbBuilder::kMaxNesting;

// Varint decode that fails instead of reading past `avail` bytes (the shared
// bit_util::DecodeVarint trusts its input and has no bound).
bool DecodeVarintBounded(const uint8_t* p, size_t avail, size_t* pos,
                         uint64_t* out) {
  uint64_t value = 0;
  int shift = 0;
  while (*pos < avail && shift < 64) {
    uint8_t byte = p[(*pos)++];
    value |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *out = value;
      return true;
    }
    shift += 7;
  }
  return false;
}

// Validates one value within `avail` bytes and reports its serialized size.
Status ValidateValue(const uint8_t* v, size_t avail, int depth,
                     size_t* size_out) {
  if (depth > kMaxNesting) return Status::ParseError("jsonb: nesting too deep");
  if (avail == 0) return Status::ParseError("jsonb: truncated header");
  const uint8_t tag = Tag(v);
  const uint8_t imm = Imm(v);
  switch (tag) {
    case kTagNull:
    case kTagFalse:
    case kTagTrue:
      if (imm != 0) return Status::ParseError("jsonb: nonzero immediate");
      *size_out = 1;
      return Status::OK();
    case kTagIntSmall:
      *size_out = 1;
      return Status::OK();
    case kTagInt: {
      size_t n = static_cast<size_t>(imm & 7) + 1;
      if (1 + n > avail) return Status::ParseError("jsonb: truncated int");
      *size_out = 1 + n;
      return Status::OK();
    }
    case kTagFloat:
      if (imm != 2 && imm != 4 && imm != 8) {
        return Status::ParseError("jsonb: bad float width");
      }
      if (1 + static_cast<size_t>(imm) > avail) {
        return Status::ParseError("jsonb: truncated float");
      }
      *size_out = 1 + imm;
      return Status::OK();
    case kTagString: {
      if (imm < 15) {
        if (1 + static_cast<size_t>(imm) > avail) {
          return Status::ParseError("jsonb: truncated string");
        }
        *size_out = 1 + imm;
        return Status::OK();
      }
      size_t pos = 1;
      uint64_t len;
      if (!DecodeVarintBounded(v, avail, &pos, &len)) {
        return Status::ParseError("jsonb: bad string length");
      }
      if (len > avail - pos) return Status::ParseError("jsonb: truncated string");
      *size_out = pos + static_cast<size_t>(len);
      return Status::OK();
    }
    case kTagNumeric: {
      if (imm != 0) return Status::ParseError("jsonb: nonzero immediate");
      if (avail < 2) return Status::ParseError("jsonb: truncated numeric");
      size_t pos = 2;  // header + sign/scale byte
      uint64_t mag;
      if (!DecodeVarintBounded(v, avail, &pos, &mag)) {
        return Status::ParseError("jsonb: bad numeric magnitude");
      }
      if (mag > static_cast<uint64_t>(INT64_MAX)) {
        return Status::ParseError("jsonb: numeric magnitude overflow");
      }
      *size_out = pos;
      return Status::OK();
    }
    case kTagObject:
    case kTagArray: {
      if (imm > 2) return Status::ParseError("jsonb: bad offset width");
      const size_t ow = static_cast<size_t>(OffsetWidth(imm));
      size_t pos = 1;
      uint64_t count;
      if (!DecodeVarintBounded(v, avail, &pos, &count)) {
        return Status::ParseError("jsonb: bad container count");
      }
      if (count > (avail - pos) / ow) {
        return Status::ParseError("jsonb: truncated offset table");
      }
      const size_t slots_pos = pos + static_cast<size_t>(count) * ow;
      uint64_t prev = 0;
      std::string_view prev_key;
      for (uint64_t i = 0; i < count; i++) {
        uint64_t off = bit_util::LoadLE(
            v + pos + static_cast<size_t>(i) * ow, static_cast<int>(ow));
        if (off <= prev) {
          return Status::ParseError("jsonb: offsets not increasing");
        }
        if (off > avail - slots_pos) {
          return Status::ParseError("jsonb: slot out of bounds");
        }
        const size_t slot_start = slots_pos + static_cast<size_t>(prev);
        const size_t slot_len = static_cast<size_t>(off - prev);
        size_t value_len = slot_len;
        if (tag == kTagObject) {
          if (slot_len < 3) {  // 1-byte value + 0-byte key + u16 key length
            return Status::ParseError("jsonb: object slot too small");
          }
          uint16_t keylen = bit_util::LoadU16(v + slot_start + slot_len - 2);
          if (static_cast<size_t>(keylen) + 2 > slot_len) {
            return Status::ParseError("jsonb: key out of bounds");
          }
          value_len = slot_len - 2 - keylen;
          std::string_view key(
              reinterpret_cast<const char*>(v + slot_start + value_len), keylen);
          if (i > 0 && !(prev_key < key)) {
            return Status::ParseError("jsonb: keys not sorted");
          }
          prev_key = key;
        }
        size_t child_size = 0;
        JSONTILES_RETURN_NOT_OK(
            ValidateValue(v + slot_start, value_len, depth + 1, &child_size));
        if (child_size != value_len) {
          return Status::ParseError("jsonb: slot size mismatch");
        }
        prev = off;
      }
      *size_out = slots_pos + static_cast<size_t>(prev);
      return Status::OK();
    }
    default:
      return Status::ParseError("jsonb: unknown tag");
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// JsonbValue accessors
// ---------------------------------------------------------------------------

JsonType JsonbValue::type() const {
  switch (Tag(p_)) {
    case kTagNull: return JsonType::kNull;
    case kTagFalse:
    case kTagTrue: return JsonType::kBool;
    case kTagIntSmall:
    case kTagInt: return JsonType::kInt;
    case kTagFloat: return JsonType::kFloat;
    case kTagString: return JsonType::kString;
    case kTagNumeric: return JsonType::kNumericString;
    case kTagObject: return JsonType::kObject;
    case kTagArray: return JsonType::kArray;
    default: JSONTILES_CHECK(false);
  }
}

JsonbValue::ContainerInfo JsonbValue::DecodeContainer() const {
  ContainerInfo info;
  info.offset_width = OffsetWidth(Imm(p_));
  size_t pos = 1;
  info.count = bit_util::DecodeVarint(p_, &pos);
  info.offsets_pos = pos;
  info.slots_pos = pos + info.count * static_cast<size_t>(info.offset_width);
  return info;
}

size_t JsonbValue::SlotEnd(const ContainerInfo& info, size_t i) const {
  return info.slots_pos +
         bit_util::LoadLE(p_ + info.offsets_pos +
                              i * static_cast<size_t>(info.offset_width),
                          info.offset_width);
}

size_t JsonbValue::SlotStart(const ContainerInfo& info, size_t i) const {
  return i == 0 ? info.slots_pos : SlotEnd(info, i - 1);
}

size_t JsonbValue::Size() const {
  switch (Tag(p_)) {
    case kTagNull:
    case kTagFalse:
    case kTagTrue:
    case kTagIntSmall:
      return 1;
    case kTagInt:
      return 1 + static_cast<size_t>(Imm(p_) & 7) + 1;
    case kTagFloat:
      return 1 + Imm(p_);
    case kTagString: {
      uint8_t imm = Imm(p_);
      if (imm < 15) return 1 + imm;
      size_t pos = 1;
      uint64_t len = bit_util::DecodeVarint(p_, &pos);
      return pos + len;
    }
    case kTagNumeric: {
      size_t pos = 2;  // header + sign/scale byte
      bit_util::DecodeVarint(p_, &pos);
      return pos;
    }
    case kTagObject:
    case kTagArray: {
      ContainerInfo info = DecodeContainer();
      if (info.count == 0) return info.slots_pos;
      return SlotEnd(info, info.count - 1);
    }
    default:
      JSONTILES_CHECK(false);
  }
}

bool JsonbValue::GetBool() const { return Tag(p_) == kTagTrue; }

int64_t JsonbValue::GetInt() const {
  if (Tag(p_) == kTagIntSmall) return Imm(p_);
  JSONTILES_DCHECK(Tag(p_) == kTagInt);
  int nbytes = (Imm(p_) & 7) + 1;
  uint64_t mag = bit_util::LoadLE(p_ + 1, nbytes);
  return (Imm(p_) & 8) ? -static_cast<int64_t>(mag) : static_cast<int64_t>(mag);
}

double JsonbValue::GetDouble() const {
  switch (Tag(p_)) {
    case kTagIntSmall:
    case kTagInt:
      return static_cast<double>(GetInt());
    case kTagFloat:
      switch (Imm(p_)) {
        case 2: return HalfToFloat(bit_util::LoadU16(p_ + 1));
        case 4: return std::bit_cast<float>(bit_util::LoadU32(p_ + 1));
        default: return std::bit_cast<double>(bit_util::LoadU64(p_ + 1));
      }
    case kTagNumeric:
      return GetNumeric().ToDouble();
    default:
      JSONTILES_DCHECK(false);
      return 0;
  }
}

std::string_view JsonbValue::GetString() const {
  JSONTILES_DCHECK(Tag(p_) == kTagString);
  uint8_t imm = Imm(p_);
  if (imm < 15) {
    return {reinterpret_cast<const char*>(p_ + 1), imm};
  }
  size_t pos = 1;
  uint64_t len = bit_util::DecodeVarint(p_, &pos);
  return {reinterpret_cast<const char*>(p_ + pos), len};
}

Numeric JsonbValue::GetNumeric() const {
  JSONTILES_DCHECK(Tag(p_) == kTagNumeric);
  Numeric n;
  uint8_t sign_scale = p_[1];
  n.scale = sign_scale & 0x7F;
  size_t pos = 2;
  uint64_t mag = bit_util::DecodeVarint(p_, &pos);
  n.unscaled = (sign_scale & 0x80) ? -static_cast<int64_t>(mag)
                                   : static_cast<int64_t>(mag);
  return n;
}

size_t JsonbValue::Count() const { return DecodeContainer().count; }

std::string_view JsonbValue::MemberKey(size_t i) const {
  ContainerInfo info = DecodeContainer();
  size_t end = SlotEnd(info, i);
  uint16_t keylen = bit_util::LoadU16(p_ + end - 2);
  return {reinterpret_cast<const char*>(p_ + end - 2 - keylen), keylen};
}

JsonbValue JsonbValue::MemberValue(size_t i) const {
  ContainerInfo info = DecodeContainer();
  return JsonbValue(p_ + SlotStart(info, i));
}

std::optional<JsonbValue> JsonbValue::FindKey(std::string_view key) const {
  if (Tag(p_) != kTagObject) return std::nullopt;
  ContainerInfo info = DecodeContainer();
  size_t lo = 0;
  size_t hi = info.count;
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    size_t end = SlotEnd(info, mid);
    uint16_t keylen = bit_util::LoadU16(p_ + end - 2);
    std::string_view mid_key(reinterpret_cast<const char*>(p_ + end - 2 - keylen),
                             keylen);
    int cmp = mid_key.compare(key);
    if (cmp == 0) return JsonbValue(p_ + SlotStart(info, mid));
    if (cmp < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return std::nullopt;
}

JsonbValue JsonbValue::ArrayElement(size_t i) const {
  ContainerInfo info = DecodeContainer();
  JSONTILES_DCHECK(i < info.count);
  return JsonbValue(p_ + SlotStart(info, i));
}

void JsonbValue::ToJsonText(std::string* out) const {
  switch (Tag(p_)) {
    case kTagNull: out->append("null"); return;
    case kTagFalse: out->append("false"); return;
    case kTagTrue: out->append("true"); return;
    case kTagIntSmall:
    case kTagInt:
      out->append(std::to_string(GetInt()));
      return;
    case kTagFloat:
      FormatDouble(GetDouble(), out);
      return;
    case kTagString:
      out->push_back('"');
      EscapeJsonString(GetString(), out);
      out->push_back('"');
      return;
    case kTagNumeric:
      out->push_back('"');
      out->append(GetNumeric().ToString());
      out->push_back('"');
      return;
    case kTagObject: {
      ContainerInfo info = DecodeContainer();
      out->push_back('{');
      for (size_t i = 0; i < info.count; i++) {
        if (i > 0) out->push_back(',');
        size_t end = SlotEnd(info, i);
        uint16_t keylen = bit_util::LoadU16(p_ + end - 2);
        std::string_view key(reinterpret_cast<const char*>(p_ + end - 2 - keylen),
                             keylen);
        out->push_back('"');
        EscapeJsonString(key, out);
        out->append("\":");
        JsonbValue(p_ + SlotStart(info, i)).ToJsonText(out);
      }
      out->push_back('}');
      return;
    }
    case kTagArray: {
      ContainerInfo info = DecodeContainer();
      out->push_back('[');
      for (size_t i = 0; i < info.count; i++) {
        if (i > 0) out->push_back(',');
        JsonbValue(p_ + SlotStart(info, i)).ToJsonText(out);
      }
      out->push_back(']');
      return;
    }
    default:
      JSONTILES_CHECK(false);
  }
}

std::string JsonbValue::ToJsonText() const {
  std::string out;
  ToJsonText(&out);
  return out;
}

// ---------------------------------------------------------------------------
// JsonbBuilder: pass 1 (parse + size), pass 2 (write)
// ---------------------------------------------------------------------------

std::string_view JsonbBuilder::DecodeStringLexeme(std::string_view lexeme,
                                                  bool has_escape) {
  if (!has_escape) return lexeme;
  if (decoded_used_ == decoded_.size()) decoded_.emplace_back();
  std::string& slot = decoded_[decoded_used_++];
  JsonLexer::Unescape(lexeme, &slot);
  return slot;
}

std::string_view JsonbBuilder::DecodeString(const JsonLexer& lexer) {
  return DecodeStringLexeme(lexer.string_lexeme(), lexer.string_has_escape());
}

void JsonbBuilder::SetNumberIntNode(uint32_t index, int64_t v) {
  Node& node = nodes_[index];
  node.type = JsonType::kInt;
  node.int_val = v;
  node.size = IntSize(v);
}

void JsonbBuilder::SetNumberFloatNode(uint32_t index, double d) {
  Node& node = nodes_[index];
  node.type = JsonType::kFloat;
  node.dbl_val = d;
  node.float_width = FloatWidth(d);
  node.size = 1 + node.float_width;
}

void JsonbBuilder::SetStringNode(uint32_t index, std::string_view decoded) {
  Node& node = nodes_[index];
  Numeric num;
  if (options_.detect_numeric_strings && ParseNumeric(decoded, &num)) {
    node.type = JsonType::kNumericString;
    node.num_val = num;
    node.size = NumericSize(num);
  } else {
    node.type = JsonType::kString;
    node.str = decoded;
    node.size = StringSize(decoded.size());
  }
}

void JsonbBuilder::FinalizeObject(uint32_t index,
                                  std::vector<uint32_t>& children,
                                  size_t begin) {
  // Sort by key (stable: equal keys keep input order), then keep the last
  // occurrence of each duplicate key, as PostgreSQL's jsonb does. The dedup
  // compacts [begin, end) in place. Typical objects are small, so sort them
  // with a stable insertion sort: std::stable_sort allocates a merge buffer
  // per call, which dominates the profile on short-document workloads.
  const auto key_less = [this](uint32_t a, uint32_t b) {
    return nodes_[a].key < nodes_[b].key;
  };
  uint32_t* base = children.data() + begin;
  const size_t n = children.size() - begin;
  if (n <= 32) {
    for (size_t i = 1; i < n; i++) {
      const uint32_t v = base[i];
      size_t j = i;
      while (j > 0 && key_less(v, base[j - 1])) {
        base[j] = base[j - 1];
        j--;
      }
      base[j] = v;
    }
  } else {
    std::stable_sort(children.begin() + static_cast<long>(begin),
                     children.end(), key_less);
  }
  size_t w = begin;
  for (size_t i = begin; i < children.size(); i++) {
    if (i + 1 < children.size() &&
        nodes_[children[i]].key == nodes_[children[i + 1]].key) {
      continue;  // superseded by a later duplicate
    }
    children[w++] = children[i];
  }
  children.resize(w);
  Node& node = nodes_[index];
  node.sorted_begin = static_cast<uint32_t>(sorted_children_.size());
  node.count = static_cast<uint32_t>(w - begin);
  sorted_children_.insert(sorted_children_.end(),
                          children.begin() + static_cast<long>(begin),
                          children.end());
  uint64_t slots_size = 0;
  for (size_t i = begin; i < children.size(); i++) {
    const Node& child = nodes_[children[i]];
    slots_size += child.size + child.key.size() + 2;
  }
  int ow = OffsetWidthFor(slots_size);
  node.offset_width = static_cast<uint8_t>(ow);
  node.size = ContainerHeaderSize(node.count, ow) + slots_size;
}

void JsonbBuilder::FinalizeArray(uint32_t index, uint32_t count,
                                 uint64_t slots_size) {
  Node& node = nodes_[index];
  node.count = count;
  int ow = OffsetWidthFor(slots_size);
  node.offset_width = static_cast<uint8_t>(ow);
  node.size = ContainerHeaderSize(count, ow) + slots_size;
}

Status JsonbBuilder::ParseValue(JsonLexer& lexer, Token token, uint32_t* index,
                                int depth) {
  if (depth > kMaxNesting) return Status::ParseError("nesting too deep");
  uint32_t idx = static_cast<uint32_t>(nodes_.size());
  nodes_.emplace_back();
  *index = idx;
  switch (token) {
    case Token::kNull:
      nodes_[idx].type = JsonType::kNull;
      nodes_[idx].size = 1;
      return Status::OK();
    case Token::kTrue:
    case Token::kFalse:
      nodes_[idx].type = JsonType::kBool;
      nodes_[idx].int_val = token == Token::kTrue ? 1 : 0;
      nodes_[idx].size = 1;
      return Status::OK();
    case Token::kNumber:
      if (lexer.number_is_int()) {
        SetNumberIntNode(idx, lexer.int_value());
      } else {
        SetNumberFloatNode(idx, lexer.double_value());
      }
      return Status::OK();
    case Token::kString:
      SetStringNode(idx, DecodeString(lexer));
      return Status::OK();
    case Token::kObjectBegin: {
      nodes_[idx].type = JsonType::kObject;
      std::vector<uint32_t> children;
      Token t;
      JSONTILES_RETURN_NOT_OK(lexer.Next(&t));
      uint32_t prev = kInvalid;
      while (t != Token::kObjectEnd) {
        if (t != Token::kString) return Status::ParseError("expected object key");
        std::string_view key = DecodeString(lexer);
        if (key.size() > 0xFFFF) return Status::ParseError("key too long");
        JSONTILES_RETURN_NOT_OK(lexer.Next(&t));
        if (t != Token::kColon) return Status::ParseError("expected ':'");
        JSONTILES_RETURN_NOT_OK(lexer.Next(&t));
        uint32_t child;
        JSONTILES_RETURN_NOT_OK(ParseValue(lexer, t, &child, depth + 1));
        nodes_[child].key = key;
        if (prev == kInvalid) {
          nodes_[idx].first_child = child;
        } else {
          nodes_[prev].next_sibling = child;
        }
        prev = child;
        children.push_back(child);
        JSONTILES_RETURN_NOT_OK(lexer.Next(&t));
        if (t == Token::kComma) {
          JSONTILES_RETURN_NOT_OK(lexer.Next(&t));
          if (t == Token::kObjectEnd) return Status::ParseError("trailing comma");
        } else if (t != Token::kObjectEnd) {
          return Status::ParseError("expected ',' or '}'");
        }
      }
      FinalizeObject(idx, children, 0);
      return Status::OK();
    }
    case Token::kArrayBegin: {
      nodes_[idx].type = JsonType::kArray;
      Token t;
      JSONTILES_RETURN_NOT_OK(lexer.Next(&t));
      uint32_t prev = kInvalid;
      uint64_t slots_size = 0;
      uint32_t count = 0;
      while (t != Token::kArrayEnd) {
        uint32_t child;
        JSONTILES_RETURN_NOT_OK(ParseValue(lexer, t, &child, depth + 1));
        if (prev == kInvalid) {
          nodes_[idx].first_child = child;
        } else {
          nodes_[prev].next_sibling = child;
        }
        prev = child;
        slots_size += nodes_[child].size;
        count++;
        JSONTILES_RETURN_NOT_OK(lexer.Next(&t));
        if (t == Token::kComma) {
          JSONTILES_RETURN_NOT_OK(lexer.Next(&t));
          if (t == Token::kArrayEnd) return Status::ParseError("trailing comma");
        } else if (t != Token::kArrayEnd) {
          return Status::ParseError("expected ',' or ']'");
        }
      }
      FinalizeArray(idx, count, slots_size);
      return Status::OK();
    }
    default:
      return Status::ParseError("unexpected token");
  }
}

void JsonbBuilder::WriteValue(uint32_t index, uint8_t* out, size_t pos) const {
  const Node& node = nodes_[index];
  switch (node.type) {
    case JsonType::kNull:
      EncodeNull(out + pos);
      return;
    case JsonType::kBool:
      EncodeBool(out + pos, node.int_val != 0);
      return;
    case JsonType::kInt:
      EncodeInt(out + pos, node.int_val);
      return;
    case JsonType::kFloat:
      EncodeFloat(out + pos, node.dbl_val, node.float_width);
      return;
    case JsonType::kString:
      EncodeString(out + pos, node.str);
      return;
    case JsonType::kNumericString:
      EncodeNumeric(out + pos, node.num_val);
      return;
    case JsonType::kObject: {
      uint8_t* offsets = EncodeContainerHeader(out + pos, kTagObject,
                                               node.count, node.offset_width);
      size_t offsets_pos = static_cast<size_t>(offsets - out);
      size_t slots_pos =
          offsets_pos + static_cast<size_t>(node.count) * node.offset_width;
      uint64_t rel = 0;
      for (uint32_t i = 0; i < node.count; i++) {
        uint32_t child = sorted_children_[node.sorted_begin + i];
        size_t slot_start = slots_pos + rel;
        WriteValue(child, out, slot_start);
        size_t key_pos = slot_start + nodes_[child].size;
        std::memcpy(out + key_pos, nodes_[child].key.data(), nodes_[child].key.size());
        bit_util::StoreU16(out + key_pos + nodes_[child].key.size(),
                           static_cast<uint16_t>(nodes_[child].key.size()));
        rel += nodes_[child].size + nodes_[child].key.size() + 2;
        bit_util::StoreLE(out + offsets_pos + static_cast<size_t>(i) * node.offset_width,
                          rel, node.offset_width);
      }
      return;
    }
    case JsonType::kArray: {
      uint8_t* offsets = EncodeContainerHeader(out + pos, kTagArray,
                                               node.count, node.offset_width);
      size_t offsets_pos = static_cast<size_t>(offsets - out);
      size_t slots_pos =
          offsets_pos + static_cast<size_t>(node.count) * node.offset_width;
      uint64_t rel = 0;
      uint32_t child = node.first_child;
      for (uint32_t i = 0; i < node.count; i++) {
        WriteValue(child, out, slots_pos + rel);
        rel += nodes_[child].size;
        bit_util::StoreLE(out + offsets_pos + static_cast<size_t>(i) * node.offset_width,
                          rel, node.offset_width);
        child = nodes_[child].next_sibling;
      }
      return;
    }
  }
}

Status JsonbBuilder::Transform(std::string_view json_text,
                               std::vector<uint8_t>* out) {
  nodes_.clear();
  sorted_children_.clear();
  decoded_used_ = 0;

  JSONTILES_OBS_ONLY(obs::Stopwatch obs_watch);
  JsonLexer lexer(json_text);
  Token token;
  JSONTILES_RETURN_NOT_OK(lexer.Next(&token));
  if (token == Token::kEnd) return Status::ParseError("empty input");
  uint32_t root;
  JSONTILES_RETURN_NOT_OK(ParseValue(lexer, token, &root, 0));
  JSONTILES_RETURN_NOT_OK(lexer.Next(&token));
  if (token != Token::kEnd) return Status::ParseError("trailing content");
  if (nodes_[root].size > 0xFFFFFFFFull) {
    return Status::OutOfRange("document larger than 4 GiB");
  }
  JSONTILES_HIST_RECORD("jsonb.transform.pass1_micros", obs_watch.Lap() * 1e6);

  out->resize(nodes_[root].size);
  WriteValue(root, out->data(), 0);
  JSONTILES_HIST_RECORD("jsonb.transform.pass2_micros", obs_watch.Lap() * 1e6);
  JSONTILES_COUNTER_ADD("jsonb.transform.docs", 1);
  JSONTILES_COUNTER_ADD("jsonb.transform.bytes_in",
                        static_cast<int64_t>(json_text.size()));
  JSONTILES_COUNTER_ADD("jsonb.transform.bytes_out",
                        static_cast<int64_t>(out->size()));
  return Status::OK();
}

Result<std::vector<uint8_t>> JsonbFromText(std::string_view json_text) {
  JsonbBuilder builder;
  std::vector<uint8_t> out;
  Status st = builder.Transform(json_text, &out);
  if (!st.ok()) return st;
  return out;
}

Status ValidateJsonb(const uint8_t* data, size_t size) {
  if (data == nullptr) return Status::ParseError("jsonb: null buffer");
  size_t root_size = 0;
  JSONTILES_RETURN_NOT_OK(ValidateValue(data, size, 0, &root_size));
  if (root_size != size) return Status::ParseError("jsonb: trailing bytes");
  return Status::OK();
}

std::vector<uint8_t> AssembleObject(std::vector<AssembleMember> members) {
  std::sort(members.begin(), members.end(),
            [](const AssembleMember& a, const AssembleMember& b) {
              return a.key < b.key;
            });
  uint64_t slots_size = 0;
  for (const auto& m : members) slots_size += m.value_size + m.key.size() + 2;
  int ow = slots_size <= 0xFF ? 1 : slots_size <= 0xFFFF ? 2 : 4;
  uint64_t count = members.size();
  size_t total = 1 + static_cast<size_t>(bit_util::VarintSize(count)) +
                 static_cast<size_t>(count) * static_cast<size_t>(ow) +
                 static_cast<size_t>(slots_size);
  std::vector<uint8_t> out(total);
  out[0] = static_cast<uint8_t>(kTagObject << 4 | OffsetWidthCode(ow));
  size_t p = 1;
  p += static_cast<size_t>(bit_util::EncodeVarint(out.data() + p, count));
  size_t offsets_pos = p;
  size_t slots_pos = p + static_cast<size_t>(count) * static_cast<size_t>(ow);
  uint64_t rel = 0;
  for (size_t i = 0; i < members.size(); i++) {
    const auto& m = members[i];
    size_t slot_start = slots_pos + rel;
    std::memcpy(out.data() + slot_start, m.value_data, m.value_size);
    std::memcpy(out.data() + slot_start + m.value_size, m.key.data(), m.key.size());
    bit_util::StoreU16(out.data() + slot_start + m.value_size + m.key.size(),
                       static_cast<uint16_t>(m.key.size()));
    rel += m.value_size + m.key.size() + 2;
    bit_util::StoreLE(out.data() + offsets_pos + i * static_cast<size_t>(ow), rel, ow);
  }
  return out;
}

std::vector<uint8_t> MakeJsonbInt(int64_t value) {
  std::vector<uint8_t> out;
  if (value >= 0 && value <= 15) {
    out.push_back(static_cast<uint8_t>(kTagIntSmall << 4 | value));
    return out;
  }
  uint64_t mag = value < 0 ? -static_cast<uint64_t>(value)
                           : static_cast<uint64_t>(value);
  int n = bit_util::MinBytes(mag);
  out.resize(1 + static_cast<size_t>(n));
  out[0] = static_cast<uint8_t>(kTagInt << 4 | (value < 0 ? 8 : 0) | (n - 1));
  bit_util::StoreLE(out.data() + 1, mag, n);
  return out;
}

std::optional<JsonbValue> LookupSteps(JsonbValue root, const PathStep* steps,
                                      size_t count) {
  JsonbValue cur = root;
  for (size_t s = 0; s < count; s++) {
    const PathStep& step = steps[s];
    if (!step.is_index) {
      if (cur.type() != JsonType::kObject) return std::nullopt;
      auto next = cur.FindKey(step.key);
      if (!next.has_value()) return std::nullopt;
      cur = *next;
    } else {
      if (cur.type() != JsonType::kArray || step.index >= cur.Count()) {
        return std::nullopt;
      }
      cur = cur.ArrayElement(step.index);
    }
  }
  return cur;
}

std::vector<uint8_t> MakeJsonbString(std::string_view value) {
  std::vector<uint8_t> out;
  if (value.size() < 15) {
    out.push_back(static_cast<uint8_t>(kTagString << 4 | value.size()));
    out.insert(out.end(), value.begin(), value.end());
    return out;
  }
  uint8_t lenbuf[10];
  int n = bit_util::EncodeVarint(lenbuf, value.size());
  out.push_back(kTagString << 4 | 15);
  out.insert(out.end(), lenbuf, lenbuf + n);
  out.insert(out.end(), value.begin(), value.end());
  return out;
}

}  // namespace jsontiles::json
