#include "json/lexer.h"

#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdlib>

namespace jsontiles::json {

namespace {

bool IsWhitespace(char c) { return c == ' ' || c == '\t' || c == '\n' || c == '\r'; }
bool IsDigit(char c) { return c >= '0' && c <= '9'; }

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

// Append a Unicode code point as UTF-8.
void AppendUtf8(std::string* out, uint32_t cp) {
  if (cp < 0x80) {
    out->push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

size_t Utf8Length(uint32_t cp) {
  if (cp < 0x80) return 1;
  if (cp < 0x800) return 2;
  if (cp < 0x10000) return 3;
  return 4;
}

// Decode a validated \uXXXX (possibly a surrogate pair); advances *i past the
// escape (which starts at lexeme[*i] == 'u'). Returns the code point.
uint32_t DecodeUnicodeEscape(std::string_view lexeme, size_t* i) {
  uint32_t cp = 0;
  for (int k = 1; k <= 4; k++) {
    cp = cp * 16 + static_cast<uint32_t>(HexValue(lexeme[*i + static_cast<size_t>(k)]));
  }
  *i += 5;
  if (cp >= 0xD800 && cp <= 0xDBFF && *i + 6 <= lexeme.size() &&
      lexeme[*i] == '\\' && lexeme[*i + 1] == 'u') {
    uint32_t low = 0;
    for (int k = 2; k <= 5; k++) {
      low = low * 16 +
            static_cast<uint32_t>(HexValue(lexeme[*i + static_cast<size_t>(k)]));
    }
    if (low >= 0xDC00 && low <= 0xDFFF) {
      *i += 6;
      return 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
    }
  }
  return cp;
}

}  // namespace

Status JsonLexer::Error(const std::string& message) const {
  return Status::ParseError(message + " at offset " + std::to_string(pos_));
}

Status JsonLexer::Next(Token* token) {
  while (pos_ < input_.size() && IsWhitespace(input_[pos_])) pos_++;
  if (pos_ >= input_.size()) {
    *token = Token::kEnd;
    return Status::OK();
  }
  char c = input_[pos_];
  switch (c) {
    case '{': pos_++; *token = Token::kObjectBegin; return Status::OK();
    case '}': pos_++; *token = Token::kObjectEnd; return Status::OK();
    case '[': pos_++; *token = Token::kArrayBegin; return Status::OK();
    case ']': pos_++; *token = Token::kArrayEnd; return Status::OK();
    case ':': pos_++; *token = Token::kColon; return Status::OK();
    case ',': pos_++; *token = Token::kComma; return Status::OK();
    case '"': *token = Token::kString; return LexString();
    case 't':
      if (input_.substr(pos_, 4) != "true") return Error("invalid literal");
      pos_ += 4;
      *token = Token::kTrue;
      return Status::OK();
    case 'f':
      if (input_.substr(pos_, 5) != "false") return Error("invalid literal");
      pos_ += 5;
      *token = Token::kFalse;
      return Status::OK();
    case 'n':
      if (input_.substr(pos_, 4) != "null") return Error("invalid literal");
      pos_ += 4;
      *token = Token::kNull;
      return Status::OK();
    default:
      if (c == '-' || IsDigit(c)) {
        *token = Token::kNumber;
        return LexNumber();
      }
      return Error("unexpected character");
  }
}

Status JsonLexer::LexString() {
  size_t begin = ++pos_;  // skip opening quote
  string_has_escape_ = false;
  while (pos_ < input_.size()) {
    unsigned char c = static_cast<unsigned char>(input_[pos_]);
    if (c == '"') {
      string_lexeme_ = input_.substr(begin, pos_ - begin);
      pos_++;
      return Status::OK();
    }
    if (c == '\\') {
      string_has_escape_ = true;
      pos_++;
      if (pos_ >= input_.size()) return Error("unterminated escape");
      char e = input_[pos_];
      switch (e) {
        case '"': case '\\': case '/': case 'b': case 'f':
        case 'n': case 'r': case 't':
          pos_++;
          break;
        case 'u': {
          if (pos_ + 4 >= input_.size()) return Error("truncated \\u escape");
          for (int k = 1; k <= 4; k++) {
            if (HexValue(input_[pos_ + static_cast<size_t>(k)]) < 0) {
              return Error("invalid \\u escape");
            }
          }
          pos_ += 5;
          break;
        }
        default:
          return Error("invalid escape character");
      }
    } else if (c < 0x20) {
      return Error("unescaped control character in string");
    } else {
      pos_++;
    }
  }
  return Error("unterminated string");
}

Status JsonLexer::LexNumber() {
  size_t begin = pos_;
  if (input_[pos_] == '-') pos_++;
  if (pos_ >= input_.size() || !IsDigit(input_[pos_])) return Error("invalid number");
  if (input_[pos_] == '0') {
    pos_++;
  } else {
    while (pos_ < input_.size() && IsDigit(input_[pos_])) pos_++;
  }
  bool is_int = true;
  if (pos_ < input_.size() && input_[pos_] == '.') {
    is_int = false;
    pos_++;
    if (pos_ >= input_.size() || !IsDigit(input_[pos_])) {
      return Error("digits required after decimal point");
    }
    while (pos_ < input_.size() && IsDigit(input_[pos_])) pos_++;
  }
  if (pos_ < input_.size() && (input_[pos_] == 'e' || input_[pos_] == 'E')) {
    is_int = false;
    pos_++;
    if (pos_ < input_.size() && (input_[pos_] == '+' || input_[pos_] == '-')) pos_++;
    if (pos_ >= input_.size() || !IsDigit(input_[pos_])) {
      return Error("digits required in exponent");
    }
    while (pos_ < input_.size() && IsDigit(input_[pos_])) pos_++;
  }
  number_lexeme_ = input_.substr(begin, pos_ - begin);
  if (is_int) {
    // May still overflow int64; fall back to double in that case.
    int64_t v = 0;
    auto [ptr, ec] = std::from_chars(number_lexeme_.data(),
                                     number_lexeme_.data() + number_lexeme_.size(), v);
    if (ec == std::errc() && ptr == number_lexeme_.data() + number_lexeme_.size()) {
      number_is_int_ = true;
      int_value_ = v;
      double_value_ = static_cast<double>(v);
      return Status::OK();
    }
  }
  number_is_int_ = false;
  // std::from_chars for double is available in libstdc++ >= 11.
  double d = 0;
  auto [ptr, ec] = std::from_chars(number_lexeme_.data(),
                                   number_lexeme_.data() + number_lexeme_.size(), d);
  if (ec == std::errc::result_out_of_range) {
    d = number_lexeme_[0] == '-' ? -HUGE_VAL : HUGE_VAL;
  } else if (ec != std::errc() ||
             ptr != number_lexeme_.data() + number_lexeme_.size()) {
    return Error("unparsable number");
  }
  double_value_ = d;
  return Status::OK();
}

void JsonLexer::Unescape(std::string_view lexeme, std::string* out) {
  out->clear();
  out->reserve(lexeme.size());
  size_t i = 0;
  while (i < lexeme.size()) {
    char c = lexeme[i];
    if (c != '\\') {
      out->push_back(c);
      i++;
      continue;
    }
    char e = lexeme[i + 1];
    switch (e) {
      case '"': out->push_back('"'); i += 2; break;
      case '\\': out->push_back('\\'); i += 2; break;
      case '/': out->push_back('/'); i += 2; break;
      case 'b': out->push_back('\b'); i += 2; break;
      case 'f': out->push_back('\f'); i += 2; break;
      case 'n': out->push_back('\n'); i += 2; break;
      case 'r': out->push_back('\r'); i += 2; break;
      case 't': out->push_back('\t'); i += 2; break;
      case 'u': {
        i++;  // now at 'u'
        uint32_t cp = DecodeUnicodeEscape(lexeme, &i);
        AppendUtf8(out, cp);
        break;
      }
      default: out->push_back(e); i += 2; break;
    }
  }
}

size_t JsonLexer::UnescapedLength(std::string_view lexeme) {
  size_t len = 0;
  size_t i = 0;
  while (i < lexeme.size()) {
    if (lexeme[i] != '\\') {
      len++;
      i++;
      continue;
    }
    char e = lexeme[i + 1];
    if (e == 'u') {
      i++;
      uint32_t cp = DecodeUnicodeEscape(lexeme, &i);
      len += Utf8Length(cp);
    } else {
      len++;
      i += 2;
    }
  }
  return len;
}

}  // namespace jsontiles::json
