// Internal JSONB wire-format helpers shared by the two serializers.
//
// The streaming builder (jsonb.cc, node tree + two-pass write) and the
// direct emitter (ondemand.cc, single-pass tape) must produce bit-identical
// bytes for every value — the parser-differential tests are the gate, but
// the encoders below are the mechanism: each leaf encoding and each size
// computation exists exactly once, so the two paths cannot drift. Every
// Encode* writes exactly the number of bytes the matching *Size reports.
//
// This header is internal to src/json; the public format documentation
// lives at the top of jsonb.h.

#ifndef JSONTILES_JSON_JSONB_WIRE_H_
#define JSONTILES_JSON_JSONB_WIRE_H_

#include <bit>
#include <cstdint>
#include <cstring>
#include <string_view>

#include "json/float16.h"
#include "util/bit_util.h"
#include "util/decimal.h"

namespace jsontiles::json::wire {

constexpr uint8_t kTagNull = 0;
constexpr uint8_t kTagFalse = 1;
constexpr uint8_t kTagTrue = 2;
constexpr uint8_t kTagIntSmall = 3;
constexpr uint8_t kTagInt = 4;
constexpr uint8_t kTagFloat = 5;
constexpr uint8_t kTagString = 6;
constexpr uint8_t kTagNumeric = 7;
constexpr uint8_t kTagObject = 8;
constexpr uint8_t kTagArray = 9;

inline uint8_t Tag(const uint8_t* p) { return *p >> 4; }
inline uint8_t Imm(const uint8_t* p) { return *p & 0x0F; }

inline int OffsetWidth(uint8_t code) {
  return code == 0 ? 1 : code == 1 ? 2 : 4;
}
inline uint8_t OffsetWidthCode(int width) {
  return width == 1 ? 0 : width == 2 ? 1 : 2;
}
/// Narrowest offset width able to address `slots_size` bytes of slot area.
inline int OffsetWidthFor(uint64_t slots_size) {
  return slots_size <= 0xFF ? 1 : slots_size <= 0xFFFF ? 2 : 4;
}

// --- Leaf encodings --------------------------------------------------------

inline uint64_t BoolNullSize() { return 1; }
inline void EncodeNull(uint8_t* out) { *out = kTagNull << 4; }
inline void EncodeBool(uint8_t* out, bool v) {
  *out = static_cast<uint8_t>((v ? kTagTrue : kTagFalse) << 4);
}

inline uint64_t IntSize(int64_t v) {
  if (v >= 0 && v <= 15) return 1;
  uint64_t mag = v < 0 ? -static_cast<uint64_t>(v) : static_cast<uint64_t>(v);
  return 1 + static_cast<uint64_t>(bit_util::MinBytes(mag));
}
inline void EncodeInt(uint8_t* out, int64_t v) {
  if (v >= 0 && v <= 15) {
    *out = static_cast<uint8_t>(kTagIntSmall << 4 | v);
    return;
  }
  uint64_t mag = v < 0 ? -static_cast<uint64_t>(v) : static_cast<uint64_t>(v);
  int n = bit_util::MinBytes(mag);
  *out = static_cast<uint8_t>(kTagInt << 4 | (v < 0 ? 8 : 0) | (n - 1));
  bit_util::StoreLE(out + 1, mag, n);
}

/// Narrowest lossless storage width for a double: 2 (half), 4 or 8 bytes.
inline uint8_t FloatWidth(double d) {
  return IsLosslessHalf(d) ? 2 : IsLosslessSingle(d) ? 4 : 8;
}
inline void EncodeFloat(uint8_t* out, double d, uint8_t width) {
  *out = static_cast<uint8_t>(kTagFloat << 4 | width);
  switch (width) {
    case 2:
      bit_util::StoreU16(out + 1, FloatToHalf(static_cast<float>(d)));
      break;
    case 4:
      bit_util::StoreU32(out + 1, std::bit_cast<uint32_t>(static_cast<float>(d)));
      break;
    default:
      bit_util::StoreU64(out + 1, std::bit_cast<uint64_t>(d));
  }
}

inline uint64_t StringSize(size_t len) {
  if (len < 15) return 1 + static_cast<uint64_t>(len);
  return 1 + static_cast<uint64_t>(bit_util::VarintSize(len)) + len;
}
inline void EncodeString(uint8_t* out, std::string_view s) {
  const size_t len = s.size();
  if (len < 15) {
    *out = static_cast<uint8_t>(kTagString << 4 | len);
    std::memcpy(out + 1, s.data(), len);
    return;
  }
  *out = kTagString << 4 | 15;
  int n = bit_util::EncodeVarint(out + 1, len);
  std::memcpy(out + 1 + static_cast<size_t>(n), s.data(), len);
}

inline uint64_t NumericMagnitude(const Numeric& n) {
  return n.unscaled < 0 ? -static_cast<uint64_t>(n.unscaled)
                        : static_cast<uint64_t>(n.unscaled);
}
inline uint64_t NumericSize(const Numeric& n) {
  return 2 + static_cast<uint64_t>(bit_util::VarintSize(NumericMagnitude(n)));
}
inline void EncodeNumeric(uint8_t* out, const Numeric& n) {
  out[0] = kTagNumeric << 4;
  out[1] = static_cast<uint8_t>((n.unscaled < 0 ? 0x80 : 0) | n.scale);
  bit_util::EncodeVarint(out + 2, NumericMagnitude(n));
}

// --- Containers ------------------------------------------------------------

/// Bytes before the slot area: header byte, varint count, offset table.
inline uint64_t ContainerHeaderSize(uint32_t count, int ow) {
  return 1 + static_cast<uint64_t>(bit_util::VarintSize(count)) +
         static_cast<uint64_t>(count) * static_cast<uint64_t>(ow);
}
/// Writes header byte + varint count; returns the offset-table position.
inline uint8_t* EncodeContainerHeader(uint8_t* out, uint8_t tag, uint32_t count,
                                      int ow) {
  *out = static_cast<uint8_t>(tag << 4 | OffsetWidthCode(ow));
  return out + 1 + bit_util::EncodeVarint(out + 1, count);
}

}  // namespace jsontiles::json::wire

#endif  // JSONTILES_JSON_JSONB_WIRE_H_
