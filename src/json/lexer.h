// RFC 8259 tokenizer shared by the DOM parser and the two-pass JSONB
// transformation (§5.3).
//
// The lexer validates syntax (structure, escapes, number grammar) and exposes
// raw lexemes as views into the input so that pass 1 can compute sizes
// without materializing values.

#ifndef JSONTILES_JSON_LEXER_H_
#define JSONTILES_JSON_LEXER_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace jsontiles::json {

enum class Token : uint8_t {
  kObjectBegin,  // {
  kObjectEnd,    // }
  kArrayBegin,   // [
  kArrayEnd,     // ]
  kColon,
  kComma,
  kString,
  kNumber,
  kTrue,
  kFalse,
  kNull,
  kEnd,
};

class JsonLexer {
 public:
  explicit JsonLexer(std::string_view input) : input_(input) {}

  /// Advance to the next token. On kString, `string_lexeme()` holds the raw
  /// (still escaped) contents between the quotes; on kNumber,
  /// `number_lexeme()` holds the textual number and `number_is_int()` /
  /// `int_value()` / `double_value()` are set.
  Status Next(Token* token);

  std::string_view string_lexeme() const { return string_lexeme_; }
  bool string_has_escape() const { return string_has_escape_; }
  std::string_view number_lexeme() const { return number_lexeme_; }
  bool number_is_int() const { return number_is_int_; }
  int64_t int_value() const { return int_value_; }
  double double_value() const { return double_value_; }

  size_t position() const { return pos_; }
  void Reset() { pos_ = 0; }

  /// Decode an escaped JSON string lexeme into `out` (UTF-8). The lexeme must
  /// have been validated by the lexer.
  static void Unescape(std::string_view lexeme, std::string* out);

  /// Decoded length of a validated string lexeme without materializing it.
  static size_t UnescapedLength(std::string_view lexeme);

 private:
  Status LexString();
  Status LexNumber();
  Status Error(const std::string& message) const;

  std::string_view input_;
  size_t pos_ = 0;

  std::string_view string_lexeme_;
  bool string_has_escape_ = false;
  std::string_view number_lexeme_;
  bool number_is_int_ = false;
  int64_t int_value_ = 0;
  double double_value_ = 0;
};

}  // namespace jsontiles::json

#endif  // JSONTILES_JSON_LEXER_H_
