// JSONB: the binary JSON format of paper §5.
//
// Design goals (paper §5.1): fast lookups in objects and arrays, typed
// values, few cache misses. Objects store their (sorted) keys with an offset
// table, giving O(log n) key lookup via binary search; arrays give O(1)
// element access. Nested values are stored inline within their parent, so
// a whole document — or any nested value — is one contiguous byte range and
// forward iteration never chases pointers. Construction from JSON text uses
// the two-pass algorithm of §5.3: pass 1 validates and computes the exact
// size of every node; pass 2 writes into a single exact-size allocation.
//
// Wire format. Every value starts with a header byte `(tag << 4) | imm`:
//
//   tag  0 Null            imm unused
//   tag  1 False / 2 True  imm unused
//   tag  3 IntSmall        imm = value in [0, 15], no payload
//   tag  4 Int             imm = (sign << 3) | (nbytes - 1); magnitude LE
//   tag  5 Float           imm = byte width 2 / 4 / 8 (lossless downgrades)
//   tag  6 String          imm = length if < 15 else 15 + varint length;
//                          decoded UTF-8 bytes follow
//   tag  7 NumericString   sign/scale byte + varint magnitude (§5.2)
//   tag  8 Object          imm = offset width code (0→1B, 1→2B, 2→4B);
//                          varint count; count offsets (end of each slot,
//                          relative to slot area); slots, where each slot is
//                          [value][key bytes][u16 key length] and keys are
//                          sorted bytewise (Figure 6)
//   tag  9 Array           like Object without keys
//
// Round-trip: ToJsonText() reconstructs an equivalent document; key order
// and whitespace are normalized (§5, as in PostgreSQL's jsonb).

#ifndef JSONTILES_JSON_JSONB_H_
#define JSONTILES_JSON_JSONB_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "json/json_type.h"
#include "json/lexer.h"
#include "util/decimal.h"
#include "util/status.h"

namespace jsontiles::json {

/// Read-only view of one JSONB value inside a buffer. Cheap to copy.
class JsonbValue {
 public:
  explicit JsonbValue(const uint8_t* data) : p_(data) {}

  JsonType type() const;

  /// Raw pointer to the start of this value.
  const uint8_t* data() const { return p_; }

  /// Serialized size in bytes; any value can be sliced out as a standalone
  /// document.
  size_t Size() const;

  bool GetBool() const;
  int64_t GetInt() const;
  /// Value as double (works for Int, Float and NumericString).
  double GetDouble() const;
  /// String contents; only valid for kString (points into the buffer).
  std::string_view GetString() const;
  Numeric GetNumeric() const;

  /// Number of members / elements; only valid for kObject / kArray.
  size_t Count() const;

  /// O(log n) member lookup by binary search over the sorted keys.
  std::optional<JsonbValue> FindKey(std::string_view key) const;

  /// O(1) array element access; `i` must be < Count().
  JsonbValue ArrayElement(size_t i) const;

  /// Key of the i-th member (sorted order).
  std::string_view MemberKey(size_t i) const;
  /// Value of the i-th member (sorted order).
  JsonbValue MemberValue(size_t i) const;

  /// Serialize back to JSON text (keys in sorted order).
  void ToJsonText(std::string* out) const;
  std::string ToJsonText() const;

 private:
  // Decode object/array shape: offset width, count, positions.
  struct ContainerInfo {
    int offset_width;
    size_t count;
    size_t offsets_pos;  // relative to p_
    size_t slots_pos;    // relative to p_
  };
  ContainerInfo DecodeContainer() const;
  size_t SlotStart(const ContainerInfo& info, size_t i) const;
  size_t SlotEnd(const ContainerInfo& info, size_t i) const;

  const uint8_t* p_;
};

/// Transforms JSON text into JSONB. Reusable: internal scratch buffers keep
/// their capacity across Transform calls, which matters during bulk loading.
class JsonbBuilder {
 public:
  struct Options {
    /// §5.2: detect SQL Numerics hidden in strings ("19.99").
    bool detect_numeric_strings = true;
  };

  JsonbBuilder() = default;
  explicit JsonbBuilder(Options options) : options_(options) {}

  /// Maximum container nesting depth accepted by the parser (and enforced by
  /// ValidateJsonb on untrusted buffers).
  static constexpr int kMaxNesting = 256;

  /// Two-pass transformation (§5.3). On success `out` holds exactly one
  /// serialized document.
  Status Transform(std::string_view json_text, std::vector<uint8_t>* out);

 private:
  static constexpr uint32_t kInvalid = 0xFFFFFFFF;

  struct Node {
    JsonType type;
    uint32_t first_child = kInvalid;
    uint32_t next_sibling = kInvalid;
    uint32_t count = 0;          // children (objects: after dedup)
    uint32_t sorted_begin = 0;   // objects: span into sorted_children_
    uint64_t size = 0;           // serialized size of this value
    int64_t int_val = 0;
    double dbl_val = 0;
    Numeric num_val;
    std::string_view str;  // decoded string value
    std::string_view key;  // decoded member key (when parent is an object)
    uint8_t float_width = 8;
    uint8_t offset_width = 1;
  };

  Status ParseValue(JsonLexer& lexer, Token token, uint32_t* index, int depth);
  std::string_view DecodeString(const JsonLexer& lexer);
  void WriteValue(uint32_t index, uint8_t* out, size_t pos) const;

  void SetNumberIntNode(uint32_t index, int64_t v);
  void SetNumberFloatNode(uint32_t index, double d);
  void SetStringNode(uint32_t index, std::string_view decoded);
  void FinalizeObject(uint32_t index, std::vector<uint32_t>& children,
                      size_t begin);
  void FinalizeArray(uint32_t index, uint32_t count, uint64_t slots_size);
  std::string_view DecodeStringLexeme(std::string_view lexeme,
                                      bool has_escape);

  Options options_;
  std::vector<Node> nodes_;
  std::vector<uint32_t> sorted_children_;
  // Storage for unescaped strings. Nodes hold string_views into the elements,
  // so the container must never relocate them: a deque keeps existing
  // elements in place on push_back where a vector would move the std::string
  // objects (and with them any SSO-inlined bytes the views point at).
  std::deque<std::string> decoded_;
  size_t decoded_used_ = 0;
};

/// Convenience: one-shot transformation.
Result<std::vector<uint8_t>> JsonbFromText(std::string_view json_text);

/// Structural validation of an untrusted JSONB buffer. Every header, length,
/// offset and nested value is bounds-checked without reading past
/// `data + size`; container offsets must be strictly increasing, object keys
/// sorted, nesting bounded, and the root value must occupy exactly `size`
/// bytes (so no strict prefix of a valid document validates). The JsonbValue
/// accessors assume trusted input; run this first on bytes that arrive from
/// disk or the network.
Status ValidateJsonb(const uint8_t* data, size_t size);

// --- Batched navigation ----------------------------------------------------

/// One pre-decoded navigation step for LookupSteps. `key` is a view into the
/// caller's encoded-path storage, which must outlive the steps.
struct PathStep {
  bool is_index = false;
  std::string_view key;  // object member to FindKey (is_index == false)
  uint32_t index = 0;    // array slot (is_index == true)
};

/// Navigate `root` along pre-decoded steps. Returns nullopt when any step is
/// missing (PostgreSQL semantics: absent key => SQL NULL). Same traversal as
/// tiles::LookupPath, but the path is decoded once up front — batch accessors
/// extracting one path from many documents skip the per-document varint
/// decode entirely.
std::optional<JsonbValue> LookupSteps(JsonbValue root, const PathStep* steps,
                                      size_t count);

// --- Programmatic assembly -------------------------------------------------
// Because every JSONB value is a self-contained byte range, new documents can
// be assembled from existing slices without reparsing (used by
// high-cardinality array extraction, §3.5, to build side-table documents).

/// One member for AssembleObject: key plus serialized JSONB value bytes.
struct AssembleMember {
  std::string_view key;
  const uint8_t* value_data;
  size_t value_size;
};

/// Build an object from members (keys are sorted; duplicate keys must not be
/// passed).
std::vector<uint8_t> AssembleObject(std::vector<AssembleMember> members);

/// Serialize a standalone integer / string value.
std::vector<uint8_t> MakeJsonbInt(int64_t value);
std::vector<uint8_t> MakeJsonbString(std::string_view value);

}  // namespace jsontiles::json

#endif  // JSONTILES_JSON_JSONB_H_
