#include "json/dom.h"

#include <charconv>
#include <cstdio>

#include "json/lexer.h"

namespace jsontiles::json {

namespace {

constexpr int kMaxNesting = 256;

Status ParseValue(JsonLexer& lexer, Token token, JsonValue* out, int depth) {
  if (depth > kMaxNesting) return Status::ParseError("nesting too deep");
  switch (token) {
    case Token::kNull:
      *out = JsonValue::Null();
      return Status::OK();
    case Token::kTrue:
      *out = JsonValue::Bool(true);
      return Status::OK();
    case Token::kFalse:
      *out = JsonValue::Bool(false);
      return Status::OK();
    case Token::kNumber:
      if (lexer.number_is_int()) {
        *out = JsonValue::Int(lexer.int_value());
      } else {
        *out = JsonValue::Float(lexer.double_value());
      }
      return Status::OK();
    case Token::kString: {
      if (lexer.string_has_escape()) {
        std::string decoded;
        JsonLexer::Unescape(lexer.string_lexeme(), &decoded);
        *out = JsonValue::String(std::move(decoded));
      } else {
        *out = JsonValue::String(std::string(lexer.string_lexeme()));
      }
      return Status::OK();
    }
    case Token::kObjectBegin: {
      *out = JsonValue::Object();
      Token t;
      JSONTILES_RETURN_NOT_OK(lexer.Next(&t));
      if (t == Token::kObjectEnd) return Status::OK();
      while (true) {
        if (t != Token::kString) return Status::ParseError("expected object key");
        std::string key;
        if (lexer.string_has_escape()) {
          JsonLexer::Unescape(lexer.string_lexeme(), &key);
        } else {
          key.assign(lexer.string_lexeme());
        }
        JSONTILES_RETURN_NOT_OK(lexer.Next(&t));
        if (t != Token::kColon) return Status::ParseError("expected ':'");
        JSONTILES_RETURN_NOT_OK(lexer.Next(&t));
        JsonValue child;
        JSONTILES_RETURN_NOT_OK(ParseValue(lexer, t, &child, depth + 1));
        out->Add(std::move(key), std::move(child));
        JSONTILES_RETURN_NOT_OK(lexer.Next(&t));
        if (t == Token::kObjectEnd) return Status::OK();
        if (t != Token::kComma) return Status::ParseError("expected ',' or '}'");
        JSONTILES_RETURN_NOT_OK(lexer.Next(&t));
      }
    }
    case Token::kArrayBegin: {
      *out = JsonValue::Array();
      Token t;
      JSONTILES_RETURN_NOT_OK(lexer.Next(&t));
      if (t == Token::kArrayEnd) return Status::OK();
      while (true) {
        JsonValue child;
        JSONTILES_RETURN_NOT_OK(ParseValue(lexer, t, &child, depth + 1));
        out->Append(std::move(child));
        JSONTILES_RETURN_NOT_OK(lexer.Next(&t));
        if (t == Token::kArrayEnd) return Status::OK();
        if (t != Token::kComma) return Status::ParseError("expected ',' or ']'");
        JSONTILES_RETURN_NOT_OK(lexer.Next(&t));
      }
    }
    default:
      return Status::ParseError("unexpected token");
  }
}

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) {
  JsonLexer lexer(text);
  Token token;
  Status st = lexer.Next(&token);
  if (!st.ok()) return st;
  if (token == Token::kEnd) return Status::ParseError("empty input");
  JsonValue value;
  st = ParseValue(lexer, token, &value, 0);
  if (!st.ok()) return st;
  st = lexer.Next(&token);
  if (!st.ok()) return st;
  if (token != Token::kEnd) return Status::ParseError("trailing content");
  return value;
}

void EscapeJsonString(std::string_view s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\b': out->append("\\b"); break;
      case '\f': out->append("\\f"); break;
      case '\n': out->append("\\n"); break;
      case '\r': out->append("\\r"); break;
      case '\t': out->append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
}

void FormatDouble(double d, std::string* out) {
  char buf[32];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), d);
  (void)ec;
  out->append(buf, ptr);
}

void WriteJson(const JsonValue& value, std::string* out) {
  switch (value.type()) {
    case JsonType::kNull:
      out->append("null");
      break;
    case JsonType::kBool:
      out->append(value.bool_value() ? "true" : "false");
      break;
    case JsonType::kInt:
      out->append(std::to_string(value.int_value()));
      break;
    case JsonType::kFloat:
      FormatDouble(value.double_value(), out);
      break;
    case JsonType::kString:
    case JsonType::kNumericString:
      out->push_back('"');
      EscapeJsonString(value.string_value(), out);
      out->push_back('"');
      break;
    case JsonType::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [k, v] : value.members()) {
        if (!first) out->push_back(',');
        first = false;
        out->push_back('"');
        EscapeJsonString(k, out);
        out->append("\":");
        WriteJson(v, out);
      }
      out->push_back('}');
      break;
    }
    case JsonType::kArray: {
      out->push_back('[');
      bool first = true;
      for (const auto& e : value.elements()) {
        if (!first) out->push_back(',');
        first = false;
        WriteJson(e, out);
      }
      out->push_back(']');
      break;
    }
  }
}

std::string WriteJson(const JsonValue& value) {
  std::string out;
  WriteJson(value, &out);
  return out;
}

}  // namespace jsontiles::json
