// Stage-1 structural scan (see structural_index.h). The input is processed in
// 64-byte blocks; each block becomes four 64-bit classification masks
// (backslash, quote, structural operator, whitespace) and pure bit arithmetic
// turns them into the index mask:
//
//   escaped   = characters preceded by an odd-length backslash run (the
//               carry-propagating algorithm of simdjson stage 1)
//   quote     = raw quotes & ~escaped
//   in_string = prefix_xor(quote) ^ carry   (opening quote inside, closing
//                                            quote outside)
//   pot_start = first character of every non-quote scalar run
//   index     = ((op | pot_start) & ~in_string) | quote
//
// The scalar tier evaluates the same definitions one character at a time and
// is the reference the vector tiers must match bit for bit.

#include "json/structural_index.h"

#include <cstring>

#include "exec/simd.h"

#if defined(JSONTILES_SIMD_ENABLED) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define JT_SIDX_HAVE_X86 1
#include <immintrin.h>
#else
#define JT_SIDX_HAVE_X86 0
#endif

namespace jsontiles::json {

namespace {

// --------------------------------------------------------------------------
// Scalar reference tier — defines the exact semantics of the scan.
// --------------------------------------------------------------------------

inline bool IsOp(unsigned char c) {
  return c == '{' || c == '}' || c == '[' || c == ']' || c == ':' || c == ',';
}
inline bool IsWs(unsigned char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

Status ScanScalar(std::string_view input, StructuralIndex* index) {
  std::vector<uint32_t>* positions = &index->positions;
  positions->clear();
  const size_t n = input.size();
  const size_t words = n / 64 + 1;
  if (index->problems.size() < words) index->problems.resize(words);
  std::memset(index->problems.data(), 0, words * sizeof(uint64_t));
  bool in_string = false;
  bool escaped = false;   // the *next* character is escaped
  bool prev_nqs = false;  // previous character was a non-quote scalar char
  bool clean = true;      // no backslash / control byte inside a string
  for (size_t i = 0; i < n; i++) {
    const unsigned char c = static_cast<unsigned char>(input[i]);
    const bool is_escaped = escaped;
    escaped = (c == '\\') && !is_escaped;
    const bool real_quote = (c == '"') && !is_escaped;
    if (real_quote) in_string = !in_string;
    const bool is_op = IsOp(c);
    const bool is_ws = IsWs(c);
    const bool nqs = !is_op && !is_ws && !real_quote;
    if (real_quote || (!in_string && (is_op || (nqs && !prev_nqs)))) {
      positions->push_back(static_cast<uint32_t>(i));
    }
    if (in_string && (c == '\\' || c < 0x20)) {
      clean = false;
      index->problems[i / 64] |= 1ULL << (i % 64);
    }
    prev_nqs = nqs;
  }
  index->count = positions->size();
  if (in_string) return Status::ParseError("unterminated string");
  index->clean_strings = clean;
  return Status::OK();
}

// --------------------------------------------------------------------------
// Block machinery shared by the vector tiers (plain 64-bit arithmetic).
// --------------------------------------------------------------------------

struct BlockMasks {
  uint64_t backslash = 0;
  uint64_t quote = 0;  // raw '"' characters, escaped or not
  uint64_t op = 0;
  uint64_t ws = 0;
  uint64_t ctrl = 0;  // bytes < 0x20
};

struct ScanState {
  uint64_t prev_escaped = 0;    // 0 or 1: carry into bit 0 of the next block
  uint64_t prev_in_string = 0;  // 0 or ~0: string state at the block boundary
  uint64_t prev_nqs = 0;        // 0 or 1: last char was a non-quote scalar
  uint64_t problems = 0;        // backslash/control bits seen inside strings
};

// Characters preceded by an unescaped backslash, i.e. by an odd-length
// backslash run. Branchless odd/even run tracking with a carry, exactly the
// simdjson stage-1 algorithm.
__attribute__((always_inline)) inline uint64_t FindEscaped(uint64_t backslash, uint64_t* prev_escaped) {
  backslash &= ~*prev_escaped;
  const uint64_t follows_escape = (backslash << 1) | *prev_escaped;
  constexpr uint64_t kEvenBits = 0x5555555555555555ULL;
  const uint64_t odd_sequence_starts = backslash & ~kEvenBits & ~follows_escape;
  uint64_t sequences_starting_on_even_bits;
  *prev_escaped = __builtin_add_overflow(odd_sequence_starts, backslash,
                                         &sequences_starting_on_even_bits)
                      ? 1
                      : 0;
  const uint64_t invert_mask = sequences_starting_on_even_bits << 1;
  return (kEvenBits ^ invert_mask) & follows_escape;
}

// Bit i of the result = parity of set bits at positions <= i (so a string's
// opening quote lands inside, its closing quote outside).
__attribute__((always_inline)) inline uint64_t PrefixXor(uint64_t x) {
  x ^= x << 1;
  x ^= x << 2;
  x ^= x << 4;
  x ^= x << 8;
  x ^= x << 16;
  x ^= x << 32;
  return x;
}

// ctz that tolerates 0 (the unconditional extraction below may call it on an
// exhausted mask; the resulting garbage entry lands beyond the final count).
__attribute__((always_inline)) inline uint32_t CtzPad(uint64_t b) {
  return static_cast<uint32_t>(__builtin_ctzll(b | (1ULL << 63)));
}

// `out` must have room for the set bits of the block rounded up to a multiple
// of 8: positions are extracted eight at a time with no per-bit branch (the
// simdjson stage-1 flattening), which is what keeps dense documents — every
// other byte structural — from serializing the scan on a mispredicted loop.
__attribute__((always_inline)) inline void ProcessBlock(const BlockMasks& m, uint64_t valid, uint32_t base,
                         ScanState* st, uint32_t* out, size_t* count,
                         uint64_t* problem_word) {
  const uint64_t escaped = FindEscaped(m.backslash, &st->prev_escaped);
  const uint64_t quote = m.quote & ~escaped;
  const uint64_t in_string = PrefixXor(quote) ^ st->prev_in_string;
  st->prev_in_string =
      static_cast<uint64_t>(static_cast<int64_t>(in_string) >> 63);
  const uint64_t nqs = ~(m.op | m.ws) & ~quote;
  const uint64_t follows_nqs = (nqs << 1) | st->prev_nqs;
  st->prev_nqs = nqs >> 63;
  const uint64_t problems = (m.backslash | m.ctrl) & in_string & valid;
  *problem_word = problems;
  st->problems |= problems;
  uint64_t index =
      ((((m.op | (nqs & ~follows_nqs)) & ~in_string) | quote)) & valid;
  uint32_t* cursor = out + *count;
  *count += static_cast<size_t>(__builtin_popcountll(index));
  while (index != 0) {
    cursor[0] = base + CtzPad(index); index &= index - 1;
    cursor[1] = base + CtzPad(index); index &= index - 1;
    cursor[2] = base + CtzPad(index); index &= index - 1;
    cursor[3] = base + CtzPad(index); index &= index - 1;
    cursor[4] = base + CtzPad(index); index &= index - 1;
    cursor[5] = base + CtzPad(index); index &= index - 1;
    cursor[6] = base + CtzPad(index); index &= index - 1;
    cursor[7] = base + CtzPad(index); index &= index - 1;
    cursor += 8;
  }
}

#if JT_SIDX_HAVE_X86

// --------------------------------------------------------------------------
// vec128 tier: SSE2 (baseline x86-64, no target attribute needed).
// --------------------------------------------------------------------------

__attribute__((always_inline)) inline void ClassifySse2(const uint8_t* p, BlockMasks* m) {
  m->backslash = m->quote = m->op = m->ws = m->ctrl = 0;
  for (int k = 0; k < 4; k++) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 16 * k));
    // c | 0x20 folds '[' onto '{' and ']' onto '}' (and nothing else onto
    // either), halving the operator compares. (The avx2 tier goes further
    // with a pshufb nibble LUT; this tier stays within baseline SSE2.)
    const __m128i folded = _mm_or_si128(v, _mm_set1_epi8(0x20));
    const __m128i opv = _mm_or_si128(
        _mm_or_si128(_mm_cmpeq_epi8(folded, _mm_set1_epi8('{')),
                     _mm_cmpeq_epi8(folded, _mm_set1_epi8('}'))),
        _mm_or_si128(_mm_cmpeq_epi8(v, _mm_set1_epi8(':')),
                     _mm_cmpeq_epi8(v, _mm_set1_epi8(','))));
    const __m128i wsv = _mm_or_si128(
        _mm_or_si128(_mm_cmpeq_epi8(v, _mm_set1_epi8(' ')),
                     _mm_cmpeq_epi8(v, _mm_set1_epi8('\t'))),
        _mm_or_si128(_mm_cmpeq_epi8(v, _mm_set1_epi8('\n')),
                     _mm_cmpeq_epi8(v, _mm_set1_epi8('\r'))));
    const int shift = 16 * k;
    m->backslash |= static_cast<uint64_t>(static_cast<uint32_t>(
                        _mm_movemask_epi8(
                            _mm_cmpeq_epi8(v, _mm_set1_epi8('\\')))))
                    << shift;
    m->quote |= static_cast<uint64_t>(static_cast<uint32_t>(_mm_movemask_epi8(
                    _mm_cmpeq_epi8(v, _mm_set1_epi8('"')))))
                << shift;
    m->op |= static_cast<uint64_t>(
                 static_cast<uint32_t>(_mm_movemask_epi8(opv)))
             << shift;
    m->ws |= static_cast<uint64_t>(
                 static_cast<uint32_t>(_mm_movemask_epi8(wsv)))
             << shift;
    // v <= 0x1F, unsigned (cmplt is signed and would catch UTF-8 bytes).
    m->ctrl |= static_cast<uint64_t>(static_cast<uint32_t>(_mm_movemask_epi8(
                   _mm_cmpeq_epi8(_mm_min_epu8(v, _mm_set1_epi8(0x1F)), v))))
               << shift;
  }
}

Status ScanSse2(std::string_view input, StructuralIndex* index) {
  const uint8_t* data = reinterpret_cast<const uint8_t*>(input.data());
  const size_t n = input.size();
  // Worst case one position per byte, plus slack for the 8-wide extraction
  // overshoot. Grow-only: the buffer is never shrunk, so a reused index pays
  // the value-initializing resize once at its high-water mark.
  if (index->positions.size() < n + 8) index->positions.resize(n + 8);
  const size_t words = n / 64 + 1;
  if (index->problems.size() < words) index->problems.resize(words);
  uint32_t* out = index->positions.data();
  uint64_t* problems = index->problems.data();
  size_t count = 0;
  ScanState st;
  BlockMasks m;
  size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    ClassifySse2(data + i, &m);
    ProcessBlock(m, ~0ULL, static_cast<uint32_t>(i), &st, out, &count,
                 problems + i / 64);
  }
  if (i < n) {
    // Zero padding classifies as scalar characters; the valid mask keeps any
    // bits they produce out of the index, and zeros never touch the
    // escape/string carries.
    uint8_t tail[64] = {0};
    std::memcpy(tail, data + i, n - i);
    ClassifySse2(tail, &m);
    ProcessBlock(m, (1ULL << (n - i)) - 1, static_cast<uint32_t>(i), &st, out,
                 &count, problems + i / 64);
  }
  index->count = count;
  if (st.prev_in_string != 0) return Status::ParseError("unterminated string");
  index->clean_strings = st.problems == 0;
  return Status::OK();
}

// --------------------------------------------------------------------------
// avx2 tier: function multi-versioning, runtime-selected.
// --------------------------------------------------------------------------

// Nibble-LUT operator/whitespace classification (the simdjson stage-1
// trick): vpshufb looks each byte's LOW nibble up in a 16-entry table
// holding the one candidate character with that low nibble; a byte is in
// the class iff it equals its candidate. Folding with | 0x20 first maps
// '[' onto '{' and ']' onto '}' (and nothing else onto an operator), so one
// table covers all six operators: ','=0x2C -> C, ':'=0x3A -> A,
// '{'=0x7B -> B, '}'=0x7D -> D. Whitespace candidates: ' '=0x20 -> 0,
// '\t'=0x09 -> 9, '\n'=0x0A -> A, '\r'=0x0D -> D; the filler values in the
// unused entries (odd constants, following simdjson) equal no input byte
// with that low nibble, and vpshufb zeroes the lane outright for bytes with
// the high bit set (UTF-8 continuation/lead bytes). Two shuffles and two
// compares replace the eight compares of the naive classifier —
// classification dominates the per-byte scan work, so this buys a sizable
// chunk of stage-1 throughput.
__attribute__((target("avx2"), always_inline)) inline void ClassifyAvx2(const uint8_t* p,
                                                         BlockMasks* m) {
  m->backslash = m->quote = m->op = m->ws = m->ctrl = 0;
  const __m256i op_lut = _mm256_setr_epi8(
      0, 0, 0, 0, 0, 0, 0, 0, 0, 0, ':', '{', ',', '}', 0, 0,
      0, 0, 0, 0, 0, 0, 0, 0, 0, 0, ':', '{', ',', '}', 0, 0);
  const __m256i ws_lut = _mm256_setr_epi8(
      ' ', 100, 100, 100, 17, 100, 113, 2, 100, '\t', '\n', 112, 100, '\r',
      100, 100,
      ' ', 100, 100, 100, 17, 100, 113, 2, 100, '\t', '\n', 112, 100, '\r',
      100, 100);
  for (int k = 0; k < 2; k++) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + 32 * k));
    const __m256i folded = _mm256_or_si256(v, _mm256_set1_epi8(0x20));
    const __m256i opv =
        _mm256_cmpeq_epi8(folded, _mm256_shuffle_epi8(op_lut, v));
    const __m256i wsv = _mm256_cmpeq_epi8(v, _mm256_shuffle_epi8(ws_lut, v));
    const int shift = 32 * k;
    m->backslash |= static_cast<uint64_t>(static_cast<uint32_t>(
                        _mm256_movemask_epi8(
                            _mm256_cmpeq_epi8(v, _mm256_set1_epi8('\\')))))
                    << shift;
    m->quote |=
        static_cast<uint64_t>(static_cast<uint32_t>(_mm256_movemask_epi8(
            _mm256_cmpeq_epi8(v, _mm256_set1_epi8('"')))))
        << shift;
    m->op |= static_cast<uint64_t>(
                 static_cast<uint32_t>(_mm256_movemask_epi8(opv)))
             << shift;
    m->ws |= static_cast<uint64_t>(
                 static_cast<uint32_t>(_mm256_movemask_epi8(wsv)))
             << shift;
    m->ctrl |=
        static_cast<uint64_t>(static_cast<uint32_t>(_mm256_movemask_epi8(
            _mm256_cmpeq_epi8(_mm256_min_epu8(v, _mm256_set1_epi8(0x1F)), v))))
        << shift;
  }
  // The fold admits exactly two shadows — 0x1A | 0x20 == ':' and
  // 0x0C | 0x20 == ',' — both control bytes; strip them so this tier stays
  // bit-identical to the scalar classifier (which calls them scalar chars).
  m->op &= ~m->ctrl;
}

__attribute__((target("avx2"))) Status ScanAvx2(std::string_view input,
                                                StructuralIndex* index) {
  const uint8_t* data = reinterpret_cast<const uint8_t*>(input.data());
  const size_t n = input.size();
  if (index->positions.size() < n + 8) index->positions.resize(n + 8);
  const size_t words = n / 64 + 1;
  if (index->problems.size() < words) index->problems.resize(words);
  uint32_t* out = index->positions.data();
  uint64_t* problems = index->problems.data();
  size_t count = 0;
  ScanState st;
  BlockMasks m;
  size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    ClassifyAvx2(data + i, &m);
    ProcessBlock(m, ~0ULL, static_cast<uint32_t>(i), &st, out, &count,
                 problems + i / 64);
  }
  if (i < n) {
    uint8_t tail[64] = {0};
    std::memcpy(tail, data + i, n - i);
    ClassifyAvx2(tail, &m);
    ProcessBlock(m, (1ULL << (n - i)) - 1, static_cast<uint32_t>(i), &st, out,
                 &count, problems + i / 64);
  }
  index->count = count;
  if (st.prev_in_string != 0) return Status::ParseError("unterminated string");
  index->clean_strings = st.problems == 0;
  return Status::OK();
}

#endif  // JT_SIDX_HAVE_X86

using ScanFn = Status (*)(std::string_view, StructuralIndex*);

ScanFn PickVectorScan() {
#if JT_SIDX_HAVE_X86
  if (__builtin_cpu_supports("avx2")) return ScanAvx2;
  return ScanSse2;
#else
  return ScanScalar;
#endif
}

ScanFn VectorScan() {
  static const ScanFn fn = PickVectorScan();
  return fn;
}

}  // namespace

Status BuildStructuralIndex(std::string_view input, StructuralIndex* index) {
  index->count = 0;
  index->clean_strings = false;
  if (input.size() > 0xFFFFFFFFull) {
    return Status::OutOfRange("input too large for structural index");
  }
  const ScanFn fn = exec::simd::UseSimd() ? VectorScan() : ScanScalar;
  return fn(input, index);
}

const char* StructuralIndexIsa() {
  if (!exec::simd::UseSimd()) return "scalar";
#if JT_SIDX_HAVE_X86
  return __builtin_cpu_supports("avx2") ? "avx2" : "vec128";
#else
  return "scalar";
#endif
}

}  // namespace jsontiles::json
