#include "json/bson.h"

#include <bit>
#include <cstring>

#include "util/bit_util.h"

namespace jsontiles::json::bson {

namespace {

constexpr uint8_t kTypeDouble = 0x01;
constexpr uint8_t kTypeString = 0x02;
constexpr uint8_t kTypeDocument = 0x03;
constexpr uint8_t kTypeArray = 0x04;
constexpr uint8_t kTypeBool = 0x08;
constexpr uint8_t kTypeNull = 0x0A;
constexpr uint8_t kTypeInt64 = 0x12;

void EncodeValue(const JsonValue& value, std::vector<uint8_t>& out);

void AppendInt32(std::vector<uint8_t>& out, uint32_t v) {
  size_t pos = out.size();
  out.resize(pos + 4);
  bit_util::StoreU32(out.data() + pos, v);
}

void AppendInt64(std::vector<uint8_t>& out, uint64_t v) {
  size_t pos = out.size();
  out.resize(pos + 8);
  bit_util::StoreU64(out.data() + pos, v);
}

void AppendCString(std::vector<uint8_t>& out, std::string_view s) {
  out.insert(out.end(), s.begin(), s.end());
  out.push_back(0);
}

uint8_t TypeOf(const JsonValue& v) {
  switch (v.type()) {
    case JsonType::kNull: return kTypeNull;
    case JsonType::kBool: return kTypeBool;
    case JsonType::kInt: return kTypeInt64;
    case JsonType::kFloat: return kTypeDouble;
    case JsonType::kString:
    case JsonType::kNumericString: return kTypeString;
    case JsonType::kObject: return kTypeDocument;
    case JsonType::kArray: return kTypeArray;
  }
  return kTypeNull;
}

void EncodeElement(std::string_view key, const JsonValue& value,
                   std::vector<uint8_t>& out) {
  out.push_back(TypeOf(value));
  AppendCString(out, key);
  EncodeValue(value, out);
}

void EncodeDocument(const JsonValue& value, std::vector<uint8_t>& out) {
  size_t size_pos = out.size();
  AppendInt32(out, 0);  // patched below
  if (value.type() == JsonType::kObject) {
    for (const auto& [k, v] : value.members()) EncodeElement(k, v, out);
  } else {
    for (size_t i = 0; i < value.elements().size(); i++) {
      EncodeElement(std::to_string(i), value.elements()[i], out);
    }
  }
  out.push_back(0);
  bit_util::StoreU32(out.data() + size_pos,
                     static_cast<uint32_t>(out.size() - size_pos));
}

void EncodeValue(const JsonValue& value, std::vector<uint8_t>& out) {
  switch (value.type()) {
    case JsonType::kNull:
      break;  // no payload
    case JsonType::kBool:
      out.push_back(value.bool_value() ? 1 : 0);
      break;
    case JsonType::kInt:
      AppendInt64(out, static_cast<uint64_t>(value.int_value()));
      break;
    case JsonType::kFloat: {
      AppendInt64(out, std::bit_cast<uint64_t>(value.double_value()));
      break;
    }
    case JsonType::kString:
    case JsonType::kNumericString:
      AppendInt32(out, static_cast<uint32_t>(value.string_value().size() + 1));
      AppendCString(out, value.string_value());
      break;
    case JsonType::kObject:
    case JsonType::kArray:
      EncodeDocument(value, out);
      break;
  }
}

// Size of one element payload starting at p (bounded by end); 0 on error.
size_t PayloadSize(uint8_t type, const uint8_t* p, const uint8_t* end) {
  switch (type) {
    case kTypeNull: return 0;
    case kTypeBool: return 1;
    case kTypeDouble:
    case kTypeInt64: return 8;
    case kTypeString: {
      if (p + 4 > end) return 0;
      return 4 + bit_util::LoadU32(p);
    }
    case kTypeDocument:
    case kTypeArray: {
      if (p + 4 > end) return 0;
      return bit_util::LoadU32(p);
    }
    default: return 0;
  }
}

Result<JsonValue> DecodeDocument(const uint8_t* data, size_t size, bool as_array);

Result<JsonValue> DecodeValue(uint8_t type, const uint8_t* p, size_t size) {
  switch (type) {
    case kTypeNull: return JsonValue::Null();
    case kTypeBool: return JsonValue::Bool(p[0] != 0);
    case kTypeInt64:
      return JsonValue::Int(static_cast<int64_t>(bit_util::LoadU64(p)));
    case kTypeDouble:
      return JsonValue::Float(std::bit_cast<double>(bit_util::LoadU64(p)));
    case kTypeString: {
      uint32_t len = bit_util::LoadU32(p);
      if (len == 0 || 4 + len > size) return Status::ParseError("bad string");
      return JsonValue::String(
          std::string(reinterpret_cast<const char*>(p + 4), len - 1));
    }
    case kTypeDocument: return DecodeDocument(p, size, /*as_array=*/false);
    case kTypeArray: return DecodeDocument(p, size, /*as_array=*/true);
    default: return Status::ParseError("unknown BSON type");
  }
}

Result<JsonValue> DecodeDocument(const uint8_t* data, size_t size, bool as_array) {
  if (size < 5) return Status::ParseError("document too small");
  uint32_t total = bit_util::LoadU32(data);
  if (total > size) return Status::ParseError("document size exceeds buffer");
  const uint8_t* p = data + 4;
  const uint8_t* end = data + total - 1;  // trailing 0x00
  JsonValue out = as_array ? JsonValue::Array() : JsonValue::Object();
  while (p < end) {
    uint8_t type = *p++;
    const uint8_t* key_begin = p;
    while (p < end && *p != 0) p++;
    if (p >= end) return Status::ParseError("unterminated key");
    std::string key(reinterpret_cast<const char*>(key_begin),
                    static_cast<size_t>(p - key_begin));
    p++;  // skip nul
    size_t payload = PayloadSize(type, p, end);
    if (p + payload > end && !(type == kTypeNull && p <= end)) {
      return Status::ParseError("element exceeds document");
    }
    auto value = DecodeValue(type, p, payload);
    if (!value.ok()) return value.status();
    if (as_array) {
      out.Append(value.MoveValueOrDie());
    } else {
      out.Add(std::move(key), value.MoveValueOrDie());
    }
    p += payload;
  }
  return out;
}

}  // namespace

Status Encode(const JsonValue& root, std::vector<uint8_t>* out) {
  if (root.type() != JsonType::kObject && root.type() != JsonType::kArray) {
    return Status::InvalidArgument("BSON root must be a document or array");
  }
  out->clear();
  EncodeDocument(root, *out);
  return Status::OK();
}

Result<JsonValue> Decode(const uint8_t* data, size_t size) {
  return DecodeDocument(data, size, /*as_array=*/false);
}

bool FindField(const uint8_t* doc, size_t doc_size, std::string_view key,
               uint8_t* type, const uint8_t** payload, size_t* payload_size) {
  if (doc_size < 5) return false;
  uint32_t total = bit_util::LoadU32(doc);
  if (total > doc_size) return false;
  const uint8_t* p = doc + 4;
  const uint8_t* end = doc + total - 1;
  while (p < end) {
    uint8_t t = *p++;
    const uint8_t* key_begin = p;
    while (p < end && *p != 0) p++;
    if (p >= end) return false;
    std::string_view k(reinterpret_cast<const char*>(key_begin),
                       static_cast<size_t>(p - key_begin));
    p++;
    size_t size = PayloadSize(t, p, end);
    if (p + size > end) return false;
    if (k == key) {
      *type = t;
      *payload = p;
      *payload_size = size;
      return true;
    }
    p += size;
  }
  return false;
}

Result<JsonValue> DecodeElement(uint8_t type, const uint8_t* payload,
                                size_t payload_size) {
  return DecodeValue(type, payload, payload_size);
}

}  // namespace jsontiles::json::bson
