// IEEE 754 binary16 (half-float) conversion helpers.
//
// The JSONB format stores doubles at the smallest precision level whose
// conversion back to double is lossless (paper §5.1): half (2 bytes), single
// (4 bytes) or double (8 bytes).

#ifndef JSONTILES_JSON_FLOAT16_H_
#define JSONTILES_JSON_FLOAT16_H_

#include <bit>
#include <cstdint>
#include <cstring>

namespace jsontiles::json {

/// Convert binary16 bits to float.
inline float HalfToFloat(uint16_t h) {
  uint32_t sign = static_cast<uint32_t>(h & 0x8000) << 16;
  uint32_t exp = (h >> 10) & 0x1F;
  uint32_t mant = h & 0x3FF;
  uint32_t bits;
  if (exp == 0) {
    if (mant == 0) {
      bits = sign;  // signed zero
    } else {
      // Subnormal half: normalize.
      int shift = 0;
      while ((mant & 0x400) == 0) {
        mant <<= 1;
        shift++;
      }
      mant &= 0x3FF;
      bits = sign | ((127 - 15 - shift + 1) << 23) | (mant << 13);
    }
  } else if (exp == 31) {
    bits = sign | 0x7F800000 | (mant << 13);  // inf / nan
  } else {
    bits = sign | ((exp - 15 + 127) << 23) | (mant << 13);
  }
  return std::bit_cast<float>(bits);
}

/// Convert float to binary16 bits with round-to-nearest-even; conversions
/// that overflow become inf (callers check losslessness separately).
inline uint16_t FloatToHalf(float f) {
  uint32_t bits = std::bit_cast<uint32_t>(f);
  uint16_t sign = static_cast<uint16_t>((bits >> 16) & 0x8000);
  int32_t exp = static_cast<int32_t>((bits >> 23) & 0xFF) - 127 + 15;
  uint32_t mant = bits & 0x7FFFFF;
  if (((bits >> 23) & 0xFF) == 0xFF) {
    // Inf / NaN.
    return static_cast<uint16_t>(sign | 0x7C00 | (mant ? 0x200 : 0));
  }
  if (exp >= 31) return static_cast<uint16_t>(sign | 0x7C00);  // overflow -> inf
  if (exp <= 0) {
    // Subnormal or zero.
    if (exp < -10) return sign;
    mant |= 0x800000;
    int shift = 14 - exp;
    uint32_t sub = mant >> shift;
    // Round to nearest even.
    uint32_t rem = mant & ((1u << shift) - 1);
    uint32_t half = 1u << (shift - 1);
    if (rem > half || (rem == half && (sub & 1))) sub++;
    return static_cast<uint16_t>(sign | sub);
  }
  uint16_t out =
      static_cast<uint16_t>(sign | (exp << 10) | (mant >> 13));
  uint32_t rem = mant & 0x1FFF;
  if (rem > 0x1000 || (rem == 0x1000 && (out & 1))) out++;
  return out;
}

/// True when `d` survives a round trip through binary16.
inline bool IsLosslessHalf(double d) {
  float f = static_cast<float>(d);
  if (static_cast<double>(f) != d) return false;
  uint16_t h = FloatToHalf(f);
  float back = HalfToFloat(h);
  return std::bit_cast<uint32_t>(back) == std::bit_cast<uint32_t>(f);
}

/// True when `d` survives a round trip through binary32.
inline bool IsLosslessSingle(double d) {
  float f = static_cast<float>(d);
  return static_cast<double>(f) == d;
}

}  // namespace jsontiles::json

#endif  // JSONTILES_JSON_FLOAT16_H_
