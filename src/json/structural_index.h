// Stage 1 of the on-demand parse path: a SIMD scan over the whole input
// buffer that records the position of every character the stage-2 walker must
// stop at — the structural index of "On-Demand JSON" (Keiser & Lemire,
// arXiv 2312.17149).
//
// Indexed positions, in ascending order:
//   - structural characters { } [ ] : , outside strings
//   - both delimiter quotes of every string (so the raw lexeme of a string is
//     exactly the bytes between two consecutive index entries)
//   - the first character of every non-string scalar run (numbers, literals,
//     and any garbage byte — the walker rejects what the grammar does not
//     allow, so junk still surfaces as a parse error)
//
// Nothing inside a string is indexed: quotes preceded by an odd-length
// backslash run are escaped and do not toggle the in-string state (the
// carry-propagating odd-run algorithm of simdjson stage 1). Bytes >= 0x80
// (UTF-8 continuation and lead bytes) classify as scalar characters and never
// as structure, so multi-byte sequences pass through unharmed; the scan never
// validates UTF-8, matching the streaming lexer.
//
// Implementation tiers mirror src/exec/simd.h: an AVX2 tier via function
// multi-versioning, a baseline SSE2 tier on x86-64, and a scalar reference
// that defines the exact semantics (the tier-identity tests compare the
// vector tiers against it bit for bit). The scan honors the exec::simd
// runtime kill switch and the JSONTILES_SIMD compile-time gate, so
// -DJSONTILES_SIMD=OFF and --no-simd both exercise the scalar tier.

#ifndef JSONTILES_JSON_STRUCTURAL_INDEX_H_
#define JSONTILES_JSON_STRUCTURAL_INDEX_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace jsontiles::json {

/// Ascending byte offsets of the structure of one document. Reusable: the
/// positions vector is a grow-only buffer kept across BuildStructuralIndex
/// calls — only the first `count` entries are valid. Never shrinking it means
/// repeated scans skip the value-initialization a fresh resize would pay.
struct StructuralIndex {
  std::vector<uint32_t> positions;
  size_t count = 0;
  /// Problem bitmap: bit i is set when byte i is a backslash or a control
  /// byte (< 0x20) inside a string. A string lexeme with no problem bit needs
  /// no escape decoding and nothing to validate (the two string error
  /// classes, bad escapes and raw control characters, are ruled out), so the
  /// walker takes it as-is. Grow-only buffer like `positions`; the first
  /// ceil(input_size / 64) words are valid.
  std::vector<uint64_t> problems;
  /// True when no problem bit is set anywhere — the whole-document fast flag
  /// (the walker then skips even the bitmap probes).
  bool clean_strings = false;
};

/// Scan `input` and fill `index->positions[0, count)`. Fails on inputs
/// the walker could never accept — an unterminated string or a document of
/// 4 GiB or more — so callers fall back to the streaming parser, which is the
/// arbiter of the final error status.
Status BuildStructuralIndex(std::string_view input, StructuralIndex* index);

/// Tier answering scans right now: "avx2", "vec128" or "scalar". Follows
/// exec::simd::SetEnabled and CompiledIn.
const char* StructuralIndexIsa();

}  // namespace jsontiles::json

#endif  // JSONTILES_JSON_STRUCTURAL_INDEX_H_
