// Stage 2 of the on-demand parse path plus the OndemandTransformer facade.
//
// The walker consumes the ascending positions of a StructuralIndex. Between
// two consecutive index entries there is never any structure: a string lexeme
// is one slice, a number or literal is lexed in place and the bytes up to the
// next entry must be whitespace (`12x` indexes only the `1`, so the `x` would
// otherwise be silently skipped — exactly the kind of divergence the
// differential tests exist to catch). Everything the walker does not
// recognize is an error, and every error makes OndemandTransformer re-parse
// with the streaming parser, which owns the final Status.

#include "json/ondemand.h"

#include <cstring>

#include "obs/obs.h"
#include "util/failpoint.h"

namespace jsontiles::json {

namespace {

inline bool IsJsonWs(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

// True when [from, to) holds only JSON whitespace (vacuously for from >= to).
inline bool AllWhitespace(std::string_view text, size_t from, size_t to) {
  for (size_t i = from; i < to; i++) {
    if (!IsJsonWs(text[i])) return false;
  }
  return true;
}

inline int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

// Validates a raw string lexeme (the bytes between the two delimiter quotes)
// under exactly JsonLexer::LexString's rules: no unescaped control characters
// below 0x20, escapes restricted to the JSON set, \u followed by four hex
// digits. A lexeme cannot end in an unescaped backslash — that backslash
// would have escaped the closing quote and stage 1 would have kept scanning —
// but the bounds checks don't rely on it.
Status ValidateStringLexeme(std::string_view lexeme, bool* has_escape) {
  *has_escape = false;
  const char* p = lexeme.data();
  const size_t n = lexeme.size();
  size_t i = 0;
  while (i < n) {
    // Word-at-a-time fast path: skip eight clean bytes per iteration. A byte
    // needs attention when it is a backslash (exact zero-byte test on
    // w ^ 0x5C..) or below 0x20 (the hasless trick; bytes >= 0x80 have the
    // high bit set and can never be flagged, and a cross-byte borrow can only
    // cause a false positive next to a genuine control byte, which the
    // careful loop below then rejects anyway).
    while (i + 8 <= n) {
      uint64_t w;
      std::memcpy(&w, p + i, 8);
      constexpr uint64_t kOnes = 0x0101010101010101ULL;
      constexpr uint64_t kHighs = 0x8080808080808080ULL;
      const uint64_t bs = w ^ (kOnes * static_cast<uint8_t>('\\'));
      const uint64_t flagged = (((bs - kOnes) & ~bs) | ((w - kOnes * 0x20) & ~w)) & kHighs;
      if (flagged != 0) break;
      i += 8;
    }
    if (i >= n) break;
    const unsigned char c = static_cast<unsigned char>(p[i]);
    if (c == '\\') {
      *has_escape = true;
      if (i + 1 >= n) return Status::ParseError("unterminated escape");
      switch (p[i + 1]) {
        case '"':
        case '\\':
        case '/':
        case 'b':
        case 'f':
        case 'n':
        case 'r':
        case 't':
          i += 2;
          break;
        case 'u': {
          if (i + 6 > n) return Status::ParseError("truncated \\u escape");
          for (size_t k = i + 2; k < i + 6; k++) {
            if (HexValue(p[k]) < 0) {
              return Status::ParseError("invalid \\u escape");
            }
          }
          i += 6;
          break;
        }
        default:
          return Status::ParseError("invalid escape character");
      }
    } else if (c < 0x20) {
      return Status::ParseError("unescaped control character in string");
    } else {
      i++;
    }
  }
  return Status::OK();
}

struct NumberToken {
  bool is_int;
  int64_t int_value;
  double double_value;
  size_t length;  // bytes consumed from the start position
};

// Lexes the number starting at `p` with the streaming lexer itself, so the
// grammar (leading zeros, exponent shape) and the int64 / double conversion
// (including the overflow-to-HUGE_VAL fallback) cannot drift between paths.
Status LexNumberAt(std::string_view text, size_t p, NumberToken* out) {
  JsonLexer lexer(text.substr(p));
  Token token;
  JSONTILES_RETURN_NOT_OK(lexer.Next(&token));
  // The caller dispatched on '-' or a digit, so the token is a number.
  out->is_int = lexer.number_is_int();
  out->int_value = lexer.int_value();
  out->double_value = lexer.double_value();
  out->length = lexer.position();
  return Status::OK();
}

}  // namespace

// Read head over a StructuralIndex. `NextBound()` is where the current scalar
// run must end: the next structural position, or end of input.
struct JsonbBuilder::IndexedCursor {
  std::string_view text;
  const uint32_t* pos;
  size_t count;
  // Stage 1 proved no string holds a backslash or control byte: lexemes need
  // neither validation nor decoding.
  bool clean_strings;
  // Per-byte problem bitmap from stage 1 (bit set = backslash or control byte
  // inside a string): even when the document as a whole is not clean, any
  // individual lexeme whose bit range is clear can be taken as-is.
  const uint64_t* problems;
  size_t cur = 0;

  bool AtEnd() const { return cur >= count; }
  char Peek() const { return text[pos[cur]]; }
  size_t NextBound() const { return cur < count ? pos[cur] : text.size(); }

  // True when no problem bit is set in [a, b).
  bool CleanRange(size_t a, size_t b) const {
    if (a >= b) return true;
    const size_t wa = a / 64;
    const size_t wb = (b - 1) / 64;
    const uint64_t lo = ~0ULL << (a % 64);
    const uint64_t hi = ~0ULL >> (63 - (b - 1) % 64);
    if (wa == wb) return (problems[wa] & lo & hi) == 0;
    uint64_t acc = (problems[wa] & lo) | (problems[wb] & hi);
    for (size_t w = wa + 1; w < wb; w++) acc |= problems[w];
    return acc == 0;
  }
};

Status JsonbBuilder::ParseIndexedValue(IndexedCursor& cursor, uint32_t* index,
                                       int depth) {
  if (depth > kMaxNesting) return Status::ParseError("nesting too deep");
  if (cursor.AtEnd()) return Status::ParseError("unexpected end of input");
  const size_t p = cursor.pos[cursor.cur++];
  const char ch = cursor.text[p];
  const uint32_t idx = static_cast<uint32_t>(nodes_.size());
  nodes_.emplace_back();
  *index = idx;

  switch (ch) {
    case 'n':
    case 't':
    case 'f': {
      const std::string_view word =
          ch == 'n' ? "null" : (ch == 't' ? "true" : "false");
      // A matching literal has no structural character inside it, so the next
      // index entry — the scalar-run bound — lies at or past its end.
      if (cursor.text.compare(p, word.size(), word) != 0 ||
          !AllWhitespace(cursor.text, p + word.size(), cursor.NextBound())) {
        return Status::ParseError("invalid literal");
      }
      nodes_[idx].type = ch == 'n' ? JsonType::kNull : JsonType::kBool;
      nodes_[idx].int_val = ch == 't' ? 1 : 0;
      nodes_[idx].size = 1;
      return Status::OK();
    }

    case '"': {
      // Inside a string nothing is indexed, so the next entry is the closing
      // quote (stage 1 rejects unterminated strings).
      if (cursor.AtEnd()) return Status::Internal("index: missing close quote");
      const size_t q = cursor.pos[cursor.cur++];
      if (cursor.text[q] != '"') {
        return Status::Internal("index: missing close quote");
      }
      const std::string_view lexeme = cursor.text.substr(p + 1, q - p - 1);
      if (cursor.clean_strings || cursor.CleanRange(p + 1, q)) {
        SetStringNode(idx, lexeme);
        return Status::OK();
      }
      bool has_escape;
      JSONTILES_RETURN_NOT_OK(ValidateStringLexeme(lexeme, &has_escape));
      SetStringNode(idx, DecodeStringLexeme(lexeme, has_escape));
      return Status::OK();
    }

    case '{': {
      nodes_[idx].type = JsonType::kObject;
      const size_t frame = indexed_children_.size();
      uint32_t prev = kInvalid;
      if (cursor.AtEnd()) return Status::ParseError("unexpected end of input");
      if (cursor.Peek() == '}') {
        cursor.cur++;
      } else {
        while (true) {
          // Key.
          const size_t kp = cursor.pos[cursor.cur];
          if (cursor.text[kp] != '"') {
            return Status::ParseError("expected object key");
          }
          cursor.cur++;
          if (cursor.AtEnd()) {
            return Status::Internal("index: missing close quote");
          }
          const size_t kq = cursor.pos[cursor.cur++];
          if (cursor.text[kq] != '"') {
            return Status::Internal("index: missing close quote");
          }
          const std::string_view key_lexeme =
              cursor.text.substr(kp + 1, kq - kp - 1);
          std::string_view key = key_lexeme;
          if (!cursor.clean_strings && !cursor.CleanRange(kp + 1, kq)) {
            bool key_escape;
            JSONTILES_RETURN_NOT_OK(
                ValidateStringLexeme(key_lexeme, &key_escape));
            key = DecodeStringLexeme(key_lexeme, key_escape);
          }
          if (key.size() > 0xFFFF) return Status::ParseError("key too long");
          // Colon.
          if (cursor.AtEnd() || cursor.Peek() != ':') {
            return Status::ParseError("expected ':'");
          }
          cursor.cur++;
          // Value.
          uint32_t child;
          JSONTILES_RETURN_NOT_OK(ParseIndexedValue(cursor, &child, depth + 1));
          nodes_[child].key = key;
          if (prev == kInvalid) {
            nodes_[idx].first_child = child;
          } else {
            nodes_[prev].next_sibling = child;
          }
          prev = child;
          indexed_children_.push_back(child);
          // Separator.
          if (cursor.AtEnd()) return Status::ParseError("expected ',' or '}'");
          const char sep = cursor.Peek();
          if (sep == ',') {
            cursor.cur++;
            if (cursor.AtEnd()) {
              return Status::ParseError("unexpected end of input");
            }
            if (cursor.Peek() == '}') {
              return Status::ParseError("trailing comma");
            }
            continue;
          }
          if (sep != '}') return Status::ParseError("expected ',' or '}'");
          cursor.cur++;
          break;
        }
      }
      FinalizeObject(idx, indexed_children_, frame);
      indexed_children_.resize(frame);
      return Status::OK();
    }

    case '[': {
      nodes_[idx].type = JsonType::kArray;
      uint32_t prev = kInvalid;
      uint64_t slots_size = 0;
      uint32_t count = 0;
      if (cursor.AtEnd()) return Status::ParseError("unexpected end of input");
      if (cursor.Peek() == ']') {
        cursor.cur++;
      } else {
        while (true) {
          uint32_t child;
          JSONTILES_RETURN_NOT_OK(ParseIndexedValue(cursor, &child, depth + 1));
          if (prev == kInvalid) {
            nodes_[idx].first_child = child;
          } else {
            nodes_[prev].next_sibling = child;
          }
          prev = child;
          slots_size += nodes_[child].size;
          count++;
          if (cursor.AtEnd()) return Status::ParseError("expected ',' or ']'");
          const char sep = cursor.Peek();
          if (sep == ',') {
            cursor.cur++;
            if (cursor.AtEnd()) {
              return Status::ParseError("unexpected end of input");
            }
            if (cursor.Peek() == ']') {
              return Status::ParseError("trailing comma");
            }
            continue;
          }
          if (sep != ']') return Status::ParseError("expected ',' or ']'");
          cursor.cur++;
          break;
        }
      }
      FinalizeArray(idx, count, slots_size);
      return Status::OK();
    }

    case ':':
    case ',':
    case '}':
    case ']':
      return Status::ParseError("unexpected token");

    default: {
      if (ch == '-' || (ch >= '0' && ch <= '9')) {
        // Fast path for plain integers (the bulk of analytic workloads):
        // optional '-', up to 18 digits (always fits int64), no leading zero,
        // nothing but whitespace up to the next structural position. Anything
        // else — floats, exponents, 19+ digits, malformed input — re-lexes
        // through the streaming lexer so values and error statuses are its.
        const size_t bound = cursor.NextBound();
        size_t q = p + (ch == '-' ? 1 : 0);
        const size_t digits_begin = q;
        uint64_t magnitude = 0;
        while (q < bound && cursor.text[q] >= '0' && cursor.text[q] <= '9') {
          magnitude = magnitude * 10 + static_cast<uint64_t>(cursor.text[q] - '0');
          q++;
        }
        const size_t ndigits = q - digits_begin;
        const bool grammar_ok =
            ndigits >= 1 && !(ndigits > 1 && cursor.text[digits_begin] == '0');
        if (grammar_ok && ndigits <= 18 &&
            AllWhitespace(cursor.text, q, bound)) {
          SetNumberIntNode(idx, ch == '-'
                                    ? -static_cast<int64_t>(magnitude)
                                    : static_cast<int64_t>(magnitude));
          return Status::OK();
        }
        // Decimal fast path (Clinger): for w.f with at most 15 total digits
        // the scaled mantissa fits in 2^53 and the power of ten is exact, so
        // double(mantissa) / 10^frac performs one correctly-rounded division
        // of the exact decimal value — bit-identical to what from_chars in
        // the streaming lexer produces. Exponents and longer numbers re-lex.
        if (grammar_ok && q < bound && cursor.text[q] == '.') {
          static constexpr double kPow10[16] = {
              1e0, 1e1, 1e2,  1e3,  1e4,  1e5,  1e6,  1e7,
              1e8, 1e9, 1e10, 1e11, 1e12, 1e13, 1e14, 1e15};
          size_t r = q + 1;
          while (r < bound && cursor.text[r] >= '0' && cursor.text[r] <= '9') {
            magnitude = magnitude * 10 + static_cast<uint64_t>(cursor.text[r] - '0');
            r++;
          }
          const size_t frac = r - (q + 1);
          if (frac >= 1 && ndigits + frac <= 15 &&
              AllWhitespace(cursor.text, r, bound)) {
            const double v = static_cast<double>(magnitude) / kPow10[frac];
            SetNumberFloatNode(idx, ch == '-' ? -v : v);
            return Status::OK();
          }
        }
        NumberToken num;
        JSONTILES_RETURN_NOT_OK(LexNumberAt(cursor.text, p, &num));
        // The lexer stops at the first non-number character; anything between
        // there and the next structural position must be whitespace.
        if (!AllWhitespace(cursor.text, p + num.length, cursor.NextBound())) {
          return Status::ParseError("invalid number");
        }
        if (num.is_int) {
          SetNumberIntNode(idx, num.int_value);
        } else {
          SetNumberFloatNode(idx, num.double_value);
        }
        return Status::OK();
      }
      return Status::ParseError("unexpected character");
    }
  }
}

Status JsonbBuilder::TransformIndexed(std::string_view json_text,
                                      const StructuralIndex& index,
                                      std::vector<uint8_t>* out) {
  nodes_.clear();
  sorted_children_.clear();
  decoded_used_ = 0;
  indexed_children_.clear();

  if (index.count == 0) return Status::ParseError("empty input");
  IndexedCursor cursor{json_text, index.positions.data(), index.count,
                       index.clean_strings, index.problems.data()};
  uint32_t root;
  JSONTILES_RETURN_NOT_OK(ParseIndexedValue(cursor, &root, 0));
  if (!cursor.AtEnd()) return Status::ParseError("trailing content");
  if (nodes_[root].size > 0xFFFFFFFFull) {
    return Status::OutOfRange("document larger than 4 GiB");
  }
  out->resize(nodes_[root].size);
  WriteValue(root, out->data(), 0);
  return Status::OK();
}

Status OndemandTransformer::Transform(std::string_view json_text,
                                      std::vector<uint8_t>* out) {
  if (!JSONTILES_FAILPOINT_FIRES("ondemand.force_fallback")) {
    JSONTILES_OBS_ONLY(obs::Stopwatch obs_watch);
    Status st = BuildStructuralIndex(json_text, &index_);
    JSONTILES_HIST_RECORD("jsonb.ondemand.stage1_micros",
                          obs_watch.Lap() * 1e6);
    if (st.ok()) {
      st = builder_.TransformIndexed(json_text, index_, out);
      JSONTILES_HIST_RECORD("jsonb.ondemand.stage2_micros",
                            obs_watch.Lap() * 1e6);
      if (st.ok()) {
        docs_ondemand_++;
        JSONTILES_COUNTER_ADD("jsonb.ondemand.docs", 1);
        JSONTILES_COUNTER_ADD("jsonb.ondemand.bytes_in",
                              static_cast<int64_t>(json_text.size()));
        JSONTILES_COUNTER_ADD("jsonb.ondemand.bytes_out",
                              static_cast<int64_t>(out->size()));
        return st;
      }
    }
  }
  // Structural anomaly (or forced fallback): the streaming parser decides.
  // Re-parsing keeps the Status — and any accepted output — exactly what the
  // baseline would have produced, so rejected documents can never diverge.
  docs_fallback_++;
  JSONTILES_COUNTER_ADD("jsonb.ondemand.fallbacks", 1);
  return builder_.Transform(json_text, out);
}

}  // namespace jsontiles::json
