// Stage 2 of the on-demand parse path: the direct JSONB emitter plus the
// OndemandTransformer facade.
//
// The emitter consumes the ascending positions of a StructuralIndex. Between
// two consecutive index entries there is never any structure: a string lexeme
// is one slice, a number or literal is lexed in place and the bytes up to the
// next entry must be whitespace (`12x` indexes only the `1`, so the `x` would
// otherwise be silently skipped — exactly the kind of divergence the
// differential tests exist to catch). Values are serialized as they are
// walked: children land on the tape first, and the container header — whose
// offset width, varint count and offset table depend on the children's total
// serialized size — is patched in front when the container closes. Arrays
// shift their slot area up by the header size; objects whose keys arrived
// already sorted and unique do the same, and the rest rebuild their slot area
// in sorted duplicate-free key order through a scratch buffer (stable sort,
// last duplicate wins — replicating JsonbBuilder::FinalizeObject exactly).
// Everything the emitter does not recognize is an error, and every error
// makes OndemandTransformer re-parse with the streaming parser, which owns
// the final Status.

#include "json/ondemand.h"

#include <algorithm>
#include <cstring>

#include "json/jsonb_wire.h"
#include "obs/obs.h"
// The ingest directory speaks the tile layer's encoded key-path format; the
// segment encoders live with that format's definition. This is the one
// json -> tiles dependency, confined to this translation unit (the build is a
// single static library, and tiles/keypath.h includes no json internals).
#include "tiles/keypath.h"
#include "util/bit_util.h"
#include "util/failpoint.h"
#include "util/logging.h"

namespace jsontiles::json {

namespace {

inline bool IsJsonWs(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

// True when [from, to) holds only JSON whitespace (vacuously for from >= to).
inline bool AllWhitespace(std::string_view text, size_t from, size_t to) {
  for (size_t i = from; i < to; i++) {
    if (!IsJsonWs(text[i])) return false;
  }
  return true;
}

inline int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

// Validates a raw string lexeme (the bytes between the two delimiter quotes)
// under exactly JsonLexer::LexString's rules: no unescaped control characters
// below 0x20, escapes restricted to the JSON set, \u followed by four hex
// digits. A lexeme cannot end in an unescaped backslash — that backslash
// would have escaped the closing quote and stage 1 would have kept scanning —
// but the bounds checks don't rely on it.
Status ValidateStringLexeme(std::string_view lexeme, bool* has_escape) {
  *has_escape = false;
  const char* p = lexeme.data();
  const size_t n = lexeme.size();
  size_t i = 0;
  while (i < n) {
    // Word-at-a-time fast path: skip eight clean bytes per iteration. A byte
    // needs attention when it is a backslash (exact zero-byte test on
    // w ^ 0x5C..) or below 0x20 (the hasless trick; bytes >= 0x80 have the
    // high bit set and can never be flagged, and a cross-byte borrow can only
    // cause a false positive next to a genuine control byte, which the
    // careful loop below then rejects anyway).
    while (i + 8 <= n) {
      uint64_t w;
      std::memcpy(&w, p + i, 8);
      constexpr uint64_t kOnes = 0x0101010101010101ULL;
      constexpr uint64_t kHighs = 0x8080808080808080ULL;
      const uint64_t bs = w ^ (kOnes * static_cast<uint8_t>('\\'));
      const uint64_t flagged = (((bs - kOnes) & ~bs) | ((w - kOnes * 0x20) & ~w)) & kHighs;
      if (flagged != 0) break;
      i += 8;
    }
    if (i >= n) break;
    const unsigned char c = static_cast<unsigned char>(p[i]);
    if (c == '\\') {
      *has_escape = true;
      if (i + 1 >= n) return Status::ParseError("unterminated escape");
      switch (p[i + 1]) {
        case '"':
        case '\\':
        case '/':
        case 'b':
        case 'f':
        case 'n':
        case 'r':
        case 't':
          i += 2;
          break;
        case 'u': {
          if (i + 6 > n) return Status::ParseError("truncated \\u escape");
          for (size_t k = i + 2; k < i + 6; k++) {
            if (HexValue(p[k]) < 0) {
              return Status::ParseError("invalid \\u escape");
            }
          }
          i += 6;
          break;
        }
        default:
          return Status::ParseError("invalid escape character");
      }
    } else if (c < 0x20) {
      return Status::ParseError("unescaped control character in string");
    } else {
      i++;
    }
  }
  return Status::OK();
}

struct NumberToken {
  bool is_int;
  int64_t int_value;
  double double_value;
  size_t length;  // bytes consumed from the start position
};

// Lexes the number starting at `p` with the streaming lexer itself, so the
// grammar (leading zeros, exponent shape) and the int64 / double conversion
// (including the overflow-to-HUGE_VAL fallback) cannot drift between paths.
Status LexNumberAt(std::string_view text, size_t p, NumberToken* out) {
  JsonLexer lexer(text.substr(p));
  Token token;
  JSONTILES_RETURN_NOT_OK(lexer.Next(&token));
  // The caller dispatched on '-' or a digit, so the token is a number.
  out->is_int = lexer.number_is_int();
  out->int_value = lexer.int_value();
  out->double_value = lexer.double_value();
  out->length = lexer.position();
  return Status::OK();
}

}  // namespace

// Read head over a StructuralIndex. `NextBound()` is where the current scalar
// run must end: the next structural position, or end of input.
struct DirectEmitter::Cursor {
  std::string_view text;
  const uint32_t* pos;
  size_t count;
  // Stage 1 proved no string holds a backslash or control byte: lexemes need
  // neither validation nor decoding.
  bool clean_strings;
  // Per-byte problem bitmap from stage 1 (bit set = backslash or control byte
  // inside a string): even when the document as a whole is not clean, any
  // individual lexeme whose bit range is clear can be taken as-is.
  const uint64_t* problems;
  size_t cur = 0;

  bool AtEnd() const { return cur >= count; }
  char Peek() const { return text[pos[cur]]; }
  size_t NextBound() const { return cur < count ? pos[cur] : text.size(); }

  // True when no problem bit is set in [a, b).
  bool CleanRange(size_t a, size_t b) const {
    if (a >= b) return true;
    const size_t wa = a / 64;
    const size_t wb = (b - 1) / 64;
    const uint64_t lo = ~0ULL << (a % 64);
    const uint64_t hi = ~0ULL >> (63 - (b - 1) % 64);
    if (wa == wb) return (problems[wa] & lo & hi) == 0;
    uint64_t acc = (problems[wa] & lo) | (problems[wb] & hi);
    for (size_t w = wa + 1; w < wb; w++) acc |= problems[w];
    return acc == 0;
  }
};

uint8_t* DirectEmitter::Reserve(size_t n) {
  if (tape_size_ + n > tape_.size()) {
    size_t target = std::max<size_t>(tape_size_ + n, tape_.size() * 2);
    tape_.resize(std::max<size_t>(target, 4096));
  }
  return tape_.data() + tape_size_;
}

std::string_view DirectEmitter::DecodeKeyLexeme(std::string_view lexeme) {
  if (decoded_keys_used_ == decoded_keys_.size()) decoded_keys_.emplace_back();
  std::string& slot = decoded_keys_[decoded_keys_used_++];
  JsonLexer::Unescape(lexeme, &slot);
  return slot;
}

uint64_t DirectEmitter::AppendString(std::string_view decoded,
                                     JsonType* leaf_type) {
  Numeric num;
  if (options_.detect_numeric_strings && ParseNumeric(decoded, &num)) {
    *leaf_type = JsonType::kNumericString;
    const uint64_t size = wire::NumericSize(num);
    wire::EncodeNumeric(Reserve(size), num);
    tape_size_ += size;
    return size;
  }
  *leaf_type = JsonType::kString;
  const uint64_t size = wire::StringSize(decoded.size());
  wire::EncodeString(Reserve(size), decoded);
  tape_size_ += size;
  return size;
}

bool DirectEmitter::RecordLeaf(JsonType type, uint64_t value_off) {
  // Offsets and the path arena are uint32; both can only overflow on
  // documents in the multi-gigabyte range, where falling back (and letting
  // the streaming parser's 4 GiB check decide) is the right answer anyway.
  if (value_off > 0xFFFFFFFFull ||
      ingest_->paths.size() + prefix_.size() > 0xFFFFFFFFull) {
    return false;
  }
  ingest_->leaves.push_back(OndemandIngest::Leaf{
      static_cast<uint32_t>(ingest_->paths.size()),
      static_cast<uint32_t>(prefix_.size()), static_cast<uint32_t>(value_off),
      static_cast<uint8_t>(type)});
  ingest_->paths.append(prefix_);
  return true;
}

Status DirectEmitter::CloseObject(size_t member_base, uint64_t start,
                                  bool sorted_unique, uint64_t* size_out) {
  const size_t n = members_.size() - member_base;
  const uint64_t emitted_slots = tape_size_ - start;

  if (sorted_unique) {
    // Keys arrived strictly increasing (the common case for machine-written
    // JSON): the slot area is already final, only the header moves in front.
    const uint32_t count = static_cast<uint32_t>(n);
    const int ow = wire::OffsetWidthFor(emitted_slots);
    const uint64_t hdr = wire::ContainerHeaderSize(count, ow);
    if (start + hdr + emitted_slots > 0xFFFFFFFFull) {
      return Status::OutOfRange("document larger than 4 GiB");
    }
    Reserve(hdr);
    uint8_t* base = tape_.data() + start;
    std::memmove(base + hdr, base, emitted_slots);
    moved_bytes_ += emitted_slots;
    tape_size_ += hdr;
    uint8_t* off_p = wire::EncodeContainerHeader(base, wire::kTagObject, count, ow);
    uint64_t rel = 0;
    for (size_t i = 0; i < n; i++) {
      rel += members_[member_base + i].slot_len;
      bit_util::StoreLE(off_p + static_cast<size_t>(i) * ow, rel, ow);
    }
    if (ingest_ != nullptr && n > 0) {
      for (size_t k = members_[member_base].leaf_begin;
           k < ingest_->leaves.size(); k++) {
        ingest_->leaves[k].value_off += static_cast<uint32_t>(hdr);
      }
    }
    members_.resize(member_base);
    *size_out = hdr + emitted_slots;
    return Status::OK();
  }

  // Out-of-order and/or duplicate keys: rebuild the slot area in sorted
  // deduplicated order, replicating FinalizeObject exactly — stable sort
  // (insertion sort for small objects: std::stable_sort allocates a merge
  // buffer per call), keep the last occurrence of each duplicate key.
  sort_scratch_.clear();
  for (size_t i = 0; i < n; i++) {
    sort_scratch_.push_back(static_cast<uint32_t>(member_base + i));
  }
  const auto key_less = [this](uint32_t a, uint32_t b) {
    return members_[a].key < members_[b].key;
  };
  if (n <= 32) {
    for (size_t i = 1; i < n; i++) {
      const uint32_t v = sort_scratch_[i];
      size_t j = i;
      while (j > 0 && key_less(v, sort_scratch_[j - 1])) {
        sort_scratch_[j] = sort_scratch_[j - 1];
        j--;
      }
      sort_scratch_[j] = v;
    }
  } else {
    std::stable_sort(sort_scratch_.begin(), sort_scratch_.end(), key_less);
  }
  size_t w = 0;
  for (size_t i = 0; i < n; i++) {
    if (i + 1 < n &&
        members_[sort_scratch_[i]].key == members_[sort_scratch_[i + 1]].key) {
      continue;  // superseded by a later duplicate
    }
    sort_scratch_[w++] = sort_scratch_[i];
  }
  const uint32_t count = static_cast<uint32_t>(w);
  uint64_t slots_size = 0;
  for (size_t i = 0; i < w; i++) slots_size += members_[sort_scratch_[i]].slot_len;
  const int ow = wire::OffsetWidthFor(slots_size);
  const uint64_t hdr = wire::ContainerHeaderSize(count, ow);
  const uint64_t total = hdr + slots_size;
  if (start + total > 0xFFFFFFFFull) {
    return Status::OutOfRange("document larger than 4 GiB");
  }
  if (slot_scratch_.size() < total) slot_scratch_.resize(total);
  uint8_t* off_p = wire::EncodeContainerHeader(slot_scratch_.data(),
                                               wire::kTagObject, count, ow);
  uint8_t* slots = slot_scratch_.data() + hdr;
  if (ingest_ != nullptr) leaf_scratch_.clear();
  uint64_t rel = 0;
  for (size_t i = 0; i < w; i++) {
    const Member& m = members_[sort_scratch_[i]];
    std::memcpy(slots + rel, tape_.data() + m.slot_off, m.slot_len);
    if (ingest_ != nullptr) {
      // The member's subtree leaves move with its slot (dropped duplicates'
      // leaves are dropped with them, matching the finished document).
      const uint64_t new_slot_off = start + hdr + rel;
      for (uint32_t k = m.leaf_begin; k < m.leaf_end; k++) {
        OndemandIngest::Leaf leaf = ingest_->leaves[k];
        leaf.value_off = static_cast<uint32_t>(leaf.value_off - m.slot_off +
                                               new_slot_off);
        leaf_scratch_.push_back(leaf);
      }
    }
    rel += m.slot_len;
    bit_util::StoreLE(off_p + static_cast<size_t>(i) * ow, rel, ow);
  }
  moved_bytes_ += slots_size;
  tape_size_ = start;
  std::memcpy(Reserve(total), slot_scratch_.data(), total);
  tape_size_ += total;
  if (ingest_ != nullptr && n > 0) {
    ingest_->leaves.resize(members_[member_base].leaf_begin);
    ingest_->leaves.insert(ingest_->leaves.end(), leaf_scratch_.begin(),
                           leaf_scratch_.end());
  }
  members_.resize(member_base);
  *size_out = total;
  return Status::OK();
}

Status DirectEmitter::CloseArray(size_t ends_base, uint64_t start,
                                 uint32_t frame_leaf_begin,
                                 uint64_t* size_out) {
  const size_t n = child_ends_.size() - ends_base;
  const uint64_t slots_size = tape_size_ - start;
  const uint32_t count = static_cast<uint32_t>(n);
  const int ow = wire::OffsetWidthFor(slots_size);
  const uint64_t hdr = wire::ContainerHeaderSize(count, ow);
  if (start + hdr + slots_size > 0xFFFFFFFFull) {
    return Status::OutOfRange("document larger than 4 GiB");
  }
  Reserve(hdr);
  uint8_t* base = tape_.data() + start;
  std::memmove(base + hdr, base, slots_size);
  moved_bytes_ += slots_size;
  tape_size_ += hdr;
  uint8_t* off_p = wire::EncodeContainerHeader(base, wire::kTagArray, count, ow);
  for (size_t i = 0; i < n; i++) {
    bit_util::StoreLE(off_p + static_cast<size_t>(i) * ow,
                      child_ends_[ends_base + i], ow);
  }
  if (ingest_ != nullptr) {
    for (size_t k = frame_leaf_begin; k < ingest_->leaves.size(); k++) {
      ingest_->leaves[k].value_off += static_cast<uint32_t>(hdr);
    }
  }
  child_ends_.resize(ends_base);
  *size_out = hdr + slots_size;
  return Status::OK();
}

Status DirectEmitter::EmitValue(Cursor& cursor, int depth, bool collect,
                                uint64_t* size_out) {
  if (depth > JsonbBuilder::kMaxNesting) {
    return Status::ParseError("nesting too deep");
  }
  if (cursor.AtEnd()) return Status::ParseError("unexpected end of input");
  const size_t p = cursor.pos[cursor.cur++];
  const char ch = cursor.text[p];
  const uint64_t start = tape_size_;

  switch (ch) {
    case 'n':
    case 't':
    case 'f': {
      const std::string_view word =
          ch == 'n' ? "null" : (ch == 't' ? "true" : "false");
      // A matching literal has no structural character inside it, so the next
      // index entry — the scalar-run bound — lies at or past its end.
      if (cursor.text.compare(p, word.size(), word) != 0 ||
          !AllWhitespace(cursor.text, p + word.size(), cursor.NextBound())) {
        return Status::ParseError("invalid literal");
      }
      uint8_t* o = Reserve(1);
      if (ch == 'n') {
        wire::EncodeNull(o);
      } else {
        wire::EncodeBool(o, ch == 't');
      }
      tape_size_ += 1;
      if (ingest_ != nullptr && collect &&
          !RecordLeaf(ch == 'n' ? JsonType::kNull : JsonType::kBool, start)) {
        return Status::OutOfRange("ingest directory overflow");
      }
      *size_out = 1;
      return Status::OK();
    }

    case '"': {
      // Inside a string nothing is indexed, so the next entry is the closing
      // quote (stage 1 rejects unterminated strings).
      if (cursor.AtEnd()) return Status::Internal("index: missing close quote");
      const size_t q = cursor.pos[cursor.cur++];
      if (cursor.text[q] != '"') {
        return Status::Internal("index: missing close quote");
      }
      const std::string_view lexeme = cursor.text.substr(p + 1, q - p - 1);
      std::string_view decoded = lexeme;
      if (!cursor.clean_strings && !cursor.CleanRange(p + 1, q)) {
        bool has_escape;
        JSONTILES_RETURN_NOT_OK(ValidateStringLexeme(lexeme, &has_escape));
        if (has_escape) {
          JsonLexer::Unescape(lexeme, &string_scratch_);
          decoded = string_scratch_;
        }
      }
      JsonType leaf_type;
      *size_out = AppendString(decoded, &leaf_type);
      if (ingest_ != nullptr && collect && !RecordLeaf(leaf_type, start)) {
        return Status::OutOfRange("ingest directory overflow");
      }
      return Status::OK();
    }

    case '{': {
      const size_t member_base = members_.size();
      const bool expand = collect && depth < ingest_depth_cap_;
      bool sorted_unique = true;
      if (cursor.AtEnd()) return Status::ParseError("unexpected end of input");
      if (cursor.Peek() == '}') {
        cursor.cur++;
      } else {
        while (true) {
          // Key.
          const size_t kp = cursor.pos[cursor.cur];
          if (cursor.text[kp] != '"') {
            return Status::ParseError("expected object key");
          }
          cursor.cur++;
          if (cursor.AtEnd()) {
            return Status::Internal("index: missing close quote");
          }
          const size_t kq = cursor.pos[cursor.cur++];
          if (cursor.text[kq] != '"') {
            return Status::Internal("index: missing close quote");
          }
          const std::string_view key_lexeme =
              cursor.text.substr(kp + 1, kq - kp - 1);
          std::string_view key = key_lexeme;
          if (!cursor.clean_strings && !cursor.CleanRange(kp + 1, kq)) {
            bool key_escape;
            JSONTILES_RETURN_NOT_OK(
                ValidateStringLexeme(key_lexeme, &key_escape));
            if (key_escape) key = DecodeKeyLexeme(key_lexeme);
          }
          if (key.size() > 0xFFFF) return Status::ParseError("key too long");
          // Colon.
          if (cursor.AtEnd() || cursor.Peek() != ':') {
            return Status::ParseError("expected ':'");
          }
          cursor.cur++;
          if (members_.size() > member_base &&
              !(members_.back().key < key)) {
            sorted_unique = false;
          }
          // Value: the slot is [value][key bytes][u16 key length].
          const uint64_t slot_off = tape_size_;
          const uint32_t leaf_begin =
              ingest_ != nullptr ? static_cast<uint32_t>(ingest_->leaves.size())
                                 : 0;
          size_t saved_prefix = 0;
          if (ingest_ != nullptr && expand) {
            saved_prefix = prefix_.size();
            tiles::AppendKeySegment(&prefix_, key);
          }
          uint64_t value_size = 0;
          JSONTILES_RETURN_NOT_OK(
              EmitValue(cursor, depth + 1, expand, &value_size));
          if (ingest_ != nullptr && expand) prefix_.resize(saved_prefix);
          uint8_t* o = Reserve(key.size() + 2);
          std::memcpy(o, key.data(), key.size());
          bit_util::StoreU16(o + key.size(), static_cast<uint16_t>(key.size()));
          tape_size_ += key.size() + 2;
          members_.push_back(Member{
              slot_off, value_size + key.size() + 2, key, leaf_begin,
              ingest_ != nullptr
                  ? static_cast<uint32_t>(ingest_->leaves.size())
                  : 0});
          // Separator.
          if (cursor.AtEnd()) return Status::ParseError("expected ',' or '}'");
          const char sep = cursor.Peek();
          if (sep == ',') {
            cursor.cur++;
            if (cursor.AtEnd()) {
              return Status::ParseError("unexpected end of input");
            }
            if (cursor.Peek() == '}') {
              return Status::ParseError("trailing comma");
            }
            continue;
          }
          if (sep != '}') return Status::ParseError("expected ',' or '}'");
          cursor.cur++;
          break;
        }
      }
      return CloseObject(member_base, start, sorted_unique, size_out);
    }

    case '[': {
      const size_t ends_base = child_ends_.size();
      const bool expand = collect && depth < ingest_depth_cap_;
      const uint32_t frame_leaf_begin =
          ingest_ != nullptr ? static_cast<uint32_t>(ingest_->leaves.size())
                             : 0;
      uint32_t elem = 0;
      if (cursor.AtEnd()) return Status::ParseError("unexpected end of input");
      if (cursor.Peek() == ']') {
        cursor.cur++;
      } else {
        while (true) {
          const bool elem_collect = expand && elem < ingest_array_cap_;
          size_t saved_prefix = 0;
          if (ingest_ != nullptr && elem_collect) {
            saved_prefix = prefix_.size();
            tiles::AppendIndexSegment(&prefix_, elem);
          }
          uint64_t value_size = 0;
          JSONTILES_RETURN_NOT_OK(
              EmitValue(cursor, depth + 1, elem_collect, &value_size));
          if (ingest_ != nullptr && elem_collect) prefix_.resize(saved_prefix);
          child_ends_.push_back(tape_size_ - start);
          elem++;
          if (cursor.AtEnd()) return Status::ParseError("expected ',' or ']'");
          const char sep = cursor.Peek();
          if (sep == ',') {
            cursor.cur++;
            if (cursor.AtEnd()) {
              return Status::ParseError("unexpected end of input");
            }
            if (cursor.Peek() == ']') {
              return Status::ParseError("trailing comma");
            }
            continue;
          }
          if (sep != ']') return Status::ParseError("expected ',' or ']'");
          cursor.cur++;
          break;
        }
      }
      return CloseArray(ends_base, start, frame_leaf_begin, size_out);
    }

    case ':':
    case ',':
    case '}':
    case ']':
      return Status::ParseError("unexpected token");

    default: {
      if (ch == '-' || (ch >= '0' && ch <= '9')) {
        // Fast path for plain integers (the bulk of analytic workloads):
        // optional '-', up to 18 digits (always fits int64), no leading zero,
        // nothing but whitespace up to the next structural position. Anything
        // else — floats, exponents, 19+ digits, malformed input — re-lexes
        // through the streaming lexer so values and error statuses are its.
        const size_t bound = cursor.NextBound();
        size_t q = p + (ch == '-' ? 1 : 0);
        const size_t digits_begin = q;
        uint64_t magnitude = 0;
        while (q < bound && cursor.text[q] >= '0' && cursor.text[q] <= '9') {
          magnitude = magnitude * 10 + static_cast<uint64_t>(cursor.text[q] - '0');
          q++;
        }
        const size_t ndigits = q - digits_begin;
        const bool grammar_ok =
            ndigits >= 1 && !(ndigits > 1 && cursor.text[digits_begin] == '0');
        int64_t int_value = 0;
        bool is_int = false;
        double dbl_value = 0;
        bool is_double = false;
        if (grammar_ok && ndigits <= 18 &&
            AllWhitespace(cursor.text, q, bound)) {
          is_int = true;
          int_value = ch == '-' ? -static_cast<int64_t>(magnitude)
                                : static_cast<int64_t>(magnitude);
        } else if (grammar_ok && q < bound && cursor.text[q] == '.') {
          // Decimal fast path (Clinger): for w.f with at most 15 total digits
          // the scaled mantissa fits in 2^53 and the power of ten is exact,
          // so double(mantissa) / 10^frac performs one correctly-rounded
          // division of the exact decimal value — bit-identical to what
          // from_chars in the streaming lexer produces. Exponents and longer
          // numbers re-lex.
          static constexpr double kPow10[16] = {
              1e0, 1e1, 1e2,  1e3,  1e4,  1e5,  1e6,  1e7,
              1e8, 1e9, 1e10, 1e11, 1e12, 1e13, 1e14, 1e15};
          size_t r = q + 1;
          while (r < bound && cursor.text[r] >= '0' && cursor.text[r] <= '9') {
            magnitude = magnitude * 10 + static_cast<uint64_t>(cursor.text[r] - '0');
            r++;
          }
          const size_t frac = r - (q + 1);
          if (frac >= 1 && ndigits + frac <= 15 &&
              AllWhitespace(cursor.text, r, bound)) {
            is_double = true;
            const double v = static_cast<double>(magnitude) / kPow10[frac];
            dbl_value = ch == '-' ? -v : v;
          }
        }
        if (!is_int && !is_double) {
          NumberToken num;
          JSONTILES_RETURN_NOT_OK(LexNumberAt(cursor.text, p, &num));
          // The lexer stops at the first non-number character; anything
          // between there and the next structural position must be
          // whitespace.
          if (!AllWhitespace(cursor.text, p + num.length, cursor.NextBound())) {
            return Status::ParseError("invalid number");
          }
          if (num.is_int) {
            is_int = true;
            int_value = num.int_value;
          } else {
            is_double = true;
            dbl_value = num.double_value;
          }
        }
        JsonType leaf_type;
        if (is_int) {
          leaf_type = JsonType::kInt;
          const uint64_t size = wire::IntSize(int_value);
          wire::EncodeInt(Reserve(size), int_value);
          tape_size_ += size;
          *size_out = size;
        } else {
          leaf_type = JsonType::kFloat;
          const uint8_t width = wire::FloatWidth(dbl_value);
          wire::EncodeFloat(Reserve(1 + width), dbl_value, width);
          tape_size_ += 1 + static_cast<uint64_t>(width);
          *size_out = 1 + static_cast<uint64_t>(width);
        }
        if (ingest_ != nullptr && collect && !RecordLeaf(leaf_type, start)) {
          return Status::OutOfRange("ingest directory overflow");
        }
        return Status::OK();
      }
      return Status::ParseError("unexpected character");
    }
  }
}

Status DirectEmitter::Emit(std::string_view json_text,
                           const StructuralIndex& index,
                           std::vector<uint8_t>* out,
                           const OndemandIngestConfig* ingest_config,
                           OndemandIngest* ingest) {
  tape_size_ = 0;
  moved_bytes_ = 0;
  members_.clear();
  child_ends_.clear();
  decoded_keys_used_ = 0;
  ingest_ = ingest;
  if (ingest != nullptr) {
    ingest->leaves.clear();
    ingest->paths.clear();
    ingest->leaves.reserve(ingest_leaves_hint_);
    ingest->paths.reserve(ingest_paths_hint_);
    prefix_.clear();
    ingest_depth_cap_ = ingest_config->max_path_depth;
    ingest_array_cap_ = ingest_config->max_array_elements;
  }

  if (index.count == 0) return Status::ParseError("empty input");
  Cursor cursor{json_text, index.positions.data(), index.count,
                index.clean_strings, index.problems.data()};
  uint64_t root_size = 0;
  JSONTILES_RETURN_NOT_OK(EmitValue(cursor, 0, ingest != nullptr, &root_size));
  if (!cursor.AtEnd()) return Status::ParseError("trailing content");
  if (root_size > 0xFFFFFFFFull) {
    return Status::OutOfRange("document larger than 4 GiB");
  }
  JSONTILES_DCHECK(root_size == tape_size_);
  if (ingest != nullptr) {
    if (ingest->leaves.size() > ingest_leaves_hint_) {
      ingest_leaves_hint_ = ingest->leaves.size();
    }
    if (ingest->paths.size() > ingest_paths_hint_) {
      ingest_paths_hint_ = ingest->paths.size();
    }
  }
  out->assign(tape_.data(), tape_.data() + tape_size_);
  return Status::OK();
}

// Reference directory semantics: walk the finished JSONB exactly as
// tiles::ForEachKeyPath does (sorted deduplicated members, array/depth caps),
// recording each leaf's offset within the document.
namespace {

void WalkIngest(const uint8_t* doc_base, JsonbValue value,
                const OndemandIngestConfig& config, std::string* prefix,
                int depth, OndemandIngest* out) {
  switch (value.type()) {
    case JsonType::kObject: {
      if (depth >= config.max_path_depth) return;
      const size_t count = value.Count();
      for (size_t i = 0; i < count; i++) {
        const size_t saved = prefix->size();
        tiles::AppendKeySegment(prefix, value.MemberKey(i));
        WalkIngest(doc_base, value.MemberValue(i), config, prefix, depth + 1,
                   out);
        prefix->resize(saved);
      }
      return;
    }
    case JsonType::kArray: {
      if (depth >= config.max_path_depth) return;
      const size_t count = value.Count();
      const size_t limit =
          count < config.max_array_elements
              ? count
              : static_cast<size_t>(config.max_array_elements);
      for (size_t i = 0; i < limit; i++) {
        const size_t saved = prefix->size();
        tiles::AppendIndexSegment(prefix, static_cast<uint32_t>(i));
        WalkIngest(doc_base, value.ArrayElement(i), config, prefix, depth + 1,
                   out);
        prefix->resize(saved);
      }
      return;
    }
    default: {
      JSONTILES_CHECK(out->paths.size() + prefix->size() <= 0xFFFFFFFFull);
      out->leaves.push_back(OndemandIngest::Leaf{
          static_cast<uint32_t>(out->paths.size()),
          static_cast<uint32_t>(prefix->size()),
          static_cast<uint32_t>(value.data() - doc_base),
          static_cast<uint8_t>(value.type())});
      out->paths.append(*prefix);
    }
  }
}

}  // namespace

void BuildIngestFromJsonb(JsonbValue doc, const OndemandIngestConfig& config,
                          OndemandIngest* out) {
  out->leaves.clear();
  out->paths.clear();
  std::string prefix;
  WalkIngest(doc.data(), doc, config, &prefix, 0, out);
}

Status OndemandTransformer::TransformImpl(
    std::string_view json_text, std::vector<uint8_t>* out,
    const OndemandIngestConfig* ingest_config, OndemandIngest* ingest) {
  if (!JSONTILES_FAILPOINT_FIRES("ondemand.force_fallback")) {
    JSONTILES_OBS_ONLY(obs::Stopwatch obs_watch);
    Status st = BuildStructuralIndex(json_text, &index_);
    JSONTILES_HIST_RECORD("jsonb.ondemand.stage1_micros",
                          obs_watch.Lap() * 1e6);
    if (st.ok()) {
      st = emitter_.Emit(json_text, index_, out, ingest_config, ingest);
      JSONTILES_HIST_RECORD("jsonb.ondemand.stage2_micros",
                            obs_watch.Lap() * 1e6);
      if (st.ok()) {
        docs_ondemand_++;
        JSONTILES_COUNTER_ADD("jsonb.ondemand.docs", 1);
        JSONTILES_COUNTER_ADD("jsonb.ondemand.bytes_in",
                              static_cast<int64_t>(json_text.size()));
        JSONTILES_COUNTER_ADD("jsonb.ondemand.bytes_out",
                              static_cast<int64_t>(out->size()));
        JSONTILES_COUNTER_ADD("jsonb.ondemand.direct_moved_bytes",
                              static_cast<int64_t>(emitter_.moved_bytes()));
        if (ingest != nullptr) {
          JSONTILES_COUNTER_ADD("jsonb.ondemand.direct_ingest_docs", 1);
          JSONTILES_COUNTER_ADD(
              "jsonb.ondemand.direct_leaves",
              static_cast<int64_t>(ingest->leaves.size()));
        }
        return st;
      }
    }
  }
  // Structural anomaly (or forced fallback): the streaming parser decides.
  // Re-parsing keeps the Status — and any accepted output — exactly what the
  // baseline would have produced, so rejected documents can never diverge.
  docs_fallback_++;
  JSONTILES_COUNTER_ADD("jsonb.ondemand.fallbacks", 1);
  Status st = builder_.Transform(json_text, out);
  if (st.ok() && ingest != nullptr) {
    BuildIngestFromJsonb(JsonbValue(out->data()), *ingest_config, ingest);
  }
  return st;
}

Status OndemandTransformer::Transform(std::string_view json_text,
                                      std::vector<uint8_t>* out) {
  return TransformImpl(json_text, out, nullptr, nullptr);
}

Status OndemandTransformer::Transform(std::string_view json_text,
                                      std::vector<uint8_t>* out,
                                      const OndemandIngestConfig& ingest_config,
                                      OndemandIngest* ingest) {
  return TransformImpl(json_text, out, &ingest_config, ingest);
}

Status OndemandTransformer::Transform(std::string_view json_text,
                                      std::vector<uint8_t>* out,
                                      const OndemandIngestConfig& ingest_config,
                                      OndemandIngestPool* pool) {
  JSONTILES_RETURN_NOT_OK(
      TransformImpl(json_text, out, &ingest_config, &ingest_scratch_));
  // Append the scratch directory as one pool document: two contiguous bulk
  // copies; path_off values stay relative to the document's paths_begin.
  pool->docs.push_back(OndemandIngestPool::Doc{
      pool->leaves.size(), pool->leaves.size() + ingest_scratch_.leaves.size(),
      pool->paths.size()});
  pool->leaves.insert(pool->leaves.end(), ingest_scratch_.leaves.begin(),
                      ingest_scratch_.leaves.end());
  pool->paths.append(ingest_scratch_.paths);
  return Status::OK();
}

}  // namespace jsontiles::json
