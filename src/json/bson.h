// BSON baseline codec (paper §6.9, compared against MongoDB's C++ driver).
//
// Implements the BSON wire format (bsonspec.org): a document is
// [int32 total size][elements...][0x00], each element is
// [1-byte type][cstring key][payload]. Arrays are documents whose keys are
// the decimal indices "0", "1", ....
//
// The property the paper's Figure 20 measures is BSON's *linear-time* member
// lookup: there is no key index, so finding a field scans elements front to
// back (nested documents are skipped in O(1) via their size prefix, but the
// scan over keys is O(n)).

#ifndef JSONTILES_JSON_BSON_H_
#define JSONTILES_JSON_BSON_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "json/dom.h"
#include "util/status.h"

namespace jsontiles::json::bson {

/// Serialize a DOM tree; the root must be an object or an array.
Status Encode(const JsonValue& root, std::vector<uint8_t>* out);

/// Parse a BSON document back into a DOM tree (root decodes as an object).
Result<JsonValue> Decode(const uint8_t* data, size_t size);

/// Linear-scan lookup of a top-level field inside a document. On success
/// `*payload`/`*payload_size`/`*type` describe the raw element payload, which
/// for nested documents can be fed back into FindField. Returns false when
/// the key is absent or the document is malformed.
bool FindField(const uint8_t* doc, size_t doc_size, std::string_view key,
               uint8_t* type, const uint8_t** payload, size_t* payload_size);

/// Decode one element payload (as located by FindField) into a DOM value.
Result<JsonValue> DecodeElement(uint8_t type, const uint8_t* payload,
                                size_t payload_size);

}  // namespace jsontiles::json::bson

#endif  // JSONTILES_JSON_BSON_H_
