// CBOR baseline codec (paper §6.9, compared against the JsonCons C++
// implementation).
//
// Implements RFC 7049 encoding with definite-length containers: major types
// 0/1 (integers), 3 (text), 4 (array), 5 (map), 7 (simple values and
// half/single/double floats). CBOR is byte-compact (the paper's Figure 19
// shows it smallest) but containers carry element *counts*, not byte sizes,
// so random access must walk the encoding value by value — the property
// Figure 20 measures ("accessing keys requires the object to be extracted").

#ifndef JSONTILES_JSON_CBOR_H_
#define JSONTILES_JSON_CBOR_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "json/dom.h"
#include "util/status.h"

namespace jsontiles::json::cbor {

/// Serialize a DOM tree to CBOR (floats stored at the smallest lossless
/// width, integers in the shortest form, as encoders typically do).
Status Encode(const JsonValue& root, std::vector<uint8_t>* out);

/// Parse CBOR bytes back into a DOM tree.
Result<JsonValue> Decode(const uint8_t* data, size_t size);

/// Sequentially scan a top-level map for `key`. `*pos` receives the byte
/// offset of the value. This is O(document) because skipping any container
/// requires walking all of its contents. Returns false when absent.
bool FindMapKey(const uint8_t* data, size_t size, std::string_view key,
                size_t* pos);

/// Decode the single value starting at `data + pos`.
Result<JsonValue> DecodeValueAt(const uint8_t* data, size_t size, size_t pos);

}  // namespace jsontiles::json::cbor

#endif  // JSONTILES_JSON_CBOR_H_
