// On-demand text -> JSONB transformation (the loader's fast parse path,
// "On-Demand JSON", Keiser & Lemire, arXiv 2312.17149).
//
// Stage 1 (structural_index.h) SIMD-scans the whole buffer once and records
// every structural position. Stage 2 (DirectEmitter) walks that index ONCE
// and emits serialized JSONB as it goes — no intermediate node tree, no
// second sizing pass. Container headers (offset width, varint count, offset
// table) depend on the serialized size of the children, which is unknown
// until the container closes, so children are emitted first onto a tape and
// the header is patched in front at close: arrays shift their slot area up
// by the header size, objects additionally reorder slots into sorted
// duplicate-free key order (last occurrence wins, as in the streaming
// parser). Leaf encodings are shared with the streaming parser via
// jsonb_wire.h, so an accepted document is bit-identical to
// JsonbBuilder::Transform's output by construction — and the parser
// differential tests hold the two paths to that contract over the workload
// corpora and a mutation fuzz corpus (with a dedicated ASan/UBSan CI leg).
//
// Tile ingest: the same walk can collect a per-document scalar directory
// (OndemandIngest) — every leaf's encoded key path, JSON type and offset in
// the emitted document, in exactly the order tiles::ForEachKeyPath visits
// leaves of the finished JSONB. The loader uses the directory to build the
// mining transactions and to materialize tile columns without re-navigating
// the document per extracted path.
//
// Fallback contract: on ANY anomaly — stage-1 scan failure, an emitter
// rejection, or the `ondemand.force_fallback` failpoint — the transformer
// re-parses the document with the streaming parser and returns its result
// (deriving the ingest directory from the finished JSONB when requested).
// The streaming parser is therefore the arbiter of acceptance and of error
// statuses; the on-demand path can only ever change how fast an accepted
// document is transformed, never what the caller observes.

#ifndef JSONTILES_JSON_ONDEMAND_H_
#define JSONTILES_JSON_ONDEMAND_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "json/jsonb.h"
#include "json/structural_index.h"
#include "util/status.h"

namespace jsontiles::json {

/// Per-document scalar directory collected during direct emission (and, for
/// fallback documents, derived from the finished JSONB). Entries appear in
/// tiles::ForEachKeyPath order over the emitted document: objects in sorted
/// deduplicated member order, arrays capped at `max_array_elements`, nesting
/// capped at `max_path_depth`.
struct OndemandIngest {
  struct Leaf {
    uint32_t path_off;   // into `paths`
    uint32_t path_len;   // encoded key-path length (tiles/keypath.h format)
    uint32_t value_off;  // offset of the value header within the document
    uint8_t type;        // JsonType of the leaf (post numeric-string detection)
  };
  std::vector<Leaf> leaves;
  std::string paths;  // concatenated encoded key paths
};

/// Flat multi-document directory for bulk loads: one shared leaf array and
/// one shared path arena instead of two heap blocks per document. Keeping a
/// partition's directories in two contiguous allocations matters twice over —
/// the parse loop stops paying per-document malloc/free, and the downstream
/// phases (transaction interning, slot-matrix fill) scan leaves linearly
/// instead of chasing tens of thousands of scattered small objects.
struct OndemandIngestPool {
  struct Doc {
    uint64_t leaf_begin;   // into `leaves`
    uint64_t leaf_end;
    uint64_t paths_begin;  // leaf path_off values are relative to this
  };
  std::vector<OndemandIngest::Leaf> leaves;  // concatenated per-document runs
  std::string paths;                         // concatenated per-document arenas
  std::vector<Doc> docs;

  void Clear() {
    leaves.clear();
    paths.clear();
    docs.clear();
  }
};

/// Borrowed view of one document's leaves (inside a pool or a standalone
/// directory) — how tile extraction receives a tile's directories in
/// permuted order without copying them.
struct OndemandLeafRun {
  const OndemandIngest::Leaf* leaves;
  size_t count;
};

/// Key-path collection bounds, mirroring tiles::TileConfig (the json layer
/// cannot depend on tiles headers; the loader copies the two fields over).
struct OndemandIngestConfig {
  int max_path_depth = 8;
  uint32_t max_array_elements = 4;
};

/// Derive the scalar directory from a finished JSONB document — the reference
/// semantics the emitter's inline collection must match (differential-tested),
/// and the path fallback documents take.
void BuildIngestFromJsonb(JsonbValue doc, const OndemandIngestConfig& config,
                          OndemandIngest* out);

/// Single-pass JSONB emitter over a structural index. Reusable: the tape and
/// all per-frame scratch keep their capacity across calls. Any returned error
/// means "fall back to the streaming parser"; nothing observable is produced.
class DirectEmitter {
 public:
  DirectEmitter() = default;
  explicit DirectEmitter(JsonbBuilder::Options options) : options_(options) {}

  /// On success `out` holds exactly one serialized document, bit-identical to
  /// JsonbBuilder::Transform's output. When `ingest` is non-null the walk also
  /// fills the scalar directory under `ingest_config`'s bounds.
  Status Emit(std::string_view json_text, const StructuralIndex& index,
              std::vector<uint8_t>* out,
              const OndemandIngestConfig* ingest_config, OndemandIngest* ingest);

  /// Slot bytes moved by container-close header patching in the last
  /// successful Emit (the direct path's fixup cost; feeds the
  /// jsonb.ondemand.direct_moved_bytes counter).
  uint64_t moved_bytes() const { return moved_bytes_; }

 private:
  struct Cursor;  // read head over the structural index (ondemand.cc)

  // One emitted object member awaiting its parent's close: where its slot
  // (value + key bytes + u16 key length) lies on the tape, its decoded key,
  // and which ingest leaves its subtree produced.
  struct Member {
    uint64_t slot_off;
    uint64_t slot_len;
    std::string_view key;  // backed by the input text or decoded_keys_
    uint32_t leaf_begin;
    uint32_t leaf_end;
  };

  Status EmitValue(Cursor& cursor, int depth, bool collect, uint64_t* size_out);
  Status CloseObject(size_t member_base, uint64_t start, bool sorted_unique,
                     uint64_t* size_out);
  Status CloseArray(size_t ends_base, uint64_t start, uint32_t frame_leaf_begin,
                    uint64_t* size_out);

  uint8_t* Reserve(size_t n);
  uint64_t AppendString(std::string_view decoded, JsonType* leaf_type);
  bool RecordLeaf(JsonType type, uint64_t value_off);
  std::string_view DecodeKeyLexeme(std::string_view lexeme);

  JsonbBuilder::Options options_;

  // Tape: emitted bytes live in [0, tape_size_). The vector is kept at its
  // high-water size and never shrunk, so steady-state emission performs no
  // zero-initializing resizes.
  std::vector<uint8_t> tape_;
  uint64_t tape_size_ = 0;
  uint64_t moved_bytes_ = 0;

  // Per-frame scratch (stacks shared across the document).
  std::vector<Member> members_;      // object frames
  std::vector<uint64_t> child_ends_; // array frames: cumulative slot ends
  std::vector<uint32_t> sort_scratch_;
  std::vector<uint8_t> slot_scratch_;
  std::vector<OndemandIngest::Leaf> leaf_scratch_;

  // Decoded escaped member keys must stay stable until the enclosing object
  // closes; a deque never relocates elements (same trick as JsonbBuilder).
  std::deque<std::string> decoded_keys_;
  size_t decoded_keys_used_ = 0;
  std::string string_scratch_;  // escaped value strings (used immediately)

  // Ingest collection state (null when the caller wants JSONB only).
  OndemandIngest* ingest_ = nullptr;
  int ingest_depth_cap_ = 0;
  uint32_t ingest_array_cap_ = 0;
  std::string prefix_;  // encoded key path of the value being emitted
  // High-water marks across documents: bulk loads hand in a fresh directory
  // per document, so without a sizing hint its arena and leaf vector would
  // re-grow from zero every time (several small allocations per document —
  // measurable at millions of docs). Reserving the largest size seen so far
  // makes steady-state collection two right-sized allocations per document.
  size_t ingest_leaves_hint_ = 0;
  size_t ingest_paths_hint_ = 0;
};

/// Drop-in replacement for JsonbBuilder in bulk-load loops. Reusable: the
/// structural index and emitter scratch keep their capacity across calls.
class OndemandTransformer {
 public:
  OndemandTransformer() = default;
  explicit OndemandTransformer(JsonbBuilder::Options options)
      : builder_(options), emitter_(options) {}

  /// Same contract as JsonbBuilder::Transform: on success `out` holds exactly
  /// one serialized document, bit-identical to the streaming parser's output.
  Status Transform(std::string_view json_text, std::vector<uint8_t>* out);

  /// Tile-ingest variant: additionally fills `ingest` with the document's
  /// scalar directory (inline on the direct path, derived from the finished
  /// JSONB on fallback — so it is always present when the Status is OK).
  Status Transform(std::string_view json_text, std::vector<uint8_t>* out,
                   const OndemandIngestConfig& ingest_config,
                   OndemandIngest* ingest);

  /// Bulk-load variant: on success appends the document's directory to
  /// `pool` (one Doc entry, leaves and paths concatenated onto the shared
  /// buffers); on failure the pool is untouched, keeping pool->docs parallel
  /// to the accepted documents. The directory is collected into an internal
  /// reusable scratch first, so steady-state loading allocates nothing per
  /// document beyond the pool's amortized growth.
  Status Transform(std::string_view json_text, std::vector<uint8_t>* out,
                   const OndemandIngestConfig& ingest_config,
                   OndemandIngestPool* pool);

  /// Documents served by the direct-emission path since construction.
  uint64_t docs_ondemand() const { return docs_ondemand_; }
  /// Documents that fell back to the streaming parser (including rejects).
  uint64_t docs_fallback() const { return docs_fallback_; }

 private:
  Status TransformImpl(std::string_view json_text, std::vector<uint8_t>* out,
                       const OndemandIngestConfig* ingest_config,
                       OndemandIngest* ingest);

  JsonbBuilder builder_;
  DirectEmitter emitter_;
  StructuralIndex index_;
  OndemandIngest ingest_scratch_;  // pool variant: reused across documents
  uint64_t docs_ondemand_ = 0;
  uint64_t docs_fallback_ = 0;
};

}  // namespace jsontiles::json

#endif  // JSONTILES_JSON_ONDEMAND_H_
