// On-demand text -> JSONB transformation (the loader's fast parse path,
// "On-Demand JSON", Keiser & Lemire, arXiv 2312.17149).
//
// Stage 1 (structural_index.h) SIMD-scans the whole buffer once and records
// every structural position. Stage 2 (JsonbBuilder::TransformIndexed) walks
// that index lazily: strings become single slices between two index entries
// instead of per-character loops, numbers and literals are lexed in place,
// and the node tree / two-pass write machinery is shared with the streaming
// parser — so an accepted document serializes to bytes identical to
// JsonbBuilder::Transform's, by construction.
//
// Fallback contract: on ANY anomaly — stage-1 scan failure, a stage-2
// rejection, or the `ondemand.force_fallback` failpoint — the transformer
// re-parses the document with the streaming parser and returns its result.
// The streaming parser is therefore the arbiter of acceptance and of error
// statuses; the on-demand path can only ever change how fast an accepted
// document is transformed, never what the caller observes. The parser
// differential tests (and the CI leg running them under ASan/UBSan) hold the
// two paths byte-identical over the workload corpora and a mutation fuzz
// corpus.

#ifndef JSONTILES_JSON_ONDEMAND_H_
#define JSONTILES_JSON_ONDEMAND_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "json/jsonb.h"
#include "json/structural_index.h"
#include "util/status.h"

namespace jsontiles::json {

/// Drop-in replacement for JsonbBuilder in bulk-load loops. Reusable: the
/// structural index and builder scratch keep their capacity across calls.
class OndemandTransformer {
 public:
  OndemandTransformer() = default;
  explicit OndemandTransformer(JsonbBuilder::Options options)
      : builder_(options) {}

  /// Same contract as JsonbBuilder::Transform: on success `out` holds exactly
  /// one serialized document, bit-identical to the streaming parser's output.
  Status Transform(std::string_view json_text, std::vector<uint8_t>* out);

  /// Documents served by the indexed path since construction.
  uint64_t docs_ondemand() const { return docs_ondemand_; }
  /// Documents that fell back to the streaming parser (including rejects).
  uint64_t docs_fallback() const { return docs_fallback_; }

 private:
  JsonbBuilder builder_;
  StructuralIndex index_;
  uint64_t docs_ondemand_ = 0;
  uint64_t docs_fallback_ = 0;
};

}  // namespace jsontiles::json

#endif  // JSONTILES_JSON_ONDEMAND_H_
