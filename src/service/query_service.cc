#include "service/query_service.h"

#include <algorithm>
#include <deque>

#include "obs/metrics.h"
#include "util/failpoint.h"
#include "util/logging.h"

namespace jsontiles::service {

namespace {

using Clock = std::chrono::steady_clock;

uint64_t NanosSince(Clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start)
          .count());
}

}  // namespace

/// One admitted, possibly-running query. Owned by the service (linked into
/// its group) from Admit until Release; the Admission handle only points at
/// it. All fields are guarded by the service mutex except `ctx`'s own
/// thread-safe Cancel.
struct ActiveQuery {
  exec::QueryContext* ctx = nullptr;  // null until Attach
  std::string group;                  // group name (group may die before us)
  size_t reserve_bytes = 0;           // admission reserve held on the quota
  Clock::time_point started;          // slot grant time (runaway wall clock)
  bool service_cancelled = false;     // monitor / CancelGroup / DropGroup
};

/// Admission request waiting for a concurrency slot. Lives on the waiting
/// thread's stack; the group's queue holds raw pointers. Guarded by the
/// service mutex.
struct QueryService::Group {
  struct Waiter {
    bool granted = false;
    bool aborted = false;  // group dropped / service stopping
  };

  explicit Group(std::string name_in, ResourceGroupConfig config_in,
                 MemoryBudget* parent)
      : name(std::move(name_in)),
        config(config_in),
        quota(config_in.mem_quota_bytes, parent) {}

  std::string name;
  ResourceGroupConfig config;
  MemoryBudget quota;  // child of the service budget; queries parent here

  size_t running = 0;  // granted slots (running <= config.concurrency)
  std::deque<Waiter*> queue;
  /// Threads inside Admit's queue-wait block. A granted or aborted waiter
  /// that has been woken but not yet reacquired mu_ is in neither `queue`
  /// nor `active`, yet still dereferences this group once it resumes —
  /// drains must not erase the group until this reaches zero.
  size_t waiting = 0;
  std::vector<ActiveQuery*> active;  // admitted queries (subset attached)
  bool dying = false;                // DropGroup in progress: admit nothing

  /// Waiters (slot grants, aborts) and drainers (DropGroup, ~QueryService)
  /// both sleep here.
  std::condition_variable cv;

  // Lifetime totals, mirrored into obs as "service.<name>.*".
  uint64_t admitted = 0;
  uint64_t rejected = 0;
  uint64_t timed_out = 0;
  uint64_t cancelled = 0;
  uint64_t clamped = 0;
  uint64_t defaulted = 0;

  void PublishGauges() const {
    obs::GroupGauge(name, "running")->Set(static_cast<double>(running));
    obs::GroupGauge(name, "queued")->Set(static_cast<double>(queue.size()));
    obs::GroupGauge(name, "mem_used_bytes")
        ->Set(static_cast<double>(quota.used()));
  }
};

Admission& Admission::operator=(Admission&& other) noexcept {
  if (this != &other) {
    Release();
    service_ = std::exchange(other.service_, nullptr);
    query_ = std::exchange(other.query_, nullptr);
    options_ = std::move(other.options_);
    queue_wait_nanos_ = other.queue_wait_nanos_;
    clamped_ = other.clamped_;
  }
  return *this;
}

void Admission::Attach(exec::QueryContext* ctx) {
  JSONTILES_DCHECK(valid());
  ctx->resource_group = query_->group;
  ctx->queue_wait_nanos = queue_wait_nanos_;
  std::lock_guard<std::mutex> lock(service_->mu_);
  JSONTILES_DCHECK(query_->ctx == nullptr);
  query_->ctx = ctx;
}

void Admission::Release() {
  if (service_ == nullptr) return;
  service_->ReleaseQuery(this);
  service_ = nullptr;
  query_ = nullptr;
}

QueryService::QueryService(ServiceConfig config)
    : config_(std::move(config)), global_budget_(config_.total_mem_bytes),
      disk_budget_(config_.spill_disk_bytes) {
  monitor_ = std::thread([this] { MonitorLoop(); });
}

QueryService::~QueryService() {
  std::unique_lock<std::mutex> lock(mu_);
  stopping_ = true;
  for (auto& [name, group] : groups_) {
    group->dying = true;
    for (Group::Waiter* w : group->queue) w->aborted = true;
    group->queue.clear();
    for (ActiveQuery* q : group->active) {
      if (q->ctx != nullptr && !q->service_cancelled) {
        q->service_cancelled = true;
        group->cancelled++;
        obs::GroupCounter(name, "cancelled")->Increment();
        q->ctx->Cancel(Status::Cancelled("query service shutting down"));
      }
    }
    group->cv.notify_all();
  }
  for (auto& [name, group] : groups_) {
    // Same drain predicate as DropGroupLocked: granted-but-not-yet-resumed
    // waiters still hold a slot and dereference the group once they wake.
    group->cv.wait(lock, [&g = *group] {
      return g.active.empty() && g.running == 0 && g.waiting == 0;
    });
  }
  lock.unlock();
  monitor_cv_.notify_all();
  monitor_.join();
}

Status QueryService::CreateGroup(const std::string& name,
                                 ResourceGroupConfig config) {
  if (name.empty()) {
    return Status::InvalidArgument("resource group name must not be empty");
  }
  if (config.concurrency == 0) {
    return Status::InvalidArgument(
        "resource group concurrency must be at least 1");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (stopping_) return Status::Internal("query service shutting down");
  auto [it, inserted] = groups_.emplace(
      name, std::make_unique<Group>(name, config, &global_budget_));
  if (!inserted) {
    return Status::InvalidArgument("resource group '" + name +
                                   "' already exists");
  }
  it->second->PublishGauges();
  return Status::OK();
}

Status QueryService::DropGroup(const std::string& name) {
  std::unique_lock<std::mutex> lock(mu_);
  return DropGroupLocked(name, lock);
}

Status QueryService::DropGroupLocked(const std::string& name,
                                     std::unique_lock<std::mutex>& lock) {
  auto it = groups_.find(name);
  if (it == groups_.end() || it->second->dying) {
    return Status::NotFound("resource group '" + name + "' does not exist");
  }
  Group* group = it->second.get();
  group->dying = true;
  for (Group::Waiter* w : group->queue) w->aborted = true;
  group->queue.clear();
  for (ActiveQuery* q : group->active) {
    if (q->ctx != nullptr && !q->service_cancelled) {
      q->service_cancelled = true;
      group->cancelled++;
      obs::GroupCounter(name, "cancelled")->Increment();
      q->ctx->Cancel(
          Status::Cancelled("resource group '" + name + "' dropped"));
    }
  }
  group->cv.notify_all();
  // Admitted-but-unattached queries cannot be cancelled yet; their Attach
  // will run against a dying group (harmless — the context outlives us via
  // the admission contract) and Release drains them like any other. Drain
  // `running` and `waiting` too: a waiter that was just granted a slot (or
  // aborted) but has not yet reacquired mu_ is in neither `queue` nor
  // `active`, and erasing the group before it resumes would leave it
  // dereferencing freed memory.
  group->cv.wait(lock, [group] {
    return group->active.empty() && group->running == 0 &&
           group->waiting == 0;
  });
  group->PublishGauges();
  groups_.erase(name);  // `it` may be stale after unlocked waits
  return Status::OK();
}

bool QueryService::HasGroup(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = groups_.find(name);
  return it != groups_.end() && !it->second->dying;
}

std::vector<std::string> QueryService::GroupNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(groups_.size());
  for (const auto& [name, group] : groups_) {
    if (!group->dying) names.push_back(name);
  }
  return names;
}

Result<GroupSnapshot> QueryService::Snapshot(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = groups_.find(name);
  if (it == groups_.end()) {
    return Status::NotFound("resource group '" + name + "' does not exist");
  }
  const Group& g = *it->second;
  GroupSnapshot snap;
  snap.running = g.running;
  snap.queued = g.queue.size();
  snap.concurrency = g.config.concurrency;
  snap.mem_quota_bytes = g.config.mem_quota_bytes;
  snap.mem_used_bytes = g.quota.used();
  snap.admitted = g.admitted;
  snap.rejected = g.rejected;
  snap.timed_out = g.timed_out;
  snap.cancelled = g.cancelled;
  snap.clamped = g.clamped;
  snap.defaulted = g.defaulted;
  return snap;
}

Result<Admission> QueryService::Admit(const std::string& group_name,
                                      exec::ExecOptions options) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = groups_.find(group_name);
  if (it == groups_.end() || it->second->dying || stopping_) {
    return Status::NotFound("resource group '" + group_name +
                            "' does not exist");
  }
  Group* group = it->second.get();

  if (JSONTILES_FAILPOINT_FIRES("service.admit")) {
    group->rejected++;
    obs::GroupCounter(group_name, "rejected")->Increment();
    return Status::Internal("failpoint 'service.admit' fired");
  }

  // --- Concurrency slot: grab one, or wait in the bounded FIFO queue. ---
  uint64_t queue_wait_nanos = 0;
  if (group->running < group->config.concurrency && group->queue.empty()) {
    group->running++;
  } else {
    if (group->queue.size() >= group->config.max_queue) {
      group->rejected++;
      obs::GroupCounter(group_name, "rejected")->Increment();
      return Status::ResourceExhausted(
          "resource group '" + group_name + "' queue full (" +
          std::to_string(group->config.max_queue) + " waiting)");
    }
    Group::Waiter waiter;
    group->queue.push_back(&waiter);
    group->waiting++;
    group->PublishGauges();
    const Clock::time_point enqueued = Clock::now();
    const auto deadline = enqueued + std::chrono::milliseconds(
                                         group->config.queue_timeout_ms);
    group->cv.wait_until(lock, deadline, [&waiter] {
      return waiter.granted || waiter.aborted;
    });
    // From here we hold mu_ until Admit returns, so a drain (which needs
    // mu_ to evaluate its predicate) can no longer slip in between us
    // waking and us touching the group — drop the drain guard and tell
    // sleeping drainers to re-check.
    group->waiting--;
    group->cv.notify_all();
    queue_wait_nanos = NanosSince(enqueued);
    if (!waiter.granted) {
      // Timed out or aborted: unlink ourselves (grant may still race in
      // between the predicate check and re-lock — re-check afterwards).
      auto pos = std::find(group->queue.begin(), group->queue.end(), &waiter);
      if (pos != group->queue.end()) group->queue.erase(pos);
      if (!waiter.granted) {
        group->PublishGauges();
        if (waiter.aborted) {
          return Status::Cancelled("resource group '" + group_name +
                                   "' dropped while queued");
        }
        group->timed_out++;
        obs::GroupCounter(group_name, "timed_out")->Increment();
        return Status::ResourceExhausted(
            "admission into resource group '" + group_name +
            "' timed out after " +
            std::to_string(group->config.queue_timeout_ms) + " ms");
      }
    }
    // Granted: the releasing query already transferred its slot to us
    // (running stays constant across the hand-off).
    if (group->dying) {
      // Dropped between grant and wake. Give the slot back and bail.
      group->running--;
      group->cv.notify_all();
      return Status::Cancelled("resource group '" + group_name +
                               "' dropped while queued");
    }
  }

  // --- Admission reserve: a per-query memory floor held on the quota. ---
  const size_t reserve = group->config.admission_reserve_bytes;
  bool reserve_failed = JSONTILES_FAILPOINT_FIRES("service.quota_charge");
  if (!reserve_failed && reserve > 0 && !group->quota.TryCharge(reserve)) {
    reserve_failed = true;
  }
  if (reserve_failed) {
    // Undo the slot grant and hand the slot to the next waiter.
    if (!group->queue.empty()) {
      Group::Waiter* next = group->queue.front();
      group->queue.pop_front();
      next->granted = true;
      group->cv.notify_all();
    } else {
      group->running--;
    }
    group->rejected++;
    obs::GroupCounter(group_name, "rejected")->Increment();
    group->PublishGauges();
    return Status::ResourceExhausted(
        "admission reserve of " + std::to_string(reserve) +
        " bytes refused by resource group '" + group_name + "' quota");
  }

  // --- Clamp the per-query limit to the quota's remaining headroom, so the
  // sum of admitted per-query limits can never over-commit the group
  // (satellite: mem_limit/group-quota interaction). remaining() reflects the
  // reserves of every admitted query, including ours. A remaining of 0 under
  // a limited quota must not clamp to 0 — that means "unlimited" — so the
  // floor is one byte: the first operator charge then refuses and spills.
  Admission admission;
  admission.options_ = std::move(options);
  if (group->quota.limit() != MemoryBudget::kUnlimited) {
    const size_t headroom = std::max<size_t>(group->quota.remaining(), 1);
    size_t& requested = admission.options_.mem_limit_bytes;
    if (requested > headroom) {
      // Over-ask: the caller's explicit limit exceeded the quota headroom —
      // this is the over-admission regression the `clamped` counter tracks.
      requested = headroom;
      admission.clamped_ = true;
      group->clamped++;
      obs::GroupCounter(group_name, "mem_limit_clamped")->Increment();
    } else if (requested == 0) {
      // Unlimited request under a limited quota: default it to the headroom
      // so admitted limits stay within the group, but count it separately —
      // it is routine, not a caller over-ask.
      requested = headroom;
      group->defaulted++;
      obs::GroupCounter(group_name, "mem_limit_defaulted")->Increment();
    }
  }
  admission.options_.budget_parent = &group->quota;
  admission.options_.spill_disk = &disk_budget_;
  if (admission.options_.spill_dir.empty()) {
    admission.options_.spill_dir = config_.spill_dir;
  }

  auto* query = new ActiveQuery();
  query->group = group_name;
  query->reserve_bytes = reserve;
  query->started = Clock::now();
  group->active.push_back(query);
  group->admitted++;
  obs::GroupCounter(group_name, "admitted")->Increment();
  group->PublishGauges();

  admission.service_ = this;
  admission.query_ = query;
  admission.queue_wait_nanos_ = queue_wait_nanos;
  return admission;
}

void QueryService::ReleaseQuery(Admission* admission) {
  ActiveQuery* query = admission->query_;
  std::lock_guard<std::mutex> lock(mu_);
  if (query->ctx != nullptr) {
    obs::GroupCounter(query->group, "spilled_bytes")
        ->Add(static_cast<int64_t>(query->ctx->spilled_bytes));
  }
  auto it = groups_.find(query->group);
  // The group always outlives its admitted queries: DropGroup drains before
  // erasing, and the destructor does the same.
  JSONTILES_DCHECK(it != groups_.end());
  Group* group = it->second.get();
  if (query->reserve_bytes > 0) group->quota.Release(query->reserve_bytes);
  auto pos = std::find(group->active.begin(), group->active.end(), query);
  JSONTILES_DCHECK(pos != group->active.end());
  group->active.erase(pos);
  delete query;
  // Hand the slot to the next waiter, or free it.
  if (!group->dying && !group->queue.empty()) {
    Group::Waiter* next = group->queue.front();
    group->queue.pop_front();
    next->granted = true;
  } else {
    group->running--;
  }
  group->PublishGauges();
  group->cv.notify_all();  // waiters and drainers share the cv
}

Status QueryService::Submit(const std::string& group,
                            exec::ExecOptions options, const QueryFn& fn) {
  auto admitted = Admit(group, std::move(options));
  JSONTILES_RETURN_NOT_OK(admitted.status());
  Admission admission = admitted.MoveValueOrDie();
  exec::QueryContext ctx(admission.options());
  admission.Attach(&ctx);
  Status st = fn(ctx);
  Status cancel_st = ctx.ConsumeStatus();
  // Release (and thus detach from the monitor) strictly before `ctx` dies.
  admission.Release();
  if (!st.ok()) return st;
  return cancel_st;
}

void QueryService::CancelGroup(const std::string& group_name, Status reason) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = groups_.find(group_name);
  if (it == groups_.end()) return;
  Group* group = it->second.get();
  for (ActiveQuery* q : group->active) {
    if (q->ctx != nullptr && !q->service_cancelled) {
      q->service_cancelled = true;
      group->cancelled++;
      obs::GroupCounter(group_name, "cancelled")->Increment();
      q->ctx->Cancel(reason);
    }
  }
}

void QueryService::MonitorLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_) {
    monitor_cv_.wait_for(
        lock, std::chrono::milliseconds(config_.monitor_period_ms));
    if (stopping_) break;
    for (auto& [name, group] : groups_) {
      if (group->dying) continue;
      const auto& cfg = group->config;
      // Wall-clock runaways: cancel every attached over-deadline query.
      if (cfg.runaway_wall_ms > 0) {
        for (ActiveQuery* q : group->active) {
          if (q->ctx == nullptr || q->service_cancelled) continue;
          const uint64_t wall_ms = NanosSince(q->started) / 1000000;
          if (wall_ms < cfg.runaway_wall_ms) continue;
          q->service_cancelled = true;
          group->cancelled++;
          obs::GroupCounter(name, "cancelled")->Increment();
          q->ctx->Cancel(Status::Cancelled(
              "runaway query cancelled: ran " + std::to_string(wall_ms) +
              " ms, resource group '" + name + "' allows " +
              std::to_string(cfg.runaway_wall_ms) + " ms"));
        }
      }
      // Memory-watermark runaways: when the group is above the watermark,
      // cancel its single largest attached consumer — shedding one tenant
      // restores headroom for the rest.
      if (cfg.runaway_mem_fraction > 0 && cfg.mem_quota_bytes > 0 &&
          static_cast<double>(group->quota.used()) >
              cfg.runaway_mem_fraction *
                  static_cast<double>(cfg.mem_quota_bytes)) {
        ActiveQuery* biggest = nullptr;
        size_t biggest_used = 0;
        for (ActiveQuery* q : group->active) {
          if (q->ctx == nullptr || q->service_cancelled) continue;
          const size_t used = q->ctx->budget()->used();
          if (biggest == nullptr || used > biggest_used) {
            biggest = q;
            biggest_used = used;
          }
        }
        if (biggest != nullptr) {
          biggest->service_cancelled = true;
          group->cancelled++;
          obs::GroupCounter(name, "cancelled")->Increment();
          biggest->ctx->Cancel(Status::Cancelled(
              "runaway query cancelled: resource group '" + name +
              "' above memory watermark (" +
              std::to_string(group->quota.used()) + " of " +
              std::to_string(cfg.mem_quota_bytes) + " bytes used)"));
        }
      }
    }
  }
}

}  // namespace jsontiles::service
