// Multi-tenant query service: admission control, resource groups, runaway
// detection, and a shared spill-disk governor.
//
// Everything below the service executes one query at a time; serving many
// tenants concurrently over shared relations needs the Greenplum-style
// resource-group layer: each query is admitted into a named group that owns
// (a) concurrency slots with a bounded FIFO wait queue + timeout, and (b) a
// memory quota carved as a child of the service-wide MemoryBudget. The
// admitted query's own budget becomes a grandchild of the global budget
// (query -> group -> service), so when a group's tenants collectively reach
// the quota, operator charges are refused at the group level and the engine
// spills to disk — concurrency degrades to disk bandwidth instead of OOM. A
// monitor thread cancels runaway queries (wall-clock deadline, group memory
// watermark) through the existing QueryContext::Cancel plumbing, and one
// DiskBudget caps the aggregate temp-disk of all concurrently spilling
// queries.
//
// Thread model: queries execute on their *caller's* thread (closed-loop
// clients block in Submit, exactly like a backend process waiting on
// Greenplum's resgroup slot); the service only owns the monitor thread. One
// service-wide mutex guards the group map and every group's admission state —
// admission is cold-path (two lock acquisitions per query), the per-query
// hot path never touches it.
//
// Failpoints: "service.admit" (slot grant), "service.quota_charge" (carving
// the per-query budget / admission reserve), "service.spill_reserve" (inside
// DiskBudget::TryReserve). Each fault fails only the affected query with a
// clean Status; the group and the service stay usable.

#ifndef JSONTILES_SERVICE_QUERY_SERVICE_H_
#define JSONTILES_SERVICE_QUERY_SERVICE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "exec/scan.h"
#include "util/resource_governor.h"
#include "util/status.h"

namespace jsontiles::service {

struct ResourceGroupConfig {
  /// Queries of this group that may run concurrently.
  size_t concurrency = 4;
  /// Admission requests allowed to wait for a slot; one more is rejected
  /// immediately with ResourceExhausted. 0 = never queue (reject when full).
  size_t max_queue = 16;
  /// How long an admission request may wait in the queue before it gives up
  /// with ResourceExhausted.
  uint64_t queue_timeout_ms = 10000;
  /// Memory quota of the group, carved as a child of the service budget.
  /// 0 = unlimited (the service-wide limit still applies).
  size_t mem_quota_bytes = 0;
  /// Memory charged against the quota for the lifetime of each admitted
  /// query — a guaranteed floor in the spirit of Greenplum's per-query
  /// memory slice. A refused reserve rejects the admission cleanly.
  /// 0 = admit without reserving.
  size_t admission_reserve_bytes = 0;
  /// Cancel a query running longer than this (0 = no wall-clock policy).
  uint64_t runaway_wall_ms = 0;
  /// When group memory use exceeds this fraction of the quota, cancel the
  /// group's largest consumer (0 = no memory watermark policy). Requires
  /// mem_quota_bytes > 0.
  double runaway_mem_fraction = 0.0;
};

struct ServiceConfig {
  /// Service-wide memory budget (root of every group quota). 0 = unlimited.
  size_t total_mem_bytes = 0;
  /// Aggregate temp-disk cap across all concurrently spilling queries.
  /// 0 = unlimited.
  uint64_t spill_disk_bytes = 0;
  /// Spill directory handed to admitted queries that did not set their own.
  std::string spill_dir;
  /// Runaway-monitor tick. The monitor only scans registered queries, so a
  /// short period is cheap.
  uint64_t monitor_period_ms = 5;
};

/// Point-in-time view of one group (tests, SHOW RESOURCE GROUPS).
struct GroupSnapshot {
  size_t running = 0;
  size_t queued = 0;
  size_t concurrency = 0;
  size_t mem_quota_bytes = 0;
  size_t mem_used_bytes = 0;
  uint64_t admitted = 0;
  uint64_t rejected = 0;   // queue full + reserve refused
  uint64_t timed_out = 0;  // gave up waiting
  uint64_t cancelled = 0;  // runaway / CancelGroup / DropGroup
  uint64_t clamped = 0;    // explicit per-query mem limit over-asked the quota
  uint64_t defaulted = 0;  // unlimited request defaulted to quota headroom
};

class QueryService;

/// One admitted query: a movable RAII slot in its resource group. Obtain via
/// QueryService::Admit, build a QueryContext from options(), Attach it so the
/// runaway monitor can see the query, and Release when execution finishes
/// (the destructor also releases). The attached context must stay alive
/// until Release/destruction; result rows referencing its arenas may outlive
/// the admission, but no further queries may execute on the context after
/// release — its budget parent points into the group, which may be dropped.
class Admission {
 public:
  Admission() = default;
  ~Admission() { Release(); }

  Admission(Admission&& other) noexcept { *this = std::move(other); }
  Admission& operator=(Admission&& other) noexcept;
  Admission(const Admission&) = delete;
  Admission& operator=(const Admission&) = delete;

  bool valid() const { return service_ != nullptr; }

  /// Execution options for the admitted query: the caller's options with the
  /// memory limit clamped to the group's remaining quota, the budget parent
  /// pointed at the group quota, and the shared spill governor attached.
  const exec::ExecOptions& options() const { return options_; }

  /// Queue wait endured by this admission.
  uint64_t queue_wait_nanos() const { return queue_wait_nanos_; }
  /// True when the caller's mem_limit_bytes exceeded the group's remaining
  /// quota and was clamped down (satellite: no over-admission).
  bool clamped() const { return clamped_; }

  /// Register the query's context for runaway detection and cancellation,
  /// and stamp its resource_group / queue_wait fields (EXPLAIN ANALYZE
  /// footer). Call at most once, before executing.
  void Attach(exec::QueryContext* ctx);

  /// Detach the context, return the admission reserve, free the slot and
  /// hand it to the next waiter. Idempotent.
  void Release();

 private:
  friend class QueryService;

  QueryService* service_ = nullptr;
  struct ActiveQuery* query_ = nullptr;  // owned by the service until Release
  exec::ExecOptions options_;
  uint64_t queue_wait_nanos_ = 0;
  bool clamped_ = false;
};

class QueryService {
 public:
  explicit QueryService(ServiceConfig config = {});
  /// Drops every group (cancelling running queries, aborting waiters) and
  /// stops the monitor. Blocks until all admitted queries released.
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Register a group. InvalidArgument when the name already exists.
  Status CreateGroup(const std::string& name, ResourceGroupConfig config);

  /// Tear a group down: waiters abort with a clean Status, running queries
  /// are cancelled, and the call blocks until the group drains, then removes
  /// it. NotFound when absent or already being dropped. Queries admitted
  /// before the drop still return their (cancelled) Status normally.
  Status DropGroup(const std::string& name);

  bool HasGroup(const std::string& name) const;
  std::vector<std::string> GroupNames() const;
  Result<GroupSnapshot> Snapshot(const std::string& name) const;

  /// Admit one query into `group`: waits for a concurrency slot (bounded
  /// queue + timeout), clamps options.mem_limit_bytes to the group's
  /// remaining quota, points the budget parent at the quota and attaches the
  /// spill governor. Errors are clean per-query statuses: NotFound (unknown
  /// or dropping group), ResourceExhausted (queue full / timeout / reserve
  /// refused), Internal (failpoints).
  Result<Admission> Admit(const std::string& group, exec::ExecOptions options);

  /// Convenience closed-loop path: admit, build a QueryContext on the
  /// caller's stack, run `fn`, surface any cancellation Status, release.
  /// Row sets referencing the context die with it — canonicalize or copy
  /// results inside `fn`.
  using QueryFn = std::function<Status(exec::QueryContext&)>;
  Status Submit(const std::string& group, exec::ExecOptions options,
                const QueryFn& fn);

  /// Cancel every running query of `group` with `reason` (chaos testing,
  /// administrative kill). Queued admissions are not aborted — they will run
  /// later. No-op on unknown group.
  void CancelGroup(const std::string& group, Status reason);

  /// Service-wide memory budget (parent of every group quota).
  MemoryBudget* global_budget() { return &global_budget_; }
  /// Shared temp-disk governor attached to every admitted query.
  DiskBudget* disk_budget() { return &disk_budget_; }

  const ServiceConfig& config() const { return config_; }

 private:
  struct Group;

  friend class Admission;

  /// Admission::Release body. Safe against concurrent monitor scans: the
  /// query is unlinked from the group under the service mutex before the
  /// caller may destroy its context.
  void ReleaseQuery(Admission* admission);

  void MonitorLoop();
  /// Drop-group body; `lock` holds mu_.
  Status DropGroupLocked(const std::string& name,
                         std::unique_lock<std::mutex>& lock);

  ServiceConfig config_;
  MemoryBudget global_budget_;
  DiskBudget disk_budget_;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Group>> groups_;
  bool stopping_ = false;

  std::condition_variable monitor_cv_;
  std::thread monitor_;
};

}  // namespace jsontiles::service

#endif  // JSONTILES_SERVICE_QUERY_SERVICE_H_
