#include "dist/worker.h"

#include <errno.h>
#include <stdio.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "dist/wire.h"
#include "exec/scan.h"
#include "storage/shard.h"
#include "util/failpoint.h"

namespace jsontiles::dist {

namespace {

/// Cut row batches at roughly this much encoded payload so the coordinator
/// can overlap decode with worker-side scanning and no frame balloons.
constexpr size_t kBatchBytes = 256u << 10;

/// A worker waits (nearly) indefinitely for the next fragment between
/// queries — being idle is its normal state.
constexpr int kIdleTimeoutMs = 3600 * 1000;

/// But once a frame's first byte has arrived, the rest must follow promptly:
/// a coordinator that opens a header and stalls is cut off here instead of
/// riding the idle budget for an hour.
constexpr int kFrameTimeoutMs = 60 * 1000;

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

size_t EstimatedRowBytes(const exec::Row& row) {
  size_t bytes = 4;
  for (const exec::Value& v : row) {
    bytes += 12;
    if (v.type == exec::ValueType::kString) bytes += v.s.size();
  }
  return bytes;
}

/// Worker state for one coordinator connection.
struct WorkerState {
  int fd = -1;
  storage::ShardManifestInfo manifest;
  std::vector<size_t> assigned;  // ascending shard indices
  std::vector<std::unique_ptr<storage::Relation>> relations;  // parallel
  uint64_t num_threads = 1;

  const storage::Relation* ShardRelation(size_t shard_index) const {
    auto it = std::lower_bound(assigned.begin(), assigned.end(), shard_index);
    if (it == assigned.end() || *it != shard_index) return nullptr;
    return relations[static_cast<size_t>(it - assigned.begin())].get();
  }
};

Status SendError(WorkerState& state, const Status& error) {
  std::vector<uint8_t> payload;
  EncodeStatus(error, &payload);
  return WriteFrame(state.fd, FrameType::kError, payload, nullptr);
}

/// All result frames (RowBatch / AggResult / FragmentDone) funnel through
/// here so the chaos harness can SIGKILL the worker at a randomized frame
/// boundary: `dist.worker_crash_frame=nth:N` dies exactly before this
/// process's N-th result frame reaches the wire.
Status WriteResultFrame(WorkerState& state, FrameType type,
                        const std::vector<uint8_t>& payload) {
  if (JSONTILES_FAILPOINT_FIRES("dist.worker_crash_frame")) {
    _exit(3);  // simulated hard crash at a frame boundary
  }
  return WriteFrame(state.fd, type, payload, nullptr);
}

Status HandleOpen(WorkerState& state, const std::vector<uint8_t>& payload) {
  OpenMsg open;
  JSONTILES_RETURN_NOT_OK(DecodeOpen(payload, &open));
  auto manifest = storage::ReadShardManifest(open.manifest_path);
  JSONTILES_RETURN_NOT_OK(manifest.status());
  // Build into locals and commit only on success: a failed (re-)open — the
  // coordinator re-opens live workers mid-query when shards migrate off a
  // dead one — must leave the previous assignment fully usable.
  std::vector<size_t> assigned;
  for (uint64_t s : open.shards) {
    if (s >= manifest.ValueOrDie().shard_count()) {
      return Status::InvalidArgument("assigned shard index out of range");
    }
    assigned.push_back(static_cast<size_t>(s));
  }
  auto relations =
      storage::OpenShardSubset(manifest.ValueOrDie(), assigned);
  JSONTILES_RETURN_NOT_OK(relations.status());
  state.manifest = std::move(manifest.ValueOrDie());
  state.assigned = std::move(assigned);
  state.relations = std::move(relations.ValueOrDie());
  state.num_threads = open.num_threads;

  OpenOkMsg ok;
  for (const auto& rel : state.relations) ok.shard_rows.push_back(rel->num_rows());
  std::vector<uint8_t> reply;
  EncodeOpenOk(ok, &reply);
  return WriteFrame(state.fd, FrameType::kOpenOk, reply, nullptr);
}

/// Execute one fragment end to end; frames written: row batches / an
/// aggregate partial, then FragmentDone. A Status return here means the
/// fragment failed *before* any result frame went out, so the caller can
/// still report it as a clean kFragmentError.
Status RunFragment(WorkerState& state, const FragmentMsg& frag, bool is_agg) {
  JSONTILES_FAILPOINT_RETURN("dist.worker_exec");
  if (JSONTILES_FAILPOINT_FIRES("dist.worker_crash")) {
    _exit(3);  // simulated hard crash: no error frame, no cleanup
  }
  if (JSONTILES_FAILPOINT_FIRES("dist.worker_hang")) {
    // Simulated wedge (deadlock, runaway loop): alive but silent. The
    // coordinator's idle-liveness deadline must kill and replace us.
    while (true) std::this_thread::sleep_for(std::chrono::seconds(1));
  }
  const uint64_t start_nanos = NowNanos();

  const storage::Relation* shard = state.ShardRelation(frag.shard_index);
  if (shard == nullptr) {
    return Status::InvalidArgument("fragment names an unassigned shard " +
                                   std::to_string(frag.shard_index));
  }
  const storage::Relation* rel = shard;
  if (frag.is_side) {
    rel = shard->FindSideRelation(frag.side_path);
    if (rel == nullptr) {
      return Status::InvalidArgument(
          "shard " + std::to_string(frag.shard_index) +
          " has no side relation for the fragment's array path");
    }
  }

  exec::ExecOptions options;
  options.num_threads = static_cast<size_t>(state.num_threads);
  options.enable_tile_skipping = frag.enable_tile_skipping;
  options.enable_vectorized = frag.enable_vectorized;
  exec::QueryContext ctx(options);

  exec::ScanSpec spec;
  spec.relation = rel;
  spec.rowid_base = storage::ShardedRelation::RowIdBase(frag.shard_index);
  spec.accesses = frag.accesses;
  spec.filter = frag.filter;
  spec.null_rejecting_paths = frag.null_rejecting_paths;
  spec.range_predicates = frag.range_predicates;

  exec::RowSet rows = exec::ScanExec(spec, ctx);
  JSONTILES_RETURN_NOT_OK(ctx.ConsumeStatus());

  FragmentDoneMsg done;
  done.fragment_id = frag.fragment_id;
  done.epoch = frag.epoch;
  done.tiles_scanned = ctx.tiles_scanned;
  done.tiles_skipped = ctx.tiles_skipped;

  std::vector<uint8_t> payload;
  if (JSONTILES_FAILPOINT_FIRES("dist.worker_stale_frame")) {
    // Simulated late frame from a superseded dispatch: a result frame whose
    // epoch does not match the current one. The coordinator must reject it
    // (dist.frames_rejected_stale) without disturbing the real results.
    if (is_agg) {
      exec::AggGroupMap stale;
      exec::AccumulateRows(rows, frag.group_by, frag.aggs, ctx.arena(0),
                           &stale);
      EncodeAggPartial(frag.fragment_id, frag.epoch + 1000, stale, frag.aggs,
                       &payload);
      JSONTILES_RETURN_NOT_OK(
          WriteResultFrame(state, FrameType::kAggResult, payload));
    } else {
      payload.clear();
      EncodeRowBatch(frag.fragment_id, frag.epoch + 1000, rows, 0,
                     std::min<size_t>(rows.size(), 1), &payload);
      JSONTILES_RETURN_NOT_OK(
          WriteResultFrame(state, FrameType::kRowBatch, payload));
    }
    payload.clear();
  }
  if (is_agg) {
    exec::AggGroupMap groups;
    exec::AccumulateRows(rows, frag.group_by, frag.aggs, ctx.arena(0),
                         &groups);
    size_t num_groups = 0;
    for (const auto& [h, bucket] : groups) num_groups += bucket.size();
    done.rows_out = num_groups;
    if (!groups.empty()) {
      EncodeAggPartial(frag.fragment_id, frag.epoch, groups, frag.aggs,
                       &payload);
      JSONTILES_RETURN_NOT_OK(
          WriteResultFrame(state, FrameType::kAggResult, payload));
    }
  } else {
    done.rows_out = rows.size();
    size_t begin = 0;
    while (begin < rows.size()) {
      size_t end = begin;
      size_t est = 0;
      while (end < rows.size() && (end == begin || est < kBatchBytes)) {
        est += EstimatedRowBytes(rows[end]);
        end++;
      }
      payload.clear();
      EncodeRowBatch(frag.fragment_id, frag.epoch, rows, begin, end,
                     &payload);
      JSONTILES_RETURN_NOT_OK(
          WriteResultFrame(state, FrameType::kRowBatch, payload));
      begin = end;
    }
  }

  done.wall_nanos = NowNanos() - start_nanos;
  payload.clear();
  EncodeFragmentDone(done, &payload);
  return WriteResultFrame(state, FrameType::kFragmentDone, payload);
}

}  // namespace

Status ParseFailpointArg(const std::string& arg) {
  const size_t eq = arg.find('=');
  if (eq == std::string::npos || eq == 0) {
    return Status::InvalidArgument("expected name=spec: " + arg);
  }
  const std::string name = arg.substr(0, eq);
  const std::string spec = arg.substr(eq + 1);
  if (spec == "always") {
    failpoint::Enable(name, failpoint::Spec::Always());
    return Status::OK();
  }
  const auto parse_count = [&](const std::string& prefix,
                               uint64_t* n) -> bool {
    if (spec.rfind(prefix, 0) != 0) return false;
    const std::string digits = spec.substr(prefix.size());
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      return false;
    }
    *n = std::strtoull(digits.c_str(), nullptr, 10);
    return *n > 0;
  };
  uint64_t n = 0;
  if (parse_count("nth:", &n)) {
    failpoint::Enable(name, failpoint::Spec::Nth(n));
    return Status::OK();
  }
  if (parse_count("everyk:", &n)) {
    failpoint::Enable(name, failpoint::Spec::EveryK(n));
    return Status::OK();
  }
  return Status::InvalidArgument("unknown failpoint spec: " + arg);
}

int RunWorker(const WorkerOptions& options) {
  struct sockaddr_un addr;
  if (options.socket_path.empty() ||
      options.socket_path.size() >= sizeof(addr.sun_path)) {
    fprintf(stderr, "jsontiles_workerd: bad socket path\n");
    return 2;
  }
  int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    perror("jsontiles_workerd: socket");
    return 1;
  }
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, options.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  ::unlink(options.socket_path.c_str());
  if (::bind(listen_fd, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd, 1) != 0) {
    perror("jsontiles_workerd: bind/listen");
    ::close(listen_fd);
    return 1;
  }
  int fd = ::accept(listen_fd, nullptr, nullptr);
  ::close(listen_fd);
  if (fd < 0) {
    perror("jsontiles_workerd: accept");
    return 1;
  }

  WorkerState state;
  state.fd = fd;

  HelloMsg hello;
  hello.pid = static_cast<int64_t>(getpid());
  std::vector<uint8_t> payload;
  EncodeHello(hello, &payload);
  if (!WriteFrame(fd, FrameType::kHello, payload, nullptr).ok()) {
    ::close(fd);
    return 1;
  }

  int exit_code = 0;
  while (true) {
    FrameType type;
    Status st =
        ReadFrame(fd, kIdleTimeoutMs, kFrameTimeoutMs, &type, &payload,
                  nullptr);
    if (!st.ok()) {
      // Clean EOF = coordinator went away (its destructor closes first on
      // error paths); anything else is a protocol/transport failure.
      exit_code = st.code() == StatusCode::kOutOfRange ? 0 : 1;
      if (exit_code != 0) {
        fprintf(stderr, "jsontiles_workerd: %s\n", st.ToString().c_str());
      }
      break;
    }
    if (type == FrameType::kShutdown) {
      if (JSONTILES_FAILPOINT_FIRES("dist.worker_ignore_shutdown")) {
        // Simulated unresponsive worker: never exits on its own. The
        // coordinator's teardown must escalate to SIGKILL and still reap.
        while (true) std::this_thread::sleep_for(std::chrono::seconds(1));
      }
      break;
    }

    switch (type) {
      case FrameType::kOpen:
        st = HandleOpen(state, payload);
        if (!st.ok()) {
          // Report and stay alive: the error frame takes kOpenOk's place in
          // the stream, so the coordinator stays frame-aligned — and commits
          // nothing, so the previous assignment still serves.
          if (!SendError(state, st).ok()) exit_code = 1;
          st = Status::OK();
        }
        break;
      case FrameType::kScanFragment:
      case FrameType::kAggFragment: {
        FragmentMsg frag;
        Status decode_st = DecodeFragment(payload, &frag);
        if (!decode_st.ok()) {
          // Cannot name a fragment we failed to decode.
          if (!SendError(state, decode_st).ok()) exit_code = 1;
          break;
        }
        Status frag_st =
            RunFragment(state, frag, type == FrameType::kAggFragment);
        if (!frag_st.ok()) {
          // A deterministic fragment failure: report it with the fragment's
          // identity (kFragmentError takes the fragment's place in the
          // stream) so the coordinator fails the query cleanly instead of
          // retrying a fragment that would fail again.
          FragmentErrorMsg err;
          err.fragment_id = frag.fragment_id;
          err.epoch = frag.epoch;
          err.error = frag_st;
          std::vector<uint8_t> reply;
          EncodeFragmentError(err, &reply);
          if (!WriteFrame(state.fd, FrameType::kFragmentError, reply, nullptr)
                   .ok()) {
            exit_code = 1;
          }
        }
        break;
      }
      default:
        st = Status::ParseError("unexpected frame type " +
                                std::to_string(static_cast<int>(type)));
        break;
    }
    if (exit_code != 0) break;
    if (!st.ok()) {
      // Report and stay alive: the error frame takes the failed exchange's
      // place in the stream, so the coordinator stays frame-aligned.
      if (!SendError(state, st).ok()) {
        exit_code = 1;
        break;
      }
    }
  }
  ::close(fd);
  ::unlink(options.socket_path.c_str());
  return exit_code;
}

}  // namespace jsontiles::dist
