// jsontiles_workerd: one worker process of a distributed cluster
// (DESIGN.md §13). Spawned by dist::Cluster; not meant to be run by hand,
// but doing so is harmless — it waits for a coordinator on --socket.

#include <signal.h>
#include <stdio.h>

#include <string>

#include "dist/worker.h"

int main(int argc, char** argv) {
  // A coordinator that dies mid-stream must surface as a write error, not
  // kill the worker silently.
  ::signal(SIGPIPE, SIG_IGN);

  jsontiles::dist::WorkerOptions options;
  for (int i = 1; i < argc; i++) {
    const std::string arg = argv[i];
    if (arg == "--socket" && i + 1 < argc) {
      options.socket_path = argv[++i];
    } else if (arg == "--failpoint" && i + 1 < argc) {
      const jsontiles::Status st =
          jsontiles::dist::ParseFailpointArg(argv[++i]);
      if (!st.ok()) {
        fprintf(stderr, "jsontiles_workerd: %s\n", st.ToString().c_str());
        return 2;
      }
    } else {
      fprintf(stderr,
              "usage: jsontiles_workerd --socket <path> "
              "[--failpoint name=always|nth:N|everyk:K]...\n");
      return 2;
    }
  }
  if (options.socket_path.empty()) {
    fprintf(stderr, "jsontiles_workerd: --socket is required\n");
    return 2;
  }
  return jsontiles::dist::RunWorker(options);
}
