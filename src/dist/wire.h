// Wire format of the distributed exchange (DESIGN.md §13).
//
// A connection carries a stream of frames. Each frame is length-prefixed,
// LZ4-compressed (the spill block idiom: store raw when compression does not
// help) and checksummed:
//
//   [u8 type][u32 raw_size][u32 comp_size][u64 checksum][payload bytes]
//
// comp_size == 0 means the payload is stored raw (raw_size bytes on the
// wire); otherwise comp_size LZ4 bytes follow and decompress to raw_size.
// The checksum covers the payload exactly as it appears on the wire, seeded
// with the header fields, so neither payload corruption nor a header/payload
// mismatch goes undetected. Sizes are capped (kMaxFramePayload) before any
// allocation — a corrupt length cannot make the decoder allocate absurd
// buffers. Everything below the frame layer is bounds-checked via WireReader:
// the corrupt-frame corpus test feeds truncations and bit flips of real
// streams through DecodeFrame under ASan.
//
// Message payloads (plan fragments, row batches, aggregate partials) are
// versioned implicitly by kWireVersion, exchanged in the Hello handshake:
// coordinator and workers come from the same build, so a mismatch is a
// deployment error, reported cleanly.

#ifndef JSONTILES_DIST_WIRE_H_
#define JSONTILES_DIST_WIRE_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "exec/agg_state.h"
#include "exec/expression.h"
#include "exec/operators.h"
#include "exec/scan.h"
#include "util/arena.h"
#include "util/status.h"

namespace jsontiles::dist {

inline constexpr uint32_t kWireVersion = 2;
/// Hard cap on a frame's raw and compressed payload size. Batches are cut at
/// ~256 KiB, so real frames sit far below it; its job is bounding allocation
/// when a length field is corrupt.
inline constexpr size_t kMaxFramePayload = 256u << 20;

enum class FrameType : uint8_t {
  kHello = 1,         // worker -> coordinator: version, pid
  kOpen = 2,          // coordinator -> worker: manifest, assigned shards
  kOpenOk = 3,        // worker -> coordinator: per-shard row counts
  kScanFragment = 4,  // coordinator -> worker: scan one shard
  kAggFragment = 5,   // coordinator -> worker: scan + partial-aggregate
  kRowBatch = 6,      // worker -> coordinator: a batch of result rows
  kAggResult = 7,     // worker -> coordinator: partial aggregate groups
  kFragmentDone = 8,  // worker -> coordinator: fragment finished + stats
  kError = 9,          // worker -> coordinator: open/protocol failure
  kShutdown = 10,      // coordinator -> worker: exit cleanly
  kFragmentError = 11  // worker -> coordinator: one fragment failed
                       // deterministically (carries fragment id + epoch)
};
inline constexpr uint8_t kMaxFrameType = 11;

// ---------------------------------------------------------------------------
// Byte codec
// ---------------------------------------------------------------------------

/// Appends to a caller-owned buffer. Fixed-width fields are little-endian;
/// varints are unsigned LEB128 (signed values zigzag first).
class WireWriter {
 public:
  explicit WireWriter(std::vector<uint8_t>* out) : out_(out) {}

  void U8(uint8_t v) { out_->push_back(v); }
  void U32(uint32_t v);
  void U64(uint64_t v);
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void F64(double v);
  void Varint(uint64_t v);
  void SVarint(int64_t v);
  void Str(std::string_view s);  // varint length + bytes

 private:
  std::vector<uint8_t>* out_;
};

/// Bounds-checked reader over a decoded frame payload. Every getter returns
/// false on truncation; decoding helpers below turn that into ParseError.
class WireReader {
 public:
  WireReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  bool U8(uint8_t* v);
  bool U32(uint32_t* v);
  bool U64(uint64_t* v);
  bool I64(int64_t* v);
  bool F64(double* v);
  bool Varint(uint64_t* v);
  bool SVarint(int64_t* v);
  bool Str(std::string* s);
  /// Zero-copy view into the payload buffer (valid only while it lives).
  bool StrView(std::string_view* s);

  bool AtEnd() const { return pos_ == size_; }
  size_t remaining() const { return size_ - pos_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Frame layer
// ---------------------------------------------------------------------------

/// Frame `payload` (compress + header + checksum) onto `stream`.
void AppendFrame(FrameType type, const std::vector<uint8_t>& payload,
                 std::vector<uint8_t>* stream);

/// AppendFrame + a full write to `fd` (EINTR/partial-write safe). Fault
/// site: `dist.frame_write`. `wire_bytes` (optional) accumulates the bytes
/// put on the wire.
Status WriteFrame(int fd, FrameType type, const std::vector<uint8_t>& payload,
                  uint64_t* wire_bytes);

/// Decode one frame from a memory buffer: validates header bounds, checksum,
/// and decompression; `*consumed` is the frame's total encoded size. This is
/// the single decode path — ReadFrame layers socket I/O on top, and the
/// corrupt-frame corpus test drives it directly.
Status DecodeFrame(const uint8_t* data, size_t size, size_t* consumed,
                   FrameType* type, std::vector<uint8_t>* payload);

/// Read one frame from `fd` under two deadlines: `idle_timeout_ms` bounds
/// the wait for the frame's FIRST byte (how long a quiet peer may stay
/// silent), and once any byte has arrived `frame_timeout_ms` bounds the rest
/// of the frame — a peer that opens a header and stalls cannot ride the idle
/// budget. Returns kOutOfRange("connection closed") on clean EOF at a frame
/// boundary, kInternal on either timeout, ParseError on a corrupt frame.
/// `wire_bytes` (optional) accumulates bytes received.
Status ReadFrame(int fd, int idle_timeout_ms, int frame_timeout_ms,
                 FrameType* type, std::vector<uint8_t>* payload,
                 uint64_t* wire_bytes);

/// Single-deadline form: idle and frame share `timeout_ms`.
inline Status ReadFrame(int fd, int timeout_ms, FrameType* type,
                        std::vector<uint8_t>* payload, uint64_t* wire_bytes) {
  return ReadFrame(fd, timeout_ms, timeout_ms, type, payload, wire_bytes);
}

// ---------------------------------------------------------------------------
// Message codecs
// ---------------------------------------------------------------------------

struct HelloMsg {
  uint32_t version = kWireVersion;
  int64_t pid = 0;
};
void EncodeHello(const HelloMsg& msg, std::vector<uint8_t>* out);
Status DecodeHello(const std::vector<uint8_t>& payload, HelloMsg* msg);

struct OpenMsg {
  std::string manifest_path;
  std::vector<uint64_t> shards;  // assigned shard indices, ascending
  uint64_t num_threads = 1;      // per-fragment QueryContext threads
};
void EncodeOpen(const OpenMsg& msg, std::vector<uint8_t>* out);
Status DecodeOpen(const std::vector<uint8_t>& payload, OpenMsg* msg);

struct OpenOkMsg {
  std::vector<uint64_t> shard_rows;  // parallel to OpenMsg::shards
};
void EncodeOpenOk(const OpenOkMsg& msg, std::vector<uint8_t>* out);
Status DecodeOpenOk(const std::vector<uint8_t>& payload, OpenOkMsg* msg);

/// Scalar value codec (spill row idiom: type byte, scale byte, payload).
/// Decoded strings are copied into `arena`.
void EncodeValue(const exec::Value& v, WireWriter* w);
bool DecodeValue(WireReader* r, Arena* arena, exec::Value* v);

/// Expression tree codec. Decoded expressions own their string storage
/// (const_storage / in_storage / pattern, as the expression factories build
/// them); kLike recompiles its matcher from the pattern. Depth and arity are
/// capped so corrupt input cannot recurse or allocate unboundedly.
void EncodeExpr(const exec::Expr& e, WireWriter* w);
Status DecodeExpr(WireReader* r, size_t depth, exec::ExprPtr* out);

/// One plan fragment: scan one shard (or its side relation for `side_path`),
/// with optional partial aggregation (kAggFragment frames; group_by/aggs
/// empty in kScanFragment frames). `string_pool` backs decoded
/// range-predicate constants — a deque so grown entries never move.
struct FragmentMsg {
  uint32_t fragment_id = 0;
  /// Dispatch epoch: bumped by the coordinator on every (re-)dispatch of the
  /// fragment and echoed by the worker in every result frame, so a late
  /// frame from a superseded dispatch is rejected rather than merged.
  uint32_t epoch = 0;
  uint32_t shard_index = 0;
  bool is_side = false;
  std::string side_path;
  bool enable_tile_skipping = true;
  bool enable_vectorized = true;
  std::vector<exec::ExprPtr> accesses;
  exec::ExprPtr filter;
  std::vector<std::string> null_rejecting_paths;
  std::vector<exec::RangePredicate> range_predicates;
  std::vector<exec::ExprPtr> group_by;
  std::vector<exec::AggSpec> aggs;
  std::deque<std::string> string_pool;
};
void EncodeFragment(const FragmentMsg& msg, std::vector<uint8_t>* out);
Status DecodeFragment(const std::vector<uint8_t>& payload, FragmentMsg* msg);

/// Row batches: worker results streamed back in fragment order. Decoded
/// strings go into `arena` (the coordinator's query arena) and rows are
/// appended to `out`.
void EncodeRowBatch(uint32_t fragment_id, uint32_t epoch,
                    const exec::RowSet& rows, size_t row_begin,
                    size_t row_end, std::vector<uint8_t>* out);
Status DecodeRowBatch(const std::vector<uint8_t>& payload, Arena* arena,
                      uint32_t* fragment_id, uint32_t* epoch,
                      exec::RowSet* out);

/// Partial-aggregate result: every group of the worker's group table with
/// its key hash (recorded, not recomputed, so coordinator merge uses the
/// exact same bucket chain). Decode needs the agg count from the request.
void EncodeAggPartial(uint32_t fragment_id, uint32_t epoch,
                      const exec::AggGroupMap& groups,
                      const std::vector<exec::AggSpec>& aggs,
                      std::vector<uint8_t>* out);
struct AggPartial {
  uint32_t fragment_id = 0;
  uint32_t epoch = 0;
  std::vector<std::pair<uint64_t, exec::AggGroup>> groups;
};
Status DecodeAggPartial(const std::vector<uint8_t>& payload, size_t num_aggs,
                        Arena* arena, AggPartial* out);

struct FragmentDoneMsg {
  uint32_t fragment_id = 0;
  uint32_t epoch = 0;
  uint64_t rows_out = 0;
  uint64_t tiles_scanned = 0;
  uint64_t tiles_skipped = 0;
  uint64_t wall_nanos = 0;
};
void EncodeFragmentDone(const FragmentDoneMsg& msg, std::vector<uint8_t>* out);
Status DecodeFragmentDone(const std::vector<uint8_t>& payload,
                          FragmentDoneMsg* msg);

void EncodeStatus(const Status& st, std::vector<uint8_t>* out);
/// Returns the decoded (non-OK) status in *decoded; the return value reports
/// whether the payload itself parsed.
Status DecodeStatus(const std::vector<uint8_t>& payload, Status* decoded);

/// A deterministic per-fragment failure (kFragmentError): re-running the
/// fragment would fail again, so the coordinator fails the query cleanly
/// instead of retrying. Carries the fragment identity so stale reports from
/// a superseded dispatch can be rejected like any other late frame.
struct FragmentErrorMsg {
  uint32_t fragment_id = 0;
  uint32_t epoch = 0;
  Status error = Status::OK();
};
void EncodeFragmentError(const FragmentErrorMsg& msg,
                         std::vector<uint8_t>* out);
Status DecodeFragmentError(const std::vector<uint8_t>& payload,
                           FragmentErrorMsg* msg);

}  // namespace jsontiles::dist

#endif  // JSONTILES_DIST_WIRE_H_
