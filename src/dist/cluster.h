// Distributed shard execution: the coordinator side (DESIGN.md §13, §14).
//
// A Cluster forks N long-lived worker processes (jsontiles_workerd), each
// listening on its own AF_UNIX socket, and speaks the dist/wire.h frame
// protocol to them. Shards of one saved relation (a JTSM manifest) are
// assigned to workers up front by greedy LPT over the manifest's per-shard
// row counts — the manifest carries them exactly so planning needs no shard
// file I/O. Per query, the coordinator sends one plan fragment per surviving
// shard to the shard's owner and multiplexes the result frames back.
//
// Determinism: fragment granularity is one shard, the coordinator computes
// the surviving-shard set with the same SurvivingShards the local scan uses,
// and scan results are concatenated in ascending shard order — exactly the
// local sharded scan's part order — so distributed scans are bit-identical
// to local ones for any worker count. Aggregates push partials down and
// merge through exec/agg_state.h's order-independent accumulators.
//
// Failure semantics (DESIGN.md §14): fragments move through a per-query
// state machine (Pending → Dispatched → Done) with result staging — frames
// commit into the merge only on FragmentDone, so a dead worker's partial
// output is discarded atomically. A worker that dies (EOF/EPIPE/waitpid) or
// goes silent past the idle-liveness deadline is killed, respawned with
// capped exponential backoff, and its fragments re-dispatched (next epoch)
// by LPT over the remaining work; late frames from a superseded dispatch
// are rejected by epoch. Budgets come from ExecOptions::dist_retry. A worker
// that *reports* a failure (kFragmentError) fails only that query —
// deterministic fragments make re-running it futile — and retry-budget
// exhaustion fails the query cleanly without poisoning later ones.

#ifndef JSONTILES_DIST_CLUSTER_H_
#define JSONTILES_DIST_CLUSTER_H_

#include <sys/types.h>

#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "dist/wire.h"
#include "exec/exchange.h"
#include "storage/shard.h"
#include "util/status.h"

namespace jsontiles::dist {

struct ClusterOptions {
  size_t num_workers = 2;
  /// ExecOptions::num_threads of each worker-side fragment context.
  size_t worker_threads = 1;
  /// Path of the jsontiles_workerd binary (tests/benches get it from the
  /// JSONTILES_WORKERD_PATH compile definition).
  std::string workerd_path;
  /// Budget for connecting to a freshly forked worker (retry with backoff —
  /// the coordinator races the worker's bind+listen).
  int connect_timeout_ms = 10000;
  /// Per-worker idle-liveness budget during a query: a worker with
  /// dispatched fragments that sends no frame for this long is declared
  /// hung, killed, and its fragments re-dispatched. Also bounds any single
  /// in-flight frame.
  int recv_timeout_ms = 60000;
  /// Failpoint specs forwarded to every worker's command line
  /// ("name=always|nth:N|everyk:K") — failpoints are per-process.
  std::vector<std::string> worker_failpoints;
  /// Extra per-worker failpoints (indexed by worker slot, appended to
  /// worker_failpoints) — the chaos harness arms each initial worker with
  /// its own seeded crash point.
  std::vector<std::vector<std::string>> per_worker_failpoints;
  /// Failpoints for *respawned* workers; replaces worker_failpoints so a
  /// crash-armed initial worker can be replaced by a healthy one (or, in
  /// tests, by an equally doomed one).
  std::vector<std::string> respawn_failpoints;
};

class Cluster : public exec::DistRuntime {
 public:
  /// Fork + connect + handshake the workers and assign every shard of the
  /// manifest. `local` is the coordinator's own open ShardedRelation for the
  /// same manifest: Serves() identifies it, and side-relation fragments are
  /// planned from its side-part inventory. On any failure every spawned
  /// worker is killed and reaped — no orphan processes, no stale sockets.
  static Result<std::unique_ptr<Cluster>> Start(
      const std::string& manifest_path, const storage::ShardedRelation* local,
      ClusterOptions options);

  ~Cluster() override;

  // --- exec::DistRuntime -----------------------------------------------
  bool Serves(const storage::ShardedRelation* rel) const override {
    return rel != nullptr && rel == local_;
  }
  size_t num_workers() const override { return workers_.size(); }
  Status Scan(const exec::ScanSpec& spec, exec::QueryContext& ctx,
              exec::RowSet* out, exec::ExchangeStats* stats) override;
  Status Aggregate(const exec::ScanSpec& spec,
                   const std::vector<exec::ExprPtr>& group_by,
                   const std::vector<exec::AggSpec>& aggs,
                   exec::QueryContext& ctx, exec::RowSet* out,
                   exec::ExchangeStats* stats) override;

  // --- introspection (tests, benches) ----------------------------------
  size_t shard_count() const { return manifest_.shard_count(); }
  /// Owning worker of each shard (LPT assignment; updated when a
  /// permanently dead worker's shards migrate to survivors).
  const std::vector<size_t>& shard_owner() const { return shard_owner_; }
  const storage::ShardManifestInfo& manifest() const { return manifest_; }
  size_t alive_workers() const;
  /// Cluster-lifetime recovery totals (mirrored into dist.* metrics and,
  /// per query, ExchangeStats).
  uint64_t fragments_retried() const { return fragments_retried_; }
  uint64_t workers_respawned() const { return workers_respawned_; }
  uint64_t frames_rejected_stale() const { return frames_rejected_stale_; }
  /// Wall nanos spent detecting, reaping, respawning, and re-dispatching
  /// (the query-visible recovery latency).
  uint64_t recovery_nanos() const { return recovery_nanos_; }

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

 private:
  struct WorkerConn {
    pid_t pid = -1;
    int fd = -1;
    std::string socket_path;
    /// Shards currently opened worker-side (sorted ascending). Grows past
    /// the initial assignment when shards migrate off dead workers.
    std::vector<size_t> shards;
    bool alive = false;
    /// Respawns consumed over the cluster's lifetime (budget:
    /// DistRetryPolicy::max_worker_respawns).
    uint32_t respawns = 0;
    /// Mid-query kOpen frames in flight (shard migration): each entry
    /// records the shard set sent and the set before it, so the matching
    /// kOpenOk can be validated — or the optimistic update rolled back when
    /// the worker replies kError instead.
    struct OpenAttempt {
      std::vector<size_t> sent;
      std::vector<size_t> prev;
    };
    std::deque<OpenAttempt> pending_opens;
    std::chrono::steady_clock::time_point last_activity{};
  };

  /// Per-fragment state machine of one exchange. Results stage here and
  /// commit only on FragmentDone — a dead worker's partial output is
  /// dropped by clearing the stage, never unpicked from the merge.
  struct Fragment {
    enum class Phase : uint8_t { kPending, kDispatched, kDone };
    size_t shard = 0;
    Phase phase = Phase::kPending;
    uint32_t epoch = 0;     // bumped on every dispatch
    uint32_t attempts = 0;  // dispatches so far
    size_t worker = SIZE_MAX;
    exec::RowSet staged_rows;
    std::vector<AggPartial> staged_aggs;
  };

  /// One exchange's transient coordinator state (fragments + accounting).
  struct QueryState;

  Cluster() = default;

  Status RunFragments(const exec::ScanSpec& spec,
                      const std::vector<size_t>& fragment_shards, bool is_side,
                      const std::vector<exec::ExprPtr>& group_by,
                      const std::vector<exec::AggSpec>& aggs,
                      exec::QueryContext& ctx,
                      std::vector<exec::RowSet>* row_buckets,
                      exec::AggGroupMap* agg_merge,
                      exec::ExchangeStats* stats);

  Status SpawnWorker(size_t index, bool respawn);
  Status ConnectWorker(WorkerConn* worker);
  /// Hello + kOpen(shards) + kOpenOk validated against the manifest.
  Status HandshakeWorker(size_t index, const std::vector<size_t>& shards);
  /// Close, SIGKILL, and synchronously reap one worker process; unlink its
  /// socket. Safe on already-dead workers. Never leaks a child.
  void DestroyWorkerProcess(WorkerConn* worker);
  void KillAll();

  /// Handle the death (or declared hang) of worker `w` mid-exchange:
  /// requeue its fragments (discarding staged results; fail the query when a
  /// fragment's retry budget is exhausted), respawn with capped backoff
  /// under `policy`, and migrate its shards to survivors when the respawn
  /// budget is spent.
  void RecoverWorker(size_t w, const std::string& reason,
                     const exec::DistRetryPolicy& policy, QueryState* q,
                     exec::ExchangeStats* stats);
  /// Respawn worker `w` (spawn + connect + handshake + open) with backoff;
  /// true on success.
  bool RespawnWorker(size_t w, const exec::DistRetryPolicy& policy);
  /// Re-open worker `w` with the union of its current shards and `shard`
  /// (no-op when already open). Marks awaiting_openok; validation happens
  /// when the frame arrives.
  Status EnsureShardOpen(size_t w, size_t shard,
                         exec::ExchangeStats* stats);
  /// Pick the dispatch target for `frag`: the shard's owner when alive,
  /// otherwise LPT over the remaining dispatched work. SIZE_MAX when no
  /// worker is alive.
  size_t ChooseWorker(const Fragment& frag, const QueryState& q) const;
  /// Dispatch one pending fragment. Never returns an error: a transport
  /// fault on the chosen worker triggers RecoverWorker (the fragment goes
  /// back to Pending or consumes budget), and capacity exhaustion records a
  /// fatal status in `q`.
  void DispatchFragment(size_t frag_index, const exec::ScanSpec& spec,
                        bool is_side, bool is_agg,
                        const std::vector<exec::ExprPtr>& group_by,
                        const std::vector<exec::AggSpec>& aggs,
                        exec::QueryContext& ctx, QueryState* q,
                        exec::ExchangeStats* stats);

  const storage::ShardedRelation* local_ = nullptr;
  std::string manifest_path_;
  storage::ShardManifestInfo manifest_;
  ClusterOptions options_;
  std::vector<WorkerConn> workers_;
  std::vector<size_t> shard_owner_;
  /// Set when every worker slot is permanently dead: the cluster has no
  /// capacity left and all later queries fail fast (genuine capacity loss,
  /// not the old blanket poisoning).
  bool no_workers_left_ = false;

  uint64_t fragments_retried_ = 0;
  uint64_t workers_respawned_ = 0;
  uint64_t frames_rejected_stale_ = 0;
  uint64_t recovery_nanos_ = 0;
};

}  // namespace jsontiles::dist

#endif  // JSONTILES_DIST_CLUSTER_H_
