// Distributed shard execution: the coordinator side (DESIGN.md §13).
//
// A Cluster forks N long-lived worker processes (jsontiles_workerd), each
// listening on its own AF_UNIX socket, and speaks the dist/wire.h frame
// protocol to them. Shards of one saved relation (a JTSM manifest) are
// assigned to workers up front by greedy LPT over the manifest's per-shard
// row counts — the manifest carries them exactly so planning needs no shard
// file I/O. Per query, the coordinator sends one plan fragment per surviving
// shard to the shard's owner and multiplexes the result frames back.
//
// Determinism: fragment granularity is one shard, the coordinator computes
// the surviving-shard set with the same SurvivingShards the local scan uses,
// and scan results are concatenated in ascending shard order — exactly the
// local sharded scan's part order — so distributed scans are bit-identical
// to local ones for any worker count. Aggregates push partials down and
// merge through exec/agg_state.h's order-independent accumulators.
//
// Failure semantics: a worker that dies mid-query (EOF/POLLHUP) or a recv
// timeout surfaces a clean Status and poisons the cluster (connections can
// no longer be trusted to be frame-aligned); a worker that *reports* an
// error (kError frame) keeps the stream aligned, so only the query fails.

#ifndef JSONTILES_DIST_CLUSTER_H_
#define JSONTILES_DIST_CLUSTER_H_

#include <sys/types.h>

#include <memory>
#include <string>
#include <vector>

#include "dist/wire.h"
#include "exec/exchange.h"
#include "storage/shard.h"
#include "util/status.h"

namespace jsontiles::dist {

struct ClusterOptions {
  size_t num_workers = 2;
  /// ExecOptions::num_threads of each worker-side fragment context.
  size_t worker_threads = 1;
  /// Path of the jsontiles_workerd binary (tests/benches get it from the
  /// JSONTILES_WORKERD_PATH compile definition).
  std::string workerd_path;
  /// Budget for connecting to a freshly forked worker (retry with backoff —
  /// the coordinator races the worker's bind+listen).
  int connect_timeout_ms = 10000;
  /// Budget for any single result frame during a query.
  int recv_timeout_ms = 60000;
  /// Failpoint specs forwarded to every worker's command line
  /// ("name=always|nth:N|everyk:K") — failpoints are per-process.
  std::vector<std::string> worker_failpoints;
};

class Cluster : public exec::DistRuntime {
 public:
  /// Fork + connect + handshake the workers and assign every shard of the
  /// manifest. `local` is the coordinator's own open ShardedRelation for the
  /// same manifest: Serves() identifies it, and side-relation fragments are
  /// planned from its side-part inventory. On any failure every spawned
  /// worker is killed and reaped — no orphan processes, no stale sockets.
  static Result<std::unique_ptr<Cluster>> Start(
      const std::string& manifest_path, const storage::ShardedRelation* local,
      ClusterOptions options);

  ~Cluster() override;

  // --- exec::DistRuntime -----------------------------------------------
  bool Serves(const storage::ShardedRelation* rel) const override {
    return rel != nullptr && rel == local_;
  }
  size_t num_workers() const override { return workers_.size(); }
  Status Scan(const exec::ScanSpec& spec, exec::QueryContext& ctx,
              exec::RowSet* out, exec::ExchangeStats* stats) override;
  Status Aggregate(const exec::ScanSpec& spec,
                   const std::vector<exec::ExprPtr>& group_by,
                   const std::vector<exec::AggSpec>& aggs,
                   exec::QueryContext& ctx, exec::RowSet* out,
                   exec::ExchangeStats* stats) override;

  // --- introspection (tests, benches) ----------------------------------
  size_t shard_count() const { return manifest_.shard_count(); }
  /// Owning worker of each shard (the LPT assignment).
  const std::vector<size_t>& shard_owner() const { return shard_owner_; }
  const storage::ShardManifestInfo& manifest() const { return manifest_; }

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

 private:
  struct WorkerConn {
    pid_t pid = -1;
    int fd = -1;
    std::string socket_path;
    std::vector<size_t> shards;  // assigned shard indices, ascending
  };

  Cluster() = default;

  /// One fragment per entry of `fragment_shards` (ascending shard indices),
  /// dispatched to each shard's owner and collected until every fragment
  /// reported kFragmentDone or kError. Scan results land in
  /// `row_buckets[shard]`; aggregate partials merge into `agg_merge`.
  Status RunFragments(const exec::ScanSpec& spec,
                      const std::vector<size_t>& fragment_shards, bool is_side,
                      const std::vector<exec::ExprPtr>& group_by,
                      const std::vector<exec::AggSpec>& aggs,
                      exec::QueryContext& ctx,
                      std::vector<exec::RowSet>* row_buckets,
                      exec::AggGroupMap* agg_merge,
                      exec::ExchangeStats* stats);

  Status SpawnWorker(size_t index, const ClusterOptions& options,
                     WorkerConn* worker);
  Status ConnectWorker(const ClusterOptions& options, WorkerConn* worker);
  void KillAll();

  const storage::ShardedRelation* local_ = nullptr;
  std::string manifest_path_;
  storage::ShardManifestInfo manifest_;
  ClusterOptions options_;
  std::vector<WorkerConn> workers_;
  std::vector<size_t> shard_owner_;
  /// Set when a connection can no longer be trusted to be frame-aligned
  /// (worker died or timed out mid-stream); all later queries fail fast.
  bool poisoned_ = false;
};

}  // namespace jsontiles::dist

#endif  // JSONTILES_DIST_CLUSTER_H_
