#include "dist/cluster.h"

#include <errno.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <unordered_map>

#include "exec/scan.h"
#include "obs/obs.h"
#include "util/failpoint.h"

namespace jsontiles::dist {

namespace {

std::string TempDir() {
  const char* env = std::getenv("TMPDIR");
  if (env != nullptr && env[0] != '\0') return env;
  return "/tmp";
}

std::string WorkerName(size_t index) {
  return "worker " + std::to_string(index);
}

/// Greedy LPT: largest shards first (by manifest row count, ties to the
/// lower shard index), each to the currently least-loaded worker (ties to
/// the lower worker index). Deterministic, and within ~4/3 of the optimal
/// makespan — good enough that a 4-worker sweep sees real speedup even with
/// skewed shards.
std::vector<size_t> AssignShards(const std::vector<uint64_t>& shard_rows,
                                 size_t num_workers) {
  std::vector<size_t> order(shard_rows.size());
  for (size_t i = 0; i < order.size(); i++) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (shard_rows[a] != shard_rows[b]) return shard_rows[a] > shard_rows[b];
    return a < b;
  });
  std::vector<uint64_t> load(num_workers, 0);
  std::vector<size_t> owner(shard_rows.size(), 0);
  for (size_t s : order) {
    size_t best = 0;
    for (size_t w = 1; w < num_workers; w++) {
      if (load[w] < load[best]) best = w;
    }
    owner[s] = best;
    load[best] += shard_rows[s];
  }
  return owner;
}

uint64_t ElapsedNanos(std::chrono::steady_clock::time_point t0) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

}  // namespace

/// One exchange's transient coordinator state: the fragment table plus
/// per-worker in-flight accounting. `fatal` is the first unrecoverable
/// failure — once set, pending fragments are abandoned but in-flight ones
/// are still drained so surviving connections stay frame-aligned for the
/// next query.
struct Cluster::QueryState {
  std::vector<Fragment> fragments;
  std::unordered_map<uint32_t, size_t> by_id;  // fragment_id -> index
  std::vector<size_t> outstanding;   // Dispatched fragments per worker
  std::vector<uint64_t> load;        // manifest rows in flight per worker
  size_t dispatched = 0;
  size_t pending = 0;
  Status fatal = Status::OK();
};

Status Cluster::SpawnWorker(size_t index, bool respawn) {
  WorkerConn* worker = &workers_[index];
  worker->socket_path = TempDir() + "/jtw-" + std::to_string(getpid()) + "-" +
                        std::to_string(index) + ".sock";
  struct sockaddr_un addr;
  if (worker->socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path too long: " +
                                   worker->socket_path);
  }
  ::unlink(worker->socket_path.c_str());

  std::vector<std::string> args;
  args.push_back(options_.workerd_path);
  args.push_back("--socket");
  args.push_back(worker->socket_path);
  const std::vector<std::string>& base_fps =
      respawn ? options_.respawn_failpoints : options_.worker_failpoints;
  for (const std::string& fp : base_fps) {
    args.push_back("--failpoint");
    args.push_back(fp);
  }
  if (!respawn && index < options_.per_worker_failpoints.size()) {
    for (const std::string& fp : options_.per_worker_failpoints[index]) {
      args.push_back("--failpoint");
      args.push_back(fp);
    }
  }

  pid_t pid = ::fork();
  if (pid < 0) {
    return Status::Internal(std::string("fork: ") + std::strerror(errno));
  }
  if (pid == 0) {
    std::vector<char*> argv;
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    ::execv(options_.workerd_path.c_str(), argv.data());
    _exit(127);  // exec failed; parent sees the early exit while connecting
  }
  worker->pid = pid;
  return Status::OK();
}

Status Cluster::ConnectWorker(WorkerConn* worker) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(options_.connect_timeout_ms);
  int backoff_us = 1000;
  while (true) {
    // A worker that died during startup (exec failure, crash failpoint)
    // would otherwise make us spin until the timeout.
    int wstatus = 0;
    if (::waitpid(worker->pid, &wstatus, WNOHANG) > 0) {
      worker->pid = -1;
      return Status::Internal(WorkerName(worker - workers_.data()) +
                              " exited during startup");
    }
    bool attempt_failed = JSONTILES_FAILPOINT_FIRES("dist.connect");
    int fd = -1;
    if (!attempt_failed) {
      fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
      if (fd < 0) {
        return Status::Internal(std::string("socket: ") +
                                std::strerror(errno));
      }
      struct sockaddr_un addr;
      std::memset(&addr, 0, sizeof(addr));
      addr.sun_family = AF_UNIX;
      std::strncpy(addr.sun_path, worker->socket_path.c_str(),
                   sizeof(addr.sun_path) - 1);
      if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                    sizeof(addr)) == 0) {
        worker->fd = fd;
        return Status::OK();
      }
      ::close(fd);
      attempt_failed = true;
    }
    (void)attempt_failed;
    if (std::chrono::steady_clock::now() >= deadline) {
      return Status::Internal("timed out connecting to " +
                              WorkerName(worker - workers_.data()) + " at " +
                              worker->socket_path);
    }
    std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
    backoff_us = std::min(backoff_us * 2, 50000);
  }
}

Status Cluster::HandshakeWorker(size_t index,
                                const std::vector<size_t>& shards) {
  WorkerConn& worker = workers_[index];
  // The worker leads with kHello; we reply with the shard assignment
  // (kOpen) and expect kOpenOk row counts matching the manifest.
  FrameType type;
  std::vector<uint8_t> payload;
  Status st = ReadFrame(worker.fd, options_.recv_timeout_ms, &type, &payload,
                        nullptr);
  if (st.ok() && type != FrameType::kHello) {
    st = Status::Internal(WorkerName(index) + ": expected Hello");
  }
  HelloMsg hello;
  if (st.ok()) st = DecodeHello(payload, &hello);
  if (st.ok() && hello.version != kWireVersion) {
    st = Status::Internal(WorkerName(index) + ": wire version mismatch (" +
                          std::to_string(hello.version) + " != " +
                          std::to_string(kWireVersion) + ")");
  }
  if (st.ok()) {
    OpenMsg open;
    open.manifest_path = manifest_path_;
    open.num_threads = options_.worker_threads;
    for (size_t s : shards) open.shards.push_back(s);
    payload.clear();
    EncodeOpen(open, &payload);
    st = WriteFrame(worker.fd, FrameType::kOpen, payload, nullptr);
  }
  if (st.ok()) {
    st = ReadFrame(worker.fd, options_.recv_timeout_ms, &type, &payload,
                   nullptr);
  }
  if (st.ok() && type == FrameType::kError) {
    Status reported = Status::OK();
    st = DecodeStatus(payload, &reported);
    if (st.ok()) {
      st = Status(reported.code(), WorkerName(index) +
                                       " failed to open shards: " +
                                       reported.message());
    }
  } else if (st.ok()) {
    OpenOkMsg ok_msg;
    if (type != FrameType::kOpenOk) {
      st = Status::Internal(WorkerName(index) + ": expected OpenOk");
    }
    if (st.ok()) st = DecodeOpenOk(payload, &ok_msg);
    if (st.ok() && ok_msg.shard_rows.size() != shards.size()) {
      st = Status::Internal(WorkerName(index) + ": OpenOk shard count mismatch");
    }
    for (size_t i = 0; st.ok() && i < shards.size(); i++) {
      if (ok_msg.shard_rows[i] != manifest_.num_rows[shards[i]]) {
        st = Status::Internal(WorkerName(index) + ": shard " +
                              std::to_string(shards[i]) +
                              " row count does not match the manifest");
      }
    }
  }
  return st;
}

Result<std::unique_ptr<Cluster>> Cluster::Start(
    const std::string& manifest_path, const storage::ShardedRelation* local,
    ClusterOptions options) {
  if (options.workerd_path.empty()) {
    return Status::InvalidArgument("ClusterOptions::workerd_path is required");
  }
  if (options.num_workers == 0) {
    return Status::InvalidArgument("ClusterOptions::num_workers must be >= 1");
  }
  auto manifest = storage::ReadShardManifest(manifest_path);
  JSONTILES_RETURN_NOT_OK(manifest.status());

  std::unique_ptr<Cluster> cluster(new Cluster());
  cluster->local_ = local;
  cluster->manifest_path_ = manifest_path;
  cluster->manifest_ = std::move(manifest.ValueOrDie());
  cluster->options_ = std::move(options);
  cluster->shard_owner_ = AssignShards(cluster->manifest_.num_rows,
                                       cluster->options_.num_workers);
  cluster->workers_.resize(cluster->options_.num_workers);
  for (size_t s = 0; s < cluster->shard_owner_.size(); s++) {
    cluster->workers_[cluster->shard_owner_[s]].shards.push_back(s);
  }

  JSONTILES_TRACE_SPAN("dist.cluster_start");
  for (size_t w = 0; w < cluster->workers_.size(); w++) {
    WorkerConn& worker = cluster->workers_[w];
    Status st = cluster->SpawnWorker(w, /*respawn=*/false);
    if (st.ok()) st = cluster->ConnectWorker(&worker);
    if (st.ok()) st = cluster->HandshakeWorker(w, worker.shards);
    if (!st.ok()) {
      cluster->KillAll();
      return st;
    }
    worker.alive = true;
    worker.last_activity = std::chrono::steady_clock::now();
  }
  JSONTILES_COUNTER_ADD("dist.workers_started",
                        static_cast<int64_t>(cluster->workers_.size()));
  return cluster;
}

void Cluster::DestroyWorkerProcess(WorkerConn* worker) {
  if (worker->fd >= 0) {
    ::close(worker->fd);
    worker->fd = -1;
  }
  if (worker->pid > 0) {
    ::kill(worker->pid, SIGKILL);
    ::waitpid(worker->pid, nullptr, 0);
    worker->pid = -1;
  }
  if (!worker->socket_path.empty()) ::unlink(worker->socket_path.c_str());
  worker->alive = false;
  worker->pending_opens.clear();
}

void Cluster::KillAll() {
  for (WorkerConn& worker : workers_) DestroyWorkerProcess(&worker);
}

Cluster::~Cluster() {
  // Graceful first: Shutdown frame + close for everyone, then ONE bounded
  // WNOHANG sweep across all children in parallel (a stuck worker must not
  // serialize the others' grace period), then SIGKILL + a final blocking
  // waitpid for the stragglers. Never hangs, never leaks a child.
  const std::vector<uint8_t> empty;
  for (WorkerConn& worker : workers_) {
    if (worker.fd >= 0) {
      (void)WriteFrame(worker.fd, FrameType::kShutdown, empty, nullptr);
      ::close(worker.fd);
      worker.fd = -1;
    }
  }
  size_t live = 0;
  for (const WorkerConn& worker : workers_) {
    if (worker.pid > 0) live++;
  }
  for (int i = 0; i < 200 && live > 0; i++) {  // up to ~2s total
    for (WorkerConn& worker : workers_) {
      if (worker.pid <= 0) continue;
      pid_t r = ::waitpid(worker.pid, nullptr, WNOHANG);
      if (r > 0 || (r < 0 && errno == ECHILD)) {
        worker.pid = -1;
        live--;
      }
    }
    if (live == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  for (WorkerConn& worker : workers_) {
    if (worker.pid <= 0) continue;
    ::kill(worker.pid, SIGKILL);
    ::waitpid(worker.pid, nullptr, 0);
    worker.pid = -1;
  }
  for (WorkerConn& worker : workers_) {
    if (!worker.socket_path.empty()) ::unlink(worker.socket_path.c_str());
  }
}

size_t Cluster::alive_workers() const {
  size_t n = 0;
  for (const WorkerConn& worker : workers_) {
    if (worker.alive) n++;
  }
  return n;
}

bool Cluster::RespawnWorker(size_t w, const exec::DistRetryPolicy& policy) {
  WorkerConn& worker = workers_[w];
  while (worker.respawns < policy.max_worker_respawns) {
    uint32_t backoff = policy.respawn_backoff_ms;
    for (uint32_t i = 0;
         i < worker.respawns && backoff < policy.respawn_backoff_cap_ms; i++) {
      backoff = std::min(backoff * 2, policy.respawn_backoff_cap_ms);
    }
    if (backoff > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
    }
    worker.respawns++;
    Status st = SpawnWorker(w, /*respawn=*/true);
    if (st.ok()) st = ConnectWorker(&worker);
    if (st.ok()) st = HandshakeWorker(w, worker.shards);
    if (st.ok()) {
      worker.alive = true;
      worker.last_activity = std::chrono::steady_clock::now();
      return true;
    }
    // Failed respawns are reaped here — a half-started child never outlives
    // the attempt that created it.
    DestroyWorkerProcess(&worker);
  }
  return false;
}

void Cluster::RecoverWorker(size_t w, const std::string& reason,
                            const exec::DistRetryPolicy& policy, QueryState* q,
                            exec::ExchangeStats* stats) {
  JSONTILES_TRACE_SPAN("dist.worker_recover");
  const auto t0 = std::chrono::steady_clock::now();
  WorkerConn& worker = workers_[w];
  DestroyWorkerProcess(&worker);

  // Requeue: every fragment in flight on this worker goes back to Pending
  // (the next dispatch bumps its epoch) and its staged results are dropped —
  // nothing of a superseded dispatch ever reaches the merge.
  for (Fragment& frag : q->fragments) {
    if (frag.phase != Fragment::Phase::kDispatched || frag.worker != w) {
      continue;
    }
    frag.staged_rows.clear();
    frag.staged_aggs.clear();
    q->dispatched--;
    q->outstanding[w]--;
    q->load[w] -= manifest_.num_rows[frag.shard];
    if (frag.attempts >= 1 + policy.max_fragment_retries) {
      frag.phase = Fragment::Phase::kDone;  // abandoned: budget exhausted
      if (q->fatal.ok()) {
        q->fatal = Status::Internal(
            "fragment " + std::to_string(frag.shard) + " failed " +
            std::to_string(frag.attempts) + " dispatch(es) (" + reason +
            " on " + WorkerName(w) + "): retry budget exhausted");
      }
    } else {
      frag.phase = Fragment::Phase::kPending;
      frag.worker = SIZE_MAX;
      q->pending++;
    }
  }

  if (RespawnWorker(w, policy)) {
    workers_respawned_++;
    stats->workers_respawned++;
    stats->workers[w].respawns++;
  } else {
    // Respawn budget exhausted: the slot is permanently dead. Migrate the
    // shards it owned to the survivors (LPT by manifest rows over what each
    // already owns); they are opened lazily at the next dispatch.
    std::vector<uint64_t> owned(workers_.size(), 0);
    bool any_alive = false;
    for (size_t i = 0; i < workers_.size(); i++) {
      if (workers_[i].alive) any_alive = true;
    }
    for (size_t s = 0; s < shard_owner_.size(); s++) {
      if (workers_[shard_owner_[s]].alive) {
        owned[shard_owner_[s]] += manifest_.num_rows[s];
      }
    }
    if (!any_alive) {
      no_workers_left_ = true;
      if (q->fatal.ok()) {
        q->fatal = Status::Internal("no usable workers left (" + reason +
                                    " on " + WorkerName(w) +
                                    ", respawn budget exhausted)");
      }
    } else {
      std::vector<size_t> orphans;
      for (size_t s = 0; s < shard_owner_.size(); s++) {
        if (!workers_[shard_owner_[s]].alive) orphans.push_back(s);
      }
      std::sort(orphans.begin(), orphans.end(), [&](size_t a, size_t b) {
        if (manifest_.num_rows[a] != manifest_.num_rows[b]) {
          return manifest_.num_rows[a] > manifest_.num_rows[b];
        }
        return a < b;
      });
      for (size_t s : orphans) {
        size_t best = SIZE_MAX;
        for (size_t i = 0; i < workers_.size(); i++) {
          if (!workers_[i].alive) continue;
          if (best == SIZE_MAX || owned[i] < owned[best]) best = i;
        }
        shard_owner_[s] = best;
        owned[best] += manifest_.num_rows[s];
      }
    }
  }
  const uint64_t nanos = ElapsedNanos(t0);
  recovery_nanos_ += nanos;
  stats->recovery_nanos += nanos;
}

Status Cluster::EnsureShardOpen(size_t w, size_t shard,
                                exec::ExchangeStats* stats) {
  WorkerConn& worker = workers_[w];
  if (std::find(worker.shards.begin(), worker.shards.end(), shard) !=
      worker.shards.end()) {
    return Status::OK();
  }
  WorkerConn::OpenAttempt attempt;
  attempt.prev = worker.shards;
  attempt.sent = worker.shards;
  attempt.sent.push_back(shard);
  std::sort(attempt.sent.begin(), attempt.sent.end());

  OpenMsg open;
  open.manifest_path = manifest_path_;
  open.num_threads = options_.worker_threads;
  for (size_t s : attempt.sent) open.shards.push_back(s);
  std::vector<uint8_t> payload;
  EncodeOpen(open, &payload);
  JSONTILES_RETURN_NOT_OK(WriteFrame(worker.fd, FrameType::kOpen, payload,
                                     &stats->workers[w].bytes));
  stats->workers[w].frames++;
  // Optimistic: the kOpenOk (or a rolling-back kError) is matched against
  // pending_opens in the collect loop.
  worker.shards = attempt.sent;
  worker.pending_opens.push_back(std::move(attempt));
  worker.last_activity = std::chrono::steady_clock::now();
  return Status::OK();
}

size_t Cluster::ChooseWorker(const Fragment& frag, const QueryState& q) const {
  // Initial dispatch goes to the shard's owner (it has the shard open).
  // Re-dispatches — and orphaned initial dispatches — go LPT over the work
  // still in flight among the survivors.
  if (frag.attempts == 0) {
    const size_t owner = shard_owner_[frag.shard];
    if (workers_[owner].alive) return owner;
  }
  size_t best = SIZE_MAX;
  for (size_t w = 0; w < workers_.size(); w++) {
    if (!workers_[w].alive) continue;
    if (best == SIZE_MAX || q.load[w] < q.load[best]) best = w;
  }
  return best;
}

void Cluster::DispatchFragment(size_t frag_index, const exec::ScanSpec& spec,
                               bool is_side, bool is_agg,
                               const std::vector<exec::ExprPtr>& group_by,
                               const std::vector<exec::AggSpec>& aggs,
                               exec::QueryContext& ctx, QueryState* q,
                               exec::ExchangeStats* stats) {
  Fragment& frag = q->fragments[frag_index];
  const size_t w = ChooseWorker(frag, *q);
  if (w == SIZE_MAX) {
    frag.phase = Fragment::Phase::kDone;  // abandoned: nowhere to run
    q->pending--;
    if (q->fatal.ok()) {
      q->fatal = Status::Internal(
          "no usable workers left to run fragment " +
          std::to_string(frag.shard));
    }
    return;
  }
  Status st = EnsureShardOpen(w, frag.shard, stats);
  if (st.ok()) {
    frag.attempts++;
    frag.epoch = frag.attempts;
    frag.worker = w;
    frag.phase = Fragment::Phase::kDispatched;
    q->pending--;
    q->dispatched++;
    q->outstanding[w]++;
    q->load[w] += manifest_.num_rows[frag.shard];
    if (frag.attempts > 1) {
      fragments_retried_++;
      stats->fragments_retried++;
    }

    FragmentMsg msg;
    msg.fragment_id = static_cast<uint32_t>(frag.shard);
    msg.epoch = frag.epoch;
    msg.shard_index = static_cast<uint32_t>(frag.shard);
    msg.is_side = is_side;
    if (is_side) msg.side_path = spec.sharded_side_path;
    msg.enable_tile_skipping = ctx.options().enable_tile_skipping;
    msg.enable_vectorized = ctx.options().enable_vectorized;
    msg.accesses = spec.accesses;
    msg.filter = spec.filter;
    msg.null_rejecting_paths = spec.null_rejecting_paths;
    msg.range_predicates = spec.range_predicates;
    msg.group_by = group_by;
    msg.aggs = aggs;
    std::vector<uint8_t> payload;
    EncodeFragment(msg, &payload);
    st = WriteFrame(workers_[w].fd,
                    is_agg ? FrameType::kAggFragment : FrameType::kScanFragment,
                    payload, &stats->workers[w].bytes);
    if (st.ok()) {
      stats->workers[w].frames++;
      workers_[w].last_activity = std::chrono::steady_clock::now();
    }
  }
  if (!st.ok()) {
    // Transport fault talking to this worker. Recovery requeues whatever was
    // marked Dispatched on it (including this fragment, budget-checked); a
    // fragment that never got marked just stays Pending for the next pass.
    RecoverWorker(w, "sending fragment failed: " + st.message(),
                  ctx.options().dist_retry, q, stats);
  }
}

Status Cluster::RunFragments(const exec::ScanSpec& spec,
                             const std::vector<size_t>& fragment_shards,
                             bool is_side,
                             const std::vector<exec::ExprPtr>& group_by,
                             const std::vector<exec::AggSpec>& aggs,
                             exec::QueryContext& ctx,
                             std::vector<exec::RowSet>* row_buckets,
                             exec::AggGroupMap* agg_merge,
                             exec::ExchangeStats* stats) {
  if (no_workers_left_) {
    return Status::Internal(
        "no usable workers: every worker slot exhausted its respawn budget");
  }
  const bool is_agg = agg_merge != nullptr;
  const exec::DistRetryPolicy& policy = ctx.options().dist_retry;
  stats->workers.resize(workers_.size());

  QueryState q;
  q.outstanding.assign(workers_.size(), 0);
  q.load.assign(workers_.size(), 0);
  q.fragments.reserve(fragment_shards.size());
  for (size_t s : fragment_shards) {
    Fragment frag;
    frag.shard = s;
    q.by_id[static_cast<uint32_t>(s)] = q.fragments.size();
    q.fragments.push_back(std::move(frag));
  }
  q.pending = q.fragments.size();

  Arena* arena = ctx.arena(0);

  // Resolve a result frame to the fragment dispatch it answers; anything
  // else — wrong epoch, wrong worker, already-finished fragment — is a stale
  // frame from a superseded dispatch and must not touch the merge.
  auto live_fragment = [&](uint32_t id, uint32_t epoch,
                           size_t w) -> Fragment* {
    auto it = q.by_id.find(id);
    if (it == q.by_id.end()) return nullptr;
    Fragment& frag = q.fragments[it->second];
    if (frag.phase != Fragment::Phase::kDispatched || frag.worker != w ||
        frag.epoch != epoch) {
      return nullptr;
    }
    return &frag;
  };
  auto reject_stale = [&]() {
    frames_rejected_stale_++;
    stats->frames_rejected_stale++;
  };

  // Read + apply one frame from worker `w`. A transport or framing failure
  // kills and recovers the worker; result frames stage under their fragment
  // and commit only on FragmentDone.
  auto handle_frame = [&](size_t w) {
    WorkerConn& worker = workers_[w];
    exec::ExchangeWorkerStats& wstats = stats->workers[w];
    FrameType type;
    std::vector<uint8_t> payload;
    Status st = ReadFrame(worker.fd, options_.recv_timeout_ms,
                          options_.recv_timeout_ms, &type, &payload,
                          &wstats.bytes);
    if (!st.ok()) {
      RecoverWorker(w,
                    st.code() == StatusCode::kOutOfRange
                        ? std::string("worker exited unexpectedly")
                        : st.message(),
                    policy, &q, stats);
      return;
    }
    worker.last_activity = std::chrono::steady_clock::now();
    wstats.frames++;
    switch (type) {
      case FrameType::kRowBatch: {
        uint32_t id = 0, epoch = 0;
        exec::RowSet batch;
        st = DecodeRowBatch(payload, arena, &id, &epoch, &batch);
        if (!st.ok()) break;
        Fragment* frag = live_fragment(id, epoch, w);
        if (frag == nullptr || is_agg) {
          reject_stale();
          break;
        }
        wstats.batches++;
        for (exec::Row& row : batch) {
          frag->staged_rows.push_back(std::move(row));
        }
        break;
      }
      case FrameType::kAggResult: {
        AggPartial partial;
        st = DecodeAggPartial(payload, aggs.size(), arena, &partial);
        if (!st.ok()) break;
        Fragment* frag = live_fragment(partial.fragment_id, partial.epoch, w);
        if (frag == nullptr || !is_agg) {
          reject_stale();
          break;
        }
        wstats.batches++;
        frag->staged_aggs.push_back(std::move(partial));
        break;
      }
      case FrameType::kFragmentDone: {
        FragmentDoneMsg done;
        st = DecodeFragmentDone(payload, &done);
        if (!st.ok()) break;
        Fragment* frag = live_fragment(done.fragment_id, done.epoch, w);
        if (frag == nullptr) {
          reject_stale();
          break;
        }
        // Commit: the staged results become visible to the merge exactly
        // once, at the dispatch that completed.
        if (is_agg) {
          for (AggPartial& part : frag->staged_aggs) {
            for (auto& [hash, group] : part.groups) {
              exec::MergeGroup(agg_merge, hash, std::move(group), aggs);
            }
          }
        } else {
          exec::RowSet& bucket = (*row_buckets)[frag->shard];
          for (exec::Row& row : frag->staged_rows) {
            bucket.push_back(std::move(row));
          }
        }
        frag->staged_rows.clear();
        frag->staged_aggs.clear();
        frag->phase = Fragment::Phase::kDone;
        q.dispatched--;
        q.outstanding[w]--;
        q.load[w] -= manifest_.num_rows[frag->shard];
        wstats.rows += done.rows_out;
        wstats.wall_nanos += done.wall_nanos;
        stats->tiles_scanned += done.tiles_scanned;
        stats->tiles_skipped += done.tiles_skipped;
        break;
      }
      case FrameType::kFragmentError: {
        // The worker ran the fragment and it failed deterministically:
        // retrying cannot help, so the query fails cleanly. The worker
        // itself is healthy and keeps serving.
        FragmentErrorMsg err;
        st = DecodeFragmentError(payload, &err);
        if (!st.ok()) break;
        Fragment* frag = live_fragment(err.fragment_id, err.epoch, w);
        if (frag == nullptr) {
          reject_stale();
          break;
        }
        frag->staged_rows.clear();
        frag->staged_aggs.clear();
        frag->phase = Fragment::Phase::kDone;
        q.dispatched--;
        q.outstanding[w]--;
        q.load[w] -= manifest_.num_rows[frag->shard];
        if (q.fatal.ok()) {
          q.fatal = Status(err.error.code(), WorkerName(w) + " fragment " +
                                                 std::to_string(err.fragment_id) +
                                                 ": " + err.error.message());
        }
        break;
      }
      case FrameType::kError: {
        // Worker-reported open/protocol failure (e.g. a migration kOpen it
        // could not satisfy). The worker kept its previous shard set, so
        // roll back the optimistic update and fail the query cleanly — the
        // connection stays frame-aligned and usable.
        Status reported = Status::OK();
        st = DecodeStatus(payload, &reported);
        if (!st.ok()) break;
        if (!worker.pending_opens.empty()) {
          worker.shards = worker.pending_opens.front().prev;
          worker.pending_opens.pop_front();
        }
        if (q.fatal.ok()) {
          q.fatal =
              Status(reported.code(), WorkerName(w) + ": " + reported.message());
        }
        break;
      }
      case FrameType::kOpenOk: {
        if (worker.pending_opens.empty()) {
          st = Status::ParseError("unexpected OpenOk frame");
          break;
        }
        WorkerConn::OpenAttempt attempt =
            std::move(worker.pending_opens.front());
        worker.pending_opens.pop_front();
        OpenOkMsg ok_msg;
        st = DecodeOpenOk(payload, &ok_msg);
        if (!st.ok()) break;
        Status vst = Status::OK();
        if (ok_msg.shard_rows.size() != attempt.sent.size()) {
          vst = Status::Internal(WorkerName(w) +
                                 ": OpenOk shard count mismatch");
        }
        for (size_t i = 0; vst.ok() && i < attempt.sent.size(); i++) {
          if (ok_msg.shard_rows[i] != manifest_.num_rows[attempt.sent[i]]) {
            vst = Status::Internal(
                WorkerName(w) + ": shard " + std::to_string(attempt.sent[i]) +
                " row count does not match the manifest");
          }
        }
        if (!vst.ok() && q.fatal.ok()) q.fatal = std::move(vst);
        break;
      }
      default:
        st = Status::ParseError("unexpected frame type on exchange");
        break;
    }
    if (!st.ok()) {
      // Payload decode failure: the stream may be out of sync with the
      // coordinator's view — transport-class fault, recover the worker.
      RecoverWorker(w, st.message(), policy, &q, stats);
    }
  };

  while (true) {
    // Dispatch every pending fragment. Each DispatchFragment call either
    // dispatches, records a fatal status, or consumes recovery budget — all
    // finite — so this drains.
    while (q.fatal.ok() && q.pending > 0) {
      for (size_t i = 0; i < q.fragments.size() && q.fatal.ok(); i++) {
        if (q.fragments[i].phase == Fragment::Phase::kPending) {
          DispatchFragment(i, spec, is_side, is_agg, group_by, aggs, ctx, &q,
                           stats);
        }
      }
    }
    if (!q.fatal.ok()) {
      // The query already failed: abandon what never ran, but keep draining
      // the in-flight fragments so surviving connections stay frame-aligned
      // for the next query.
      for (Fragment& frag : q.fragments) {
        if (frag.phase == Fragment::Phase::kPending) {
          frag.phase = Fragment::Phase::kDone;
          q.pending--;
        }
      }
    }
    if (q.dispatched == 0) break;

    // Poll everyone with work in flight, bounded by the earliest per-worker
    // idle-liveness deadline (last activity + recv_timeout_ms).
    std::vector<struct pollfd> pfds;
    std::vector<size_t> pfd_worker;
    auto now = std::chrono::steady_clock::now();
    int timeout_ms = options_.recv_timeout_ms;
    for (size_t w = 0; w < workers_.size(); w++) {
      if (!workers_[w].alive) continue;
      if (q.outstanding[w] == 0 && workers_[w].pending_opens.empty()) continue;
      pfds.push_back({workers_[w].fd, POLLIN, 0});
      pfd_worker.push_back(w);
      const auto deadline = workers_[w].last_activity +
                            std::chrono::milliseconds(options_.recv_timeout_ms);
      const auto remain = std::chrono::duration_cast<std::chrono::milliseconds>(
                              deadline - now)
                              .count();
      timeout_ms = std::min<int>(
          timeout_ms, static_cast<int>(std::max<int64_t>(remain, 0)));
    }
    if (pfds.empty()) {
      // Cannot happen: every Dispatched fragment sits on an alive worker
      // (recovery requeues on death). Guard against a hang regardless.
      return Status::Internal("in-flight fragments with no pollable worker");
    }
    int pr = ::poll(pfds.data(), pfds.size(), std::max(timeout_ms, 1));
    if (pr < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("poll: ") + std::strerror(errno));
    }
    if (pr > 0) {
      for (size_t p = 0; p < pfds.size(); p++) {
        if (pfds[p].revents == 0) continue;
        const size_t w = pfd_worker[p];
        // A recovery earlier in this round may have replaced the fd.
        if (!workers_[w].alive || workers_[w].fd != pfds[p].fd) continue;
        handle_frame(w);
      }
    }
    // Idle-liveness: a worker with work in flight that has gone silent past
    // the deadline is hung (or dead without EOF) — kill and recover it so a
    // stuck worker cannot stall the query forever.
    now = std::chrono::steady_clock::now();
    for (size_t w = 0; w < workers_.size(); w++) {
      if (!workers_[w].alive) continue;
      if (q.outstanding[w] == 0 && workers_[w].pending_opens.empty()) continue;
      if (now - workers_[w].last_activity >=
          std::chrono::milliseconds(options_.recv_timeout_ms)) {
        RecoverWorker(w, "idle-liveness deadline exceeded (worker hung)",
                      policy, &q, stats);
      }
    }
  }
  return q.fatal;
}

Status Cluster::Scan(const exec::ScanSpec& spec, exec::QueryContext& ctx,
                     exec::RowSet* out, exec::ExchangeStats* stats) {
  std::vector<size_t> fragment_shards;
  const bool is_side = !spec.sharded_side_path.empty();
  if (is_side) {
    // Shard-level pruning does not apply to side scans (the statistics
    // describe the base documents) — exactly the local scan's behavior.
    for (const auto& part : local_->SideParts(spec.sharded_side_path)) {
      fragment_shards.push_back(static_cast<size_t>(
          part.rowid_base >> storage::ShardedRelation::kRowIdShardShift));
    }
  } else {
    fragment_shards =
        exec::SurvivingShards(spec, ctx.options().enable_tile_skipping);
    stats->shards_scanned += fragment_shards.size();
    stats->shards_pruned +=
        local_->shard_count() - fragment_shards.size();
  }

  std::vector<exec::RowSet> buckets(manifest_.shard_count());
  JSONTILES_RETURN_NOT_OK(RunFragments(spec, fragment_shards, is_side,
                                       /*group_by=*/{}, /*aggs=*/{}, ctx,
                                       &buckets, /*agg_merge=*/nullptr,
                                       stats));
  // Ascending shard order = the local sharded scan's part order, so the
  // concatenation is bit-identical to local execution.
  size_t total = 0;
  for (const exec::RowSet& b : buckets) total += b.size();
  out->reserve(out->size() + total);
  for (exec::RowSet& b : buckets) {
    for (exec::Row& row : b) out->push_back(std::move(row));
  }
  return Status::OK();
}

Status Cluster::Aggregate(const exec::ScanSpec& spec,
                          const std::vector<exec::ExprPtr>& group_by,
                          const std::vector<exec::AggSpec>& aggs,
                          exec::QueryContext& ctx, exec::RowSet* out,
                          exec::ExchangeStats* stats) {
  std::vector<size_t> fragment_shards =
      exec::SurvivingShards(spec, ctx.options().enable_tile_skipping);
  stats->shards_scanned += fragment_shards.size();
  stats->shards_pruned += local_->shard_count() - fragment_shards.size();

  exec::AggGroupMap merged;
  JSONTILES_RETURN_NOT_OK(RunFragments(spec, fragment_shards,
                                       /*is_side=*/false, group_by, aggs, ctx,
                                       /*row_buckets=*/nullptr, &merged,
                                       stats));
  if (group_by.empty() && merged.empty()) {
    out->push_back(exec::EmptyGlobalAggRow(aggs));
    return Status::OK();
  }
  exec::FinalizeGroups(merged, aggs, out);
  return Status::OK();
}

}  // namespace jsontiles::dist
