#include "dist/cluster.h"

#include <errno.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "exec/scan.h"
#include "obs/obs.h"
#include "util/failpoint.h"

namespace jsontiles::dist {

namespace {

std::string TempDir() {
  const char* env = std::getenv("TMPDIR");
  if (env != nullptr && env[0] != '\0') return env;
  return "/tmp";
}

std::string WorkerName(size_t index) {
  return "worker " + std::to_string(index);
}

/// Greedy LPT: largest shards first (by manifest row count, ties to the
/// lower shard index), each to the currently least-loaded worker (ties to
/// the lower worker index). Deterministic, and within ~4/3 of the optimal
/// makespan — good enough that a 4-worker sweep sees real speedup even with
/// skewed shards.
std::vector<size_t> AssignShards(const std::vector<uint64_t>& shard_rows,
                                 size_t num_workers) {
  std::vector<size_t> order(shard_rows.size());
  for (size_t i = 0; i < order.size(); i++) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (shard_rows[a] != shard_rows[b]) return shard_rows[a] > shard_rows[b];
    return a < b;
  });
  std::vector<uint64_t> load(num_workers, 0);
  std::vector<size_t> owner(shard_rows.size(), 0);
  for (size_t s : order) {
    size_t best = 0;
    for (size_t w = 1; w < num_workers; w++) {
      if (load[w] < load[best]) best = w;
    }
    owner[s] = best;
    load[best] += shard_rows[s];
  }
  return owner;
}

}  // namespace

Status Cluster::SpawnWorker(size_t index, const ClusterOptions& options,
                            WorkerConn* worker) {
  worker->socket_path = TempDir() + "/jtw-" + std::to_string(getpid()) + "-" +
                        std::to_string(index) + ".sock";
  struct sockaddr_un addr;
  if (worker->socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path too long: " +
                                   worker->socket_path);
  }
  ::unlink(worker->socket_path.c_str());

  std::vector<std::string> args;
  args.push_back(options.workerd_path);
  args.push_back("--socket");
  args.push_back(worker->socket_path);
  for (const std::string& fp : options.worker_failpoints) {
    args.push_back("--failpoint");
    args.push_back(fp);
  }

  pid_t pid = ::fork();
  if (pid < 0) {
    return Status::Internal(std::string("fork: ") + std::strerror(errno));
  }
  if (pid == 0) {
    std::vector<char*> argv;
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    ::execv(options.workerd_path.c_str(), argv.data());
    _exit(127);  // exec failed; parent sees the early exit while connecting
  }
  worker->pid = pid;
  return Status::OK();
}

Status Cluster::ConnectWorker(const ClusterOptions& options,
                              WorkerConn* worker) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(options.connect_timeout_ms);
  int backoff_us = 1000;
  while (true) {
    // A worker that died during startup (exec failure, crash failpoint)
    // would otherwise make us spin until the timeout.
    int wstatus = 0;
    if (::waitpid(worker->pid, &wstatus, WNOHANG) > 0) {
      worker->pid = -1;
      return Status::Internal(WorkerName(worker - workers_.data()) +
                              " exited during startup");
    }
    bool attempt_failed = JSONTILES_FAILPOINT_FIRES("dist.connect");
    int fd = -1;
    if (!attempt_failed) {
      fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
      if (fd < 0) {
        return Status::Internal(std::string("socket: ") +
                                std::strerror(errno));
      }
      struct sockaddr_un addr;
      std::memset(&addr, 0, sizeof(addr));
      addr.sun_family = AF_UNIX;
      std::strncpy(addr.sun_path, worker->socket_path.c_str(),
                   sizeof(addr.sun_path) - 1);
      if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                    sizeof(addr)) == 0) {
        worker->fd = fd;
        return Status::OK();
      }
      ::close(fd);
      attempt_failed = true;
    }
    (void)attempt_failed;
    if (std::chrono::steady_clock::now() >= deadline) {
      return Status::Internal("timed out connecting to " +
                              WorkerName(worker - workers_.data()) + " at " +
                              worker->socket_path);
    }
    std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
    backoff_us = std::min(backoff_us * 2, 50000);
  }
}

Result<std::unique_ptr<Cluster>> Cluster::Start(
    const std::string& manifest_path, const storage::ShardedRelation* local,
    ClusterOptions options) {
  if (options.workerd_path.empty()) {
    return Status::InvalidArgument("ClusterOptions::workerd_path is required");
  }
  if (options.num_workers == 0) {
    return Status::InvalidArgument("ClusterOptions::num_workers must be >= 1");
  }
  auto manifest = storage::ReadShardManifest(manifest_path);
  JSONTILES_RETURN_NOT_OK(manifest.status());

  std::unique_ptr<Cluster> cluster(new Cluster());
  cluster->local_ = local;
  cluster->manifest_path_ = manifest_path;
  cluster->manifest_ = std::move(manifest.ValueOrDie());
  cluster->options_ = options;
  cluster->shard_owner_ =
      AssignShards(cluster->manifest_.num_rows, options.num_workers);
  cluster->workers_.resize(options.num_workers);
  for (size_t s = 0; s < cluster->shard_owner_.size(); s++) {
    cluster->workers_[cluster->shard_owner_[s]].shards.push_back(s);
  }

  JSONTILES_TRACE_SPAN("dist.cluster_start");
  for (size_t w = 0; w < cluster->workers_.size(); w++) {
    WorkerConn& worker = cluster->workers_[w];
    Status st = cluster->SpawnWorker(w, options, &worker);
    if (st.ok()) st = cluster->ConnectWorker(options, &worker);

    // Handshake: the worker leads with kHello, we reply with the shard
    // assignment (kOpen) and expect kOpenOk row counts matching the
    // manifest.
    FrameType type;
    std::vector<uint8_t> payload;
    if (st.ok()) {
      st = ReadFrame(worker.fd, options.recv_timeout_ms, &type, &payload,
                     nullptr);
      if (st.ok() && type != FrameType::kHello) {
        st = Status::Internal(WorkerName(w) + ": expected Hello");
      }
    }
    HelloMsg hello;
    if (st.ok()) st = DecodeHello(payload, &hello);
    if (st.ok() && hello.version != kWireVersion) {
      st = Status::Internal(WorkerName(w) + ": wire version mismatch (" +
                            std::to_string(hello.version) + " != " +
                            std::to_string(kWireVersion) + ")");
    }
    if (st.ok()) {
      OpenMsg open;
      open.manifest_path = manifest_path;
      open.num_threads = options.worker_threads;
      for (size_t s : worker.shards) open.shards.push_back(s);
      payload.clear();
      EncodeOpen(open, &payload);
      st = WriteFrame(worker.fd, FrameType::kOpen, payload, nullptr);
    }
    if (st.ok()) {
      st = ReadFrame(worker.fd, options.recv_timeout_ms, &type, &payload,
                     nullptr);
    }
    if (st.ok() && type == FrameType::kError) {
      Status reported = Status::OK();
      st = DecodeStatus(payload, &reported);
      if (st.ok()) {
        st = Status(reported.code(),
                    WorkerName(w) + " failed to open shards: " +
                        reported.message());
      }
    } else if (st.ok()) {
      OpenOkMsg ok_msg;
      if (type != FrameType::kOpenOk) {
        st = Status::Internal(WorkerName(w) + ": expected OpenOk");
      }
      if (st.ok()) st = DecodeOpenOk(payload, &ok_msg);
      if (st.ok() && ok_msg.shard_rows.size() != worker.shards.size()) {
        st = Status::Internal(WorkerName(w) + ": OpenOk shard count mismatch");
      }
      for (size_t i = 0; st.ok() && i < worker.shards.size(); i++) {
        if (ok_msg.shard_rows[i] !=
            cluster->manifest_.num_rows[worker.shards[i]]) {
          st = Status::Internal(
              WorkerName(w) + ": shard " +
              std::to_string(worker.shards[i]) +
              " row count does not match the manifest");
        }
      }
    }
    if (!st.ok()) {
      cluster->KillAll();
      return st;
    }
  }
  JSONTILES_COUNTER_ADD("dist.workers_started",
                        static_cast<int64_t>(cluster->workers_.size()));
  return cluster;
}

void Cluster::KillAll() {
  for (WorkerConn& worker : workers_) {
    if (worker.fd >= 0) {
      ::close(worker.fd);
      worker.fd = -1;
    }
    if (worker.pid > 0) {
      ::kill(worker.pid, SIGKILL);
      ::waitpid(worker.pid, nullptr, 0);
      worker.pid = -1;
    }
    if (!worker.socket_path.empty()) ::unlink(worker.socket_path.c_str());
  }
}

Cluster::~Cluster() {
  // Graceful first: Shutdown frame + close, then give each worker a moment
  // to exit before escalating to SIGKILL. Never hangs, never leaks a child.
  const std::vector<uint8_t> empty;
  for (WorkerConn& worker : workers_) {
    if (worker.fd >= 0) {
      (void)WriteFrame(worker.fd, FrameType::kShutdown, empty, nullptr);
      ::close(worker.fd);
      worker.fd = -1;
    }
  }
  for (WorkerConn& worker : workers_) {
    if (worker.pid <= 0) continue;
    bool reaped = false;
    for (int i = 0; i < 200; i++) {  // up to ~2s
      if (::waitpid(worker.pid, nullptr, WNOHANG) > 0) {
        reaped = true;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    if (!reaped) {
      ::kill(worker.pid, SIGKILL);
      ::waitpid(worker.pid, nullptr, 0);
    }
    worker.pid = -1;
  }
  for (WorkerConn& worker : workers_) {
    if (!worker.socket_path.empty()) ::unlink(worker.socket_path.c_str());
  }
}

Status Cluster::RunFragments(const exec::ScanSpec& spec,
                             const std::vector<size_t>& fragment_shards,
                             bool is_side,
                             const std::vector<exec::ExprPtr>& group_by,
                             const std::vector<exec::AggSpec>& aggs,
                             exec::QueryContext& ctx,
                             std::vector<exec::RowSet>* row_buckets,
                             exec::AggGroupMap* agg_merge,
                             exec::ExchangeStats* stats) {
  if (poisoned_) {
    return Status::Internal(
        "cluster is poisoned by an earlier worker failure");
  }
  const bool is_agg = agg_merge != nullptr;
  stats->workers.resize(workers_.size());

  // Dispatch: one fragment per shard to its owner. Fragment frames are tiny
  // (an expression tree), so writing them all before reading results cannot
  // fill a socket buffer.
  std::vector<size_t> outstanding(workers_.size(), 0);
  for (size_t s : fragment_shards) {
    FragmentMsg frag;
    frag.fragment_id = static_cast<uint32_t>(s);
    frag.shard_index = static_cast<uint32_t>(s);
    frag.is_side = is_side;
    if (is_side) frag.side_path = spec.sharded_side_path;
    frag.enable_tile_skipping = ctx.options().enable_tile_skipping;
    frag.enable_vectorized = ctx.options().enable_vectorized;
    frag.accesses = spec.accesses;
    frag.filter = spec.filter;
    frag.null_rejecting_paths = spec.null_rejecting_paths;
    frag.range_predicates = spec.range_predicates;
    frag.group_by = group_by;
    frag.aggs = aggs;
    std::vector<uint8_t> payload;
    EncodeFragment(frag, &payload);
    const size_t w = shard_owner_[s];
    Status st = WriteFrame(
        workers_[w].fd,
        is_agg ? FrameType::kAggFragment : FrameType::kScanFragment, payload,
        &stats->workers[w].bytes);
    if (!st.ok()) {
      poisoned_ = true;
      return Status(st.code(),
                    "sending fragment to " + WorkerName(w) + ": " +
                        st.message());
    }
    stats->workers[w].frames++;
    outstanding[w]++;
  }

  // Collect: a worker executes its fragments sequentially and each fragment
  // ends in exactly one kFragmentDone or kError, so the per-connection
  // stream stays frame-aligned even across failed fragments.
  Status first_error = Status::OK();
  size_t outstanding_total = 0;
  for (size_t n : outstanding) outstanding_total += n;
  Arena* arena = ctx.arena(0);
  while (outstanding_total > 0) {
    std::vector<struct pollfd> pfds;
    std::vector<size_t> pfd_worker;
    for (size_t w = 0; w < workers_.size(); w++) {
      if (outstanding[w] == 0) continue;
      pfds.push_back({workers_[w].fd, POLLIN, 0});
      pfd_worker.push_back(w);
    }
    int pr = ::poll(pfds.data(), pfds.size(), options_.recv_timeout_ms);
    if (pr < 0) {
      if (errno == EINTR) continue;
      poisoned_ = true;
      return Status::Internal(std::string("poll: ") + std::strerror(errno));
    }
    if (pr == 0) {
      poisoned_ = true;
      return Status::Internal("exchange recv timed out");
    }
    for (size_t p = 0; p < pfds.size(); p++) {
      if (pfds[p].revents == 0) continue;
      const size_t w = pfd_worker[p];
      exec::ExchangeWorkerStats& wstats = stats->workers[w];
      FrameType type;
      std::vector<uint8_t> payload;
      Status st = ReadFrame(workers_[w].fd, options_.recv_timeout_ms, &type,
                            &payload, &wstats.bytes);
      if (!st.ok()) {
        poisoned_ = true;
        if (st.code() == StatusCode::kOutOfRange) {
          return Status::Internal(WorkerName(w) + " exited unexpectedly");
        }
        return Status(st.code(),
                      WorkerName(w) + ": " + st.message());
      }
      wstats.frames++;
      switch (type) {
        case FrameType::kRowBatch: {
          uint32_t fragment_id = 0;
          exec::RowSet batch;
          st = DecodeRowBatch(payload, arena, &fragment_id, &batch);
          if (st.ok() && (is_agg || fragment_id >= row_buckets->size())) {
            st = Status::ParseError("unexpected RowBatch fragment id");
          }
          if (!st.ok()) break;
          wstats.batches++;
          exec::RowSet& bucket = (*row_buckets)[fragment_id];
          for (exec::Row& row : batch) bucket.push_back(std::move(row));
          break;
        }
        case FrameType::kAggResult: {
          AggPartial partial;
          st = DecodeAggPartial(payload, aggs.size(), arena, &partial);
          if (st.ok() && !is_agg) {
            st = Status::ParseError("unexpected AggResult frame");
          }
          if (!st.ok()) break;
          wstats.batches++;
          for (auto& [hash, group] : partial.groups) {
            exec::MergeGroup(agg_merge, hash, std::move(group), aggs);
          }
          break;
        }
        case FrameType::kFragmentDone: {
          FragmentDoneMsg done;
          st = DecodeFragmentDone(payload, &done);
          if (!st.ok()) break;
          wstats.rows += done.rows_out;
          wstats.wall_nanos += done.wall_nanos;
          stats->tiles_scanned += done.tiles_scanned;
          stats->tiles_skipped += done.tiles_skipped;
          outstanding[w]--;
          outstanding_total--;
          break;
        }
        case FrameType::kError: {
          Status reported = Status::OK();
          st = DecodeStatus(payload, &reported);
          if (!st.ok()) break;
          if (first_error.ok()) {
            first_error =
                Status(reported.code(),
                       WorkerName(w) + ": " + reported.message());
          }
          outstanding[w]--;
          outstanding_total--;
          break;
        }
        default:
          st = Status::ParseError("unexpected frame type on exchange");
          break;
      }
      if (!st.ok()) {
        poisoned_ = true;
        return Status(st.code(), WorkerName(w) + ": " + st.message());
      }
    }
  }
  return first_error;
}

Status Cluster::Scan(const exec::ScanSpec& spec, exec::QueryContext& ctx,
                     exec::RowSet* out, exec::ExchangeStats* stats) {
  std::vector<size_t> fragment_shards;
  const bool is_side = !spec.sharded_side_path.empty();
  if (is_side) {
    // Shard-level pruning does not apply to side scans (the statistics
    // describe the base documents) — exactly the local scan's behavior.
    for (const auto& part : local_->SideParts(spec.sharded_side_path)) {
      fragment_shards.push_back(static_cast<size_t>(
          part.rowid_base >> storage::ShardedRelation::kRowIdShardShift));
    }
  } else {
    fragment_shards =
        exec::SurvivingShards(spec, ctx.options().enable_tile_skipping);
    stats->shards_scanned += fragment_shards.size();
    stats->shards_pruned +=
        local_->shard_count() - fragment_shards.size();
  }

  std::vector<exec::RowSet> buckets(manifest_.shard_count());
  JSONTILES_RETURN_NOT_OK(RunFragments(spec, fragment_shards, is_side,
                                       /*group_by=*/{}, /*aggs=*/{}, ctx,
                                       &buckets, /*agg_merge=*/nullptr,
                                       stats));
  // Ascending shard order = the local sharded scan's part order, so the
  // concatenation is bit-identical to local execution.
  size_t total = 0;
  for (const exec::RowSet& b : buckets) total += b.size();
  out->reserve(out->size() + total);
  for (exec::RowSet& b : buckets) {
    for (exec::Row& row : b) out->push_back(std::move(row));
  }
  return Status::OK();
}

Status Cluster::Aggregate(const exec::ScanSpec& spec,
                          const std::vector<exec::ExprPtr>& group_by,
                          const std::vector<exec::AggSpec>& aggs,
                          exec::QueryContext& ctx, exec::RowSet* out,
                          exec::ExchangeStats* stats) {
  std::vector<size_t> fragment_shards =
      exec::SurvivingShards(spec, ctx.options().enable_tile_skipping);
  stats->shards_scanned += fragment_shards.size();
  stats->shards_pruned += local_->shard_count() - fragment_shards.size();

  exec::AggGroupMap merged;
  JSONTILES_RETURN_NOT_OK(RunFragments(spec, fragment_shards,
                                       /*is_side=*/false, group_by, aggs, ctx,
                                       /*row_buckets=*/nullptr, &merged,
                                       stats));
  if (group_by.empty() && merged.empty()) {
    out->push_back(exec::EmptyGlobalAggRow(aggs));
    return Status::OK();
  }
  exec::FinalizeGroups(merged, aggs, out);
  return Status::OK();
}

}  // namespace jsontiles::dist
