#include "dist/wire.h"

#include <errno.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>

#include "util/bit_util.h"
#include "util/failpoint.h"
#include "util/hash.h"
#include "util/lz4.h"

namespace jsontiles::dist {

namespace {

// Wire parse failures mirror the manifest decoder's idiom: the failing
// predicate, verbatim, in a ParseError.
#define WIRE_READ(expr) \
  if (!(expr)) return Status::ParseError("corrupt wire frame: " #expr)

constexpr size_t kFrameHeaderSize = 1 + 4 + 4 + 8;

// Depth/arity caps for the expression decoder: far above any real query
// plan, low enough that corrupt input cannot recurse or allocate absurdly.
constexpr size_t kMaxExprDepth = 128;
constexpr uint64_t kMaxExprArgs = 4096;
constexpr uint64_t kMaxFragmentItems = 1u << 20;

uint64_t FrameChecksum(uint8_t type, uint32_t raw_size, uint32_t comp_size,
                       const uint8_t* payload, size_t payload_size) {
  const uint64_t seed =
      HashCombine(HashInt((static_cast<uint64_t>(type) << 32) | raw_size),
                  HashInt(comp_size));
  return HashBytes(payload, payload_size, seed);
}

std::chrono::steady_clock::time_point Deadline(int timeout_ms) {
  return std::chrono::steady_clock::now() +
         std::chrono::milliseconds(timeout_ms);
}

int RemainingMs(std::chrono::steady_clock::time_point deadline) {
  auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                  deadline - std::chrono::steady_clock::now())
                  .count();
  return left < 0 ? 0 : static_cast<int>(left);
}

// Read exactly `size` bytes with a deadline. kOutOfRange on EOF (clean only
// when `clean_eof_ok` and nothing was read yet), kInternal on timeout. When
// `frame_deadline` is non-null, the wait for the very first byte is bounded
// by `deadline` (the idle budget) and every later byte by *frame_deadline —
// which is (re)armed from `frame_timeout_ms` as soon as the first byte
// lands, so a peer that starts a frame and stalls cannot ride the idle
// budget.
Status ReadExact(int fd, uint8_t* dst, size_t size,
                 std::chrono::steady_clock::time_point deadline,
                 bool clean_eof_ok, uint64_t* wire_bytes,
                 std::chrono::steady_clock::time_point* frame_deadline =
                     nullptr,
                 int frame_timeout_ms = 0) {
  size_t done = 0;
  bool idle = frame_deadline != nullptr &&
              *frame_deadline == std::chrono::steady_clock::time_point();
  while (done < size) {
    struct pollfd pfd = {fd, POLLIN, 0};
    const auto effective =
        (frame_deadline != nullptr && !idle) ? *frame_deadline : deadline;
    const int left = RemainingMs(effective);
    if (left == 0) {
      return Status::Internal(idle ? "exchange idle timed out"
                                   : "exchange recv timed out");
    }
    int pr = ::poll(&pfd, 1, left);
    if (pr < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("poll: ") + std::strerror(errno));
    }
    if (pr == 0) {
      return Status::Internal(idle ? "exchange idle timed out"
                                   : "exchange recv timed out");
    }
    ssize_t n = ::read(fd, dst + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("read: ") + std::strerror(errno));
    }
    if (n == 0) {
      if (clean_eof_ok && done == 0) {
        return Status::OutOfRange("connection closed");
      }
      return Status::Internal("connection closed mid-frame");
    }
    if (idle) {
      *frame_deadline = Deadline(frame_timeout_ms);
      idle = false;
    }
    done += static_cast<size_t>(n);
  }
  if (wire_bytes != nullptr) *wire_bytes += size;
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// Byte codec
// ---------------------------------------------------------------------------

void WireWriter::U32(uint32_t v) {
  size_t at = out_->size();
  out_->resize(at + 4);
  bit_util::StoreU32(out_->data() + at, v);
}

void WireWriter::U64(uint64_t v) {
  size_t at = out_->size();
  out_->resize(at + 8);
  bit_util::StoreU64(out_->data() + at, v);
}

void WireWriter::F64(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, 8);
  U64(bits);
}

void WireWriter::Varint(uint64_t v) {
  uint8_t buf[10];
  int n = bit_util::EncodeVarint(buf, v);
  out_->insert(out_->end(), buf, buf + n);
}

void WireWriter::SVarint(int64_t v) { Varint(bit_util::ZigZagEncode(v)); }

void WireWriter::Str(std::string_view s) {
  Varint(s.size());
  out_->insert(out_->end(), s.begin(), s.end());
}

bool WireReader::U8(uint8_t* v) {
  if (pos_ + 1 > size_) return false;
  *v = data_[pos_++];
  return true;
}

bool WireReader::U32(uint32_t* v) {
  if (pos_ + 4 > size_) return false;
  *v = bit_util::LoadU32(data_ + pos_);
  pos_ += 4;
  return true;
}

bool WireReader::U64(uint64_t* v) {
  if (pos_ + 8 > size_) return false;
  *v = bit_util::LoadU64(data_ + pos_);
  pos_ += 8;
  return true;
}

bool WireReader::I64(int64_t* v) {
  uint64_t u;
  if (!U64(&u)) return false;
  *v = static_cast<int64_t>(u);
  return true;
}

bool WireReader::F64(double* v) {
  uint64_t bits;
  if (!U64(&bits)) return false;
  std::memcpy(v, &bits, 8);
  return true;
}

bool WireReader::Varint(uint64_t* v) {
  uint64_t out = 0;
  int shift = 0;
  while (true) {
    if (pos_ >= size_ || shift > 63) return false;
    uint8_t b = data_[pos_++];
    out |= static_cast<uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) break;
    shift += 7;
  }
  *v = out;
  return true;
}

bool WireReader::SVarint(int64_t* v) {
  uint64_t u;
  if (!Varint(&u)) return false;
  *v = bit_util::ZigZagDecode(u);
  return true;
}

bool WireReader::Str(std::string* s) {
  std::string_view view;
  if (!StrView(&view)) return false;
  s->assign(view);
  return true;
}

bool WireReader::StrView(std::string_view* s) {
  uint64_t len;
  if (!Varint(&len)) return false;
  if (len > size_ - pos_) return false;
  *s = std::string_view(reinterpret_cast<const char*>(data_ + pos_),
                        static_cast<size_t>(len));
  pos_ += static_cast<size_t>(len);
  return true;
}

// ---------------------------------------------------------------------------
// Frame layer
// ---------------------------------------------------------------------------

void AppendFrame(FrameType type, const std::vector<uint8_t>& payload,
                 std::vector<uint8_t>* stream) {
  JSONTILES_CHECK(payload.size() <= kMaxFramePayload);
  std::vector<uint8_t> comp = lz4::Compress(payload.data(), payload.size());
  const bool store_raw = comp.size() >= payload.size();
  const uint8_t* wire = store_raw ? payload.data() : comp.data();
  const uint32_t raw_size = static_cast<uint32_t>(payload.size());
  const uint32_t comp_size =
      store_raw ? 0 : static_cast<uint32_t>(comp.size());
  const size_t wire_size = store_raw ? payload.size() : comp.size();

  size_t at = stream->size();
  stream->resize(at + kFrameHeaderSize);
  uint8_t* h = stream->data() + at;
  h[0] = static_cast<uint8_t>(type);
  bit_util::StoreU32(h + 1, raw_size);
  bit_util::StoreU32(h + 5, comp_size);
  bit_util::StoreU64(
      h + 9, FrameChecksum(h[0], raw_size, comp_size, wire, wire_size));
  stream->insert(stream->end(), wire, wire + wire_size);
}

Status WriteFrame(int fd, FrameType type, const std::vector<uint8_t>& payload,
                  uint64_t* wire_bytes) {
  JSONTILES_FAILPOINT_RETURN("dist.frame_write");
  std::vector<uint8_t> frame;
  frame.reserve(kFrameHeaderSize + payload.size());
  AppendFrame(type, payload, &frame);
  size_t done = 0;
  while (done < frame.size()) {
    // MSG_NOSIGNAL: a peer that died mid-stream must surface as EPIPE, not
    // kill the writing process with SIGPIPE.
    ssize_t n = ::send(fd, frame.data() + done, frame.size() - done,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("exchange write: ") +
                              std::strerror(errno));
    }
    done += static_cast<size_t>(n);
  }
  if (wire_bytes != nullptr) *wire_bytes += frame.size();
  return Status::OK();
}

Status DecodeFrame(const uint8_t* data, size_t size, size_t* consumed,
                   FrameType* type, std::vector<uint8_t>* payload) {
  WIRE_READ(size >= kFrameHeaderSize);
  const uint8_t type_raw = data[0];
  WIRE_READ(type_raw >= 1 && type_raw <= kMaxFrameType);
  const uint32_t raw_size = bit_util::LoadU32(data + 1);
  const uint32_t comp_size = bit_util::LoadU32(data + 5);
  const uint64_t checksum = bit_util::LoadU64(data + 9);
  WIRE_READ(raw_size <= kMaxFramePayload && comp_size <= kMaxFramePayload);
  WIRE_READ(comp_size == 0 || comp_size < raw_size);
  const size_t wire_size = comp_size != 0 ? comp_size : raw_size;
  WIRE_READ(size - kFrameHeaderSize >= wire_size);
  const uint8_t* wire = data + kFrameHeaderSize;
  WIRE_READ(FrameChecksum(type_raw, raw_size, comp_size, wire, wire_size) ==
            checksum);
  payload->clear();
  payload->resize(raw_size);
  if (comp_size != 0) {
    WIRE_READ(lz4::Decompress(wire, comp_size, payload->data(), raw_size));
  } else {
    std::memcpy(payload->data(), wire, raw_size);
  }
  *type = static_cast<FrameType>(type_raw);
  *consumed = kFrameHeaderSize + wire_size;
  return Status::OK();
}

Status ReadFrame(int fd, int idle_timeout_ms, int frame_timeout_ms,
                 FrameType* type, std::vector<uint8_t>* payload,
                 uint64_t* wire_bytes) {
  const auto idle_deadline = Deadline(idle_timeout_ms);
  // Armed by ReadExact the moment the first byte arrives; bounds everything
  // after it.
  std::chrono::steady_clock::time_point frame_deadline{};
  uint8_t header[kFrameHeaderSize];
  JSONTILES_RETURN_NOT_OK(ReadExact(fd, header, kFrameHeaderSize,
                                    idle_deadline, /*clean_eof_ok=*/true,
                                    wire_bytes, &frame_deadline,
                                    frame_timeout_ms));
  const uint8_t type_raw = header[0];
  WIRE_READ(type_raw >= 1 && type_raw <= kMaxFrameType);
  const uint32_t raw_size = bit_util::LoadU32(header + 1);
  const uint32_t comp_size = bit_util::LoadU32(header + 5);
  WIRE_READ(raw_size <= kMaxFramePayload && comp_size <= kMaxFramePayload);
  WIRE_READ(comp_size == 0 || comp_size < raw_size);
  const size_t wire_size = comp_size != 0 ? comp_size : raw_size;
  std::vector<uint8_t> wire(wire_size);
  JSONTILES_RETURN_NOT_OK(ReadExact(fd, wire.data(), wire_size,
                                    frame_deadline,
                                    /*clean_eof_ok=*/false, wire_bytes));
  const uint64_t checksum = bit_util::LoadU64(header + 9);
  WIRE_READ(FrameChecksum(type_raw, raw_size, comp_size, wire.data(),
                          wire_size) == checksum);
  payload->clear();
  payload->resize(raw_size);
  if (comp_size != 0) {
    WIRE_READ(lz4::Decompress(wire.data(), comp_size, payload->data(),
                              raw_size));
  } else {
    std::memcpy(payload->data(), wire.data(), raw_size);
  }
  *type = static_cast<FrameType>(type_raw);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Handshake messages
// ---------------------------------------------------------------------------

void EncodeHello(const HelloMsg& msg, std::vector<uint8_t>* out) {
  WireWriter w(out);
  w.U32(msg.version);
  w.I64(msg.pid);
}

Status DecodeHello(const std::vector<uint8_t>& payload, HelloMsg* msg) {
  WireReader r(payload.data(), payload.size());
  WIRE_READ(r.U32(&msg->version));
  WIRE_READ(r.I64(&msg->pid));
  WIRE_READ(r.AtEnd());
  return Status::OK();
}

void EncodeOpen(const OpenMsg& msg, std::vector<uint8_t>* out) {
  WireWriter w(out);
  w.Str(msg.manifest_path);
  w.Varint(msg.num_threads);
  w.Varint(msg.shards.size());
  for (uint64_t s : msg.shards) w.Varint(s);
}

Status DecodeOpen(const std::vector<uint8_t>& payload, OpenMsg* msg) {
  WireReader r(payload.data(), payload.size());
  WIRE_READ(r.Str(&msg->manifest_path));
  WIRE_READ(r.Varint(&msg->num_threads));
  WIRE_READ(msg->num_threads >= 1 && msg->num_threads <= 4096);
  uint64_t n;
  WIRE_READ(r.Varint(&n));
  WIRE_READ(n <= kMaxFragmentItems);
  for (uint64_t i = 0; i < n; i++) {
    uint64_t s;
    WIRE_READ(r.Varint(&s));
    WIRE_READ(msg->shards.empty() || msg->shards.back() < s);
    msg->shards.push_back(s);
  }
  WIRE_READ(r.AtEnd());
  return Status::OK();
}

void EncodeOpenOk(const OpenOkMsg& msg, std::vector<uint8_t>* out) {
  WireWriter w(out);
  w.Varint(msg.shard_rows.size());
  for (uint64_t rows : msg.shard_rows) w.Varint(rows);
}

Status DecodeOpenOk(const std::vector<uint8_t>& payload, OpenOkMsg* msg) {
  WireReader r(payload.data(), payload.size());
  uint64_t n;
  WIRE_READ(r.Varint(&n));
  WIRE_READ(n <= kMaxFragmentItems);
  for (uint64_t i = 0; i < n; i++) {
    uint64_t rows;
    WIRE_READ(r.Varint(&rows));
    msg->shard_rows.push_back(rows);
  }
  WIRE_READ(r.AtEnd());
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Value codec
// ---------------------------------------------------------------------------

void EncodeValue(const exec::Value& v, WireWriter* w) {
  w->U8(static_cast<uint8_t>(v.type));
  w->U8(v.scale);
  switch (v.type) {
    case exec::ValueType::kNull:
      return;
    case exec::ValueType::kString:
      w->Str(v.s);
      return;
    case exec::ValueType::kFloat:
      w->F64(v.d);
      return;
    default:
      w->I64(v.i);
      return;
  }
}

bool DecodeValue(WireReader* r, Arena* arena, exec::Value* v) {
  uint8_t type_raw, scale;
  if (!r->U8(&type_raw) || !r->U8(&scale)) return false;
  if (type_raw > static_cast<uint8_t>(exec::ValueType::kNumeric)) return false;
  *v = exec::Value();
  v->type = static_cast<exec::ValueType>(type_raw);
  v->scale = scale;
  switch (v->type) {
    case exec::ValueType::kNull:
      return true;
    case exec::ValueType::kString: {
      std::string_view s;
      if (!r->StrView(&s)) return false;
      if (s.empty()) {
        v->s = std::string_view();
        return true;
      }
      uint8_t* copy = arena->AllocateCopy(s.data(), s.size());
      v->s = std::string_view(reinterpret_cast<const char*>(copy), s.size());
      return true;
    }
    case exec::ValueType::kFloat:
      return r->F64(&v->d);
    default:
      return r->I64(&v->i);
  }
}

// ---------------------------------------------------------------------------
// Expression codec
// ---------------------------------------------------------------------------

void EncodeExpr(const exec::Expr& e, WireWriter* w) {
  using exec::ExprKind;
  w->U8(static_cast<uint8_t>(e.kind));
  switch (e.kind) {
    case ExprKind::kConst:
      EncodeValue(e.constant, w);
      break;
    case ExprKind::kSlotRef:
      w->SVarint(e.slot);
      break;
    case ExprKind::kAccess:
      w->Str(e.table);
      w->Str(e.path);
      w->U8(static_cast<uint8_t>(e.access_type));
      break;
    case ExprKind::kArrayContains:
      w->Str(e.table);
      w->Str(e.path);
      w->Str(e.pattern);
      w->Str(e.const_storage);
      w->U8(static_cast<uint8_t>(e.access_type));
      break;
    case ExprKind::kBinary:
      w->U8(static_cast<uint8_t>(e.bin_op));
      break;
    case ExprKind::kUnary:
      w->U8(static_cast<uint8_t>(e.un_op));
      break;
    case ExprKind::kLike:
      w->Str(e.pattern);
      w->U8(e.negated ? 1 : 0);
      break;
    case ExprKind::kIn:
      w->U8(e.negated ? 1 : 0);
      w->Varint(e.in_list.size());
      for (const exec::Value& v : e.in_list) EncodeValue(v, w);
      break;
    case ExprKind::kSubstring:
      w->SVarint(e.substr_start);
      w->SVarint(e.substr_len);
      break;
    case ExprKind::kCastTo:
      w->U8(static_cast<uint8_t>(e.access_type));
      break;
    case ExprKind::kCase:
    case ExprKind::kExtractYear:
      break;
  }
  w->Varint(e.args.size());
  for (const exec::ExprPtr& arg : e.args) EncodeExpr(*arg, w);
}

Status DecodeExpr(WireReader* r, size_t depth, exec::ExprPtr* out) {
  using exec::ExprKind;
  using exec::ValueType;
  WIRE_READ(depth < kMaxExprDepth);
  uint8_t kind_raw;
  WIRE_READ(r->U8(&kind_raw));
  WIRE_READ(kind_raw <= static_cast<uint8_t>(ExprKind::kCastTo));
  auto e = std::make_shared<exec::Expr>();
  e->kind = static_cast<ExprKind>(kind_raw);
  // Scratch arena for constant decode; string payloads are re-anchored into
  // the expression's own storage below (the factories' ownership idiom).
  Arena scratch;
  switch (e->kind) {
    case ExprKind::kConst: {
      exec::Value v;
      WIRE_READ(DecodeValue(r, &scratch, &v));
      if (v.type == ValueType::kString) {
        e->const_storage.assign(v.s);
        v.s = e->const_storage;
      }
      e->constant = v;
      break;
    }
    case ExprKind::kSlotRef: {
      int64_t slot;
      WIRE_READ(r->SVarint(&slot));
      WIRE_READ(slot >= 0 && slot <= 1 << 20);
      e->slot = static_cast<int>(slot);
      break;
    }
    case ExprKind::kAccess: {
      uint8_t at;
      WIRE_READ(r->Str(&e->table));
      WIRE_READ(r->Str(&e->path));
      WIRE_READ(r->U8(&at));
      WIRE_READ(at <= static_cast<uint8_t>(ValueType::kNumeric));
      e->access_type = static_cast<ValueType>(at);
      break;
    }
    case ExprKind::kArrayContains: {
      uint8_t at;
      WIRE_READ(r->Str(&e->table));
      WIRE_READ(r->Str(&e->path));
      WIRE_READ(r->Str(&e->pattern));
      WIRE_READ(r->Str(&e->const_storage));
      WIRE_READ(r->U8(&at));
      WIRE_READ(at <= static_cast<uint8_t>(ValueType::kNumeric));
      e->access_type = static_cast<ValueType>(at);
      e->constant = exec::Value::String(e->const_storage);
      break;
    }
    case ExprKind::kBinary: {
      uint8_t op;
      WIRE_READ(r->U8(&op));
      WIRE_READ(op <= static_cast<uint8_t>(exec::BinOp::kOr));
      e->bin_op = static_cast<exec::BinOp>(op);
      break;
    }
    case ExprKind::kUnary: {
      uint8_t op;
      WIRE_READ(r->U8(&op));
      WIRE_READ(op <= static_cast<uint8_t>(exec::UnOp::kIsNotNull));
      e->un_op = static_cast<exec::UnOp>(op);
      break;
    }
    case ExprKind::kLike: {
      uint8_t negated;
      WIRE_READ(r->Str(&e->pattern));
      WIRE_READ(r->U8(&negated));
      WIRE_READ(negated <= 1);
      e->negated = negated != 0;
      e->like = std::make_shared<exec::CompiledLike>(e->pattern);
      break;
    }
    case ExprKind::kIn: {
      uint8_t negated;
      WIRE_READ(r->U8(&negated));
      WIRE_READ(negated <= 1);
      e->negated = negated != 0;
      uint64_t n;
      WIRE_READ(r->Varint(&n));
      WIRE_READ(n <= kMaxExprArgs);
      // Two passes: strings must be anchored in in_storage before in_list
      // takes views, and in_storage must never reallocate after that.
      std::vector<exec::Value> raw(n);
      size_t num_strings = 0;
      for (uint64_t i = 0; i < n; i++) {
        WIRE_READ(DecodeValue(r, &scratch, &raw[i]));
        if (raw[i].type == ValueType::kString) num_strings++;
      }
      e->in_storage.reserve(num_strings);
      for (exec::Value& v : raw) {
        if (v.type == ValueType::kString) {
          e->in_storage.emplace_back(v.s);
          v.s = e->in_storage.back();
        }
        e->in_list.push_back(v);
      }
      break;
    }
    case ExprKind::kSubstring: {
      int64_t start, len;
      WIRE_READ(r->SVarint(&start));
      WIRE_READ(r->SVarint(&len));
      WIRE_READ(start >= -(1 << 30) && start <= (1 << 30));
      WIRE_READ(len >= 0 && len <= (1 << 30));
      e->substr_start = static_cast<int>(start);
      e->substr_len = static_cast<int>(len);
      break;
    }
    case ExprKind::kCastTo: {
      uint8_t at;
      WIRE_READ(r->U8(&at));
      WIRE_READ(at <= static_cast<uint8_t>(ValueType::kNumeric));
      e->access_type = static_cast<ValueType>(at);
      break;
    }
    case ExprKind::kCase:
    case ExprKind::kExtractYear:
      break;
  }
  uint64_t num_args;
  WIRE_READ(r->Varint(&num_args));
  WIRE_READ(num_args <= kMaxExprArgs);
  // Arity sanity for the fixed-arity kinds the evaluator indexes into.
  switch (e->kind) {
    case ExprKind::kBinary:
      WIRE_READ(num_args == 2);
      break;
    case ExprKind::kUnary:
    case ExprKind::kLike:
    case ExprKind::kSubstring:
    case ExprKind::kExtractYear:
    case ExprKind::kCastTo:
      WIRE_READ(num_args == 1);
      break;
    case ExprKind::kIn:
      WIRE_READ(num_args == 1);
      break;
    case ExprKind::kConst:
    case ExprKind::kSlotRef:
    case ExprKind::kAccess:
    case ExprKind::kArrayContains:
      WIRE_READ(num_args == 0);
      break;
    case ExprKind::kCase:
      WIRE_READ(num_args >= 1);
      break;
  }
  e->args.reserve(num_args);
  for (uint64_t i = 0; i < num_args; i++) {
    exec::ExprPtr arg;
    JSONTILES_RETURN_NOT_OK(DecodeExpr(r, depth + 1, &arg));
    e->args.push_back(std::move(arg));
  }
  *out = std::move(e);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Fragment codec
// ---------------------------------------------------------------------------

void EncodeFragment(const FragmentMsg& msg, std::vector<uint8_t>* out) {
  WireWriter w(out);
  w.U32(msg.fragment_id);
  w.U32(msg.epoch);
  w.U32(msg.shard_index);
  w.U8(static_cast<uint8_t>((msg.is_side ? 1 : 0) |
                            (msg.enable_tile_skipping ? 2 : 0) |
                            (msg.enable_vectorized ? 4 : 0)));
  w.Str(msg.side_path);
  w.Varint(msg.accesses.size());
  for (const exec::ExprPtr& a : msg.accesses) EncodeExpr(*a, &w);
  w.U8(msg.filter != nullptr ? 1 : 0);
  if (msg.filter != nullptr) EncodeExpr(*msg.filter, &w);
  w.Varint(msg.null_rejecting_paths.size());
  for (const std::string& p : msg.null_rejecting_paths) w.Str(p);
  w.Varint(msg.range_predicates.size());
  for (const exec::RangePredicate& rp : msg.range_predicates) {
    w.Str(rp.path);
    w.U8(static_cast<uint8_t>(rp.access_type));
    w.U8(static_cast<uint8_t>(rp.op));
    EncodeValue(rp.constant, &w);
  }
  w.Varint(msg.group_by.size());
  for (const exec::ExprPtr& g : msg.group_by) EncodeExpr(*g, &w);
  w.Varint(msg.aggs.size());
  for (const exec::AggSpec& a : msg.aggs) {
    w.U8(static_cast<uint8_t>(a.kind));
    w.U8(a.arg != nullptr ? 1 : 0);
    if (a.arg != nullptr) EncodeExpr(*a.arg, &w);
  }
}

Status DecodeFragment(const std::vector<uint8_t>& payload, FragmentMsg* msg) {
  using exec::ValueType;
  WireReader r(payload.data(), payload.size());
  WIRE_READ(r.U32(&msg->fragment_id));
  WIRE_READ(r.U32(&msg->epoch));
  WIRE_READ(r.U32(&msg->shard_index));
  uint8_t flags;
  WIRE_READ(r.U8(&flags));
  WIRE_READ(flags <= 7);
  msg->is_side = (flags & 1) != 0;
  msg->enable_tile_skipping = (flags & 2) != 0;
  msg->enable_vectorized = (flags & 4) != 0;
  WIRE_READ(r.Str(&msg->side_path));
  WIRE_READ(msg->is_side == !msg->side_path.empty());

  uint64_t n;
  WIRE_READ(r.Varint(&n));
  WIRE_READ(n <= kMaxFragmentItems);
  for (uint64_t i = 0; i < n; i++) {
    exec::ExprPtr e;
    JSONTILES_RETURN_NOT_OK(DecodeExpr(&r, 0, &e));
    msg->accesses.push_back(std::move(e));
  }
  uint8_t has_filter;
  WIRE_READ(r.U8(&has_filter));
  WIRE_READ(has_filter <= 1);
  if (has_filter != 0) {
    JSONTILES_RETURN_NOT_OK(DecodeExpr(&r, 0, &msg->filter));
  }
  WIRE_READ(r.Varint(&n));
  WIRE_READ(n <= kMaxFragmentItems);
  for (uint64_t i = 0; i < n; i++) {
    std::string p;
    WIRE_READ(r.Str(&p));
    msg->null_rejecting_paths.push_back(std::move(p));
  }
  WIRE_READ(r.Varint(&n));
  WIRE_READ(n <= kMaxFragmentItems);
  Arena scratch;
  for (uint64_t i = 0; i < n; i++) {
    exec::RangePredicate rp;
    uint8_t at, op;
    WIRE_READ(r.Str(&rp.path));
    WIRE_READ(r.U8(&at));
    WIRE_READ(at <= static_cast<uint8_t>(ValueType::kNumeric));
    rp.access_type = static_cast<ValueType>(at);
    WIRE_READ(r.U8(&op));
    WIRE_READ(op <= static_cast<uint8_t>(exec::BinOp::kOr));
    rp.op = static_cast<exec::BinOp>(op);
    WIRE_READ(DecodeValue(&r, &scratch, &rp.constant));
    if (rp.constant.type == ValueType::kString) {
      // Anchor the constant in the fragment's pool (deque: stable refs).
      msg->string_pool.emplace_back(rp.constant.s);
      rp.constant.s = msg->string_pool.back();
    }
    msg->range_predicates.push_back(std::move(rp));
  }
  WIRE_READ(r.Varint(&n));
  WIRE_READ(n <= kMaxFragmentItems);
  for (uint64_t i = 0; i < n; i++) {
    exec::ExprPtr e;
    JSONTILES_RETURN_NOT_OK(DecodeExpr(&r, 0, &e));
    msg->group_by.push_back(std::move(e));
  }
  WIRE_READ(r.Varint(&n));
  WIRE_READ(n <= kMaxFragmentItems);
  for (uint64_t i = 0; i < n; i++) {
    exec::AggSpec spec;
    uint8_t kind, has_arg;
    WIRE_READ(r.U8(&kind));
    WIRE_READ(kind <= static_cast<uint8_t>(exec::AggSpec::Kind::kCountDistinct));
    spec.kind = static_cast<exec::AggSpec::Kind>(kind);
    WIRE_READ(r.U8(&has_arg));
    WIRE_READ(has_arg <= 1);
    if (has_arg != 0) {
      exec::ExprPtr arg;
      JSONTILES_RETURN_NOT_OK(DecodeExpr(&r, 0, &arg));
      spec.arg = std::move(arg);
    }
    msg->aggs.push_back(std::move(spec));
  }
  WIRE_READ(r.AtEnd());
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Row batch codec
// ---------------------------------------------------------------------------

void EncodeRowBatch(uint32_t fragment_id, uint32_t epoch,
                    const exec::RowSet& rows, size_t row_begin,
                    size_t row_end, std::vector<uint8_t>* out) {
  WireWriter w(out);
  w.U32(fragment_id);
  w.U32(epoch);
  w.U32(static_cast<uint32_t>(row_end - row_begin));
  for (size_t i = row_begin; i < row_end; i++) {
    const exec::Row& row = rows[i];
    w.Varint(row.size());
    for (const exec::Value& v : row) EncodeValue(v, &w);
  }
}

Status DecodeRowBatch(const std::vector<uint8_t>& payload, Arena* arena,
                      uint32_t* fragment_id, uint32_t* epoch,
                      exec::RowSet* out) {
  WireReader r(payload.data(), payload.size());
  uint32_t num_rows;
  WIRE_READ(r.U32(fragment_id));
  WIRE_READ(r.U32(epoch));
  WIRE_READ(r.U32(&num_rows));
  for (uint32_t i = 0; i < num_rows; i++) {
    uint64_t num_values;
    WIRE_READ(r.Varint(&num_values));
    // A value is at least 2 encoded bytes; cheap guard before reserving.
    WIRE_READ(num_values <= r.remaining() / 2 + 1);
    exec::Row row;
    row.reserve(num_values);
    for (uint64_t v = 0; v < num_values; v++) {
      exec::Value value;
      WIRE_READ(DecodeValue(&r, arena, &value));
      row.push_back(value);
    }
    out->push_back(std::move(row));
  }
  WIRE_READ(r.AtEnd());
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Aggregate partial codec
// ---------------------------------------------------------------------------

namespace {

void EncodeAccumulator(const exec::Accumulator& acc, WireWriter* w) {
  const auto& sum = acc.sum_f;
  w->U8(static_cast<uint8_t>((acc.sum_is_float ? 1 : 0) |
                             (acc.sum_seen ? 2 : 0) |
                             (sum.has_special() ? 4 : 0)));
  w->I64(acc.sum_i);
  w->I64(acc.count);
  w->Varint(sum.partials().size());
  for (double p : sum.partials()) w->F64(p);
  w->F64(sum.special());
  EncodeValue(acc.min, w);
  EncodeValue(acc.max, w);
  w->Varint(acc.distinct.size());
  for (uint64_t h : acc.distinct) w->U64(h);
}

Status DecodeAccumulator(WireReader* r, Arena* arena,
                         exec::Accumulator* acc) {
  uint8_t flags;
  WIRE_READ(r->U8(&flags));
  WIRE_READ(flags <= 7);
  acc->sum_is_float = (flags & 1) != 0;
  acc->sum_seen = (flags & 2) != 0;
  const bool has_special = (flags & 4) != 0;
  WIRE_READ(r->I64(&acc->sum_i));
  WIRE_READ(r->I64(&acc->count));
  uint64_t n;
  WIRE_READ(r->Varint(&n));
  WIRE_READ(n <= r->remaining() / 8);
  std::vector<double> partials(n);
  for (uint64_t i = 0; i < n; i++) WIRE_READ(r->F64(&partials[i]));
  double special;
  WIRE_READ(r->F64(&special));
  acc->sum_f =
      exec::ExactFloatSum::Restore(std::move(partials), special, has_special);
  WIRE_READ(DecodeValue(r, arena, &acc->min));
  WIRE_READ(DecodeValue(r, arena, &acc->max));
  WIRE_READ(r->Varint(&n));
  WIRE_READ(n <= r->remaining() / 8);
  for (uint64_t i = 0; i < n; i++) {
    uint64_t h;
    WIRE_READ(r->U64(&h));
    acc->distinct.insert(h);
  }
  return Status::OK();
}

}  // namespace

void EncodeAggPartial(uint32_t fragment_id, uint32_t epoch,
                      const exec::AggGroupMap& groups,
                      const std::vector<exec::AggSpec>& aggs,
                      std::vector<uint8_t>* out) {
  WireWriter w(out);
  w.U32(fragment_id);
  w.U32(epoch);
  size_t num_groups = 0;
  for (const auto& [h, bucket] : groups) num_groups += bucket.size();
  w.Varint(num_groups);
  for (const auto& [h, bucket] : groups) {
    for (const exec::AggGroup& g : bucket) {
      w.U64(h);
      w.Varint(g.keys.size());
      for (const exec::Value& k : g.keys) EncodeValue(k, &w);
      for (size_t a = 0; a < aggs.size(); a++) {
        EncodeAccumulator(g.accs[a], &w);
      }
    }
  }
}

Status DecodeAggPartial(const std::vector<uint8_t>& payload, size_t num_aggs,
                        Arena* arena, AggPartial* out) {
  WireReader r(payload.data(), payload.size());
  WIRE_READ(r.U32(&out->fragment_id));
  WIRE_READ(r.U32(&out->epoch));
  uint64_t num_groups;
  WIRE_READ(r.Varint(&num_groups));
  WIRE_READ(num_groups <= r.remaining());
  out->groups.reserve(num_groups);
  for (uint64_t i = 0; i < num_groups; i++) {
    uint64_t hash;
    WIRE_READ(r.U64(&hash));
    uint64_t num_keys;
    WIRE_READ(r.Varint(&num_keys));
    WIRE_READ(num_keys <= r.remaining() / 2 + 1);
    exec::AggGroup group;
    group.keys.reserve(num_keys);
    for (uint64_t k = 0; k < num_keys; k++) {
      exec::Value v;
      WIRE_READ(DecodeValue(&r, arena, &v));
      group.keys.push_back(v);
    }
    group.accs.resize(num_aggs);
    for (size_t a = 0; a < num_aggs; a++) {
      JSONTILES_RETURN_NOT_OK(DecodeAccumulator(&r, arena, &group.accs[a]));
    }
    out->groups.emplace_back(hash, std::move(group));
  }
  WIRE_READ(r.AtEnd());
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Fragment-done and error codecs
// ---------------------------------------------------------------------------

void EncodeFragmentDone(const FragmentDoneMsg& msg,
                        std::vector<uint8_t>* out) {
  WireWriter w(out);
  w.U32(msg.fragment_id);
  w.U32(msg.epoch);
  w.U64(msg.rows_out);
  w.U64(msg.tiles_scanned);
  w.U64(msg.tiles_skipped);
  w.U64(msg.wall_nanos);
}

Status DecodeFragmentDone(const std::vector<uint8_t>& payload,
                          FragmentDoneMsg* msg) {
  WireReader r(payload.data(), payload.size());
  WIRE_READ(r.U32(&msg->fragment_id));
  WIRE_READ(r.U32(&msg->epoch));
  WIRE_READ(r.U64(&msg->rows_out));
  WIRE_READ(r.U64(&msg->tiles_scanned));
  WIRE_READ(r.U64(&msg->tiles_skipped));
  WIRE_READ(r.U64(&msg->wall_nanos));
  WIRE_READ(r.AtEnd());
  return Status::OK();
}

void EncodeStatus(const Status& st, std::vector<uint8_t>* out) {
  WireWriter w(out);
  w.U8(static_cast<uint8_t>(st.code()));
  w.Str(st.message());
}

Status DecodeStatus(const std::vector<uint8_t>& payload, Status* decoded) {
  WireReader r(payload.data(), payload.size());
  uint8_t code;
  WIRE_READ(r.U8(&code));
  WIRE_READ(code >= 1 && code <= static_cast<uint8_t>(kMaxStatusCode));
  std::string message;
  WIRE_READ(r.Str(&message));
  WIRE_READ(r.AtEnd());
  *decoded = Status(static_cast<StatusCode>(code), std::move(message));
  return Status::OK();
}

void EncodeFragmentError(const FragmentErrorMsg& msg,
                         std::vector<uint8_t>* out) {
  WireWriter w(out);
  w.U32(msg.fragment_id);
  w.U32(msg.epoch);
  w.U8(static_cast<uint8_t>(msg.error.code()));
  w.Str(msg.error.message());
}

Status DecodeFragmentError(const std::vector<uint8_t>& payload,
                           FragmentErrorMsg* msg) {
  WireReader r(payload.data(), payload.size());
  WIRE_READ(r.U32(&msg->fragment_id));
  WIRE_READ(r.U32(&msg->epoch));
  uint8_t code;
  WIRE_READ(r.U8(&code));
  WIRE_READ(code >= 1 && code <= static_cast<uint8_t>(kMaxStatusCode));
  std::string message;
  WIRE_READ(r.Str(&message));
  WIRE_READ(r.AtEnd());
  msg->error = Status(static_cast<StatusCode>(code), std::move(message));
  return Status::OK();
}

}  // namespace jsontiles::dist
