// Distributed shard execution: the worker side (DESIGN.md §13, §14).
//
// jsontiles_workerd is a thin process around the existing engine: it opens
// only its assigned shards of a JTSM manifest (storage::OpenShardSubset) and
// executes scan / partial-aggregate fragments with the same ScanExec and
// accumulator code local queries use, streaming results back as wire frames.
// One connection, one coordinator, fragments executed in arrival order —
// every fragment ends in exactly one FragmentDone or FragmentError frame
// (echoing the request's epoch), which is what keeps the coordinator's
// stream multiplexing frame-aligned and lets it reject frames from a
// superseded dispatch.
//
// Chaos failpoints (armed via --failpoint, DESIGN.md §14): dist.worker_exec
// (fragment reports a deterministic error), dist.worker_crash (_exit at
// fragment start), dist.worker_crash_frame (_exit mid result-frame write —
// the coordinator sees a torn stream), dist.worker_hang (stops reading),
// dist.worker_stale_frame (pre-sends a wrong-epoch frame),
// dist.worker_ignore_shutdown (teardown must SIGKILL + reap).

#ifndef JSONTILES_DIST_WORKER_H_
#define JSONTILES_DIST_WORKER_H_

#include <string>

#include "util/status.h"

namespace jsontiles::dist {

struct WorkerOptions {
  /// AF_UNIX path to bind + listen on; the coordinator connects here.
  std::string socket_path;
};

/// Arm a failpoint from its command-line form "name=always|nth:N|everyk:K"
/// (failpoints are per-process, so the coordinator forwards worker-side ones
/// through jsontiles_workerd's argv).
Status ParseFailpointArg(const std::string& arg);

/// Serve one coordinator connection until Shutdown or EOF; the process exit
/// code. Runs the bind / listen / accept / Hello handshake, then the frame
/// loop.
int RunWorker(const WorkerOptions& options);

}  // namespace jsontiles::dist

#endif  // JSONTILES_DIST_WORKER_H_
