// TPC-H data generator ("dbgen-lite") and its JSONization (paper §6.1).
//
// The paper converts every row of every TPC-H table into a JSON object whose
// keys are the column names, then combines all tables into a single relation
// to simulate combined log data. This generator reproduces the schema, the
// value domains the 22 queries depend on (brands, types, containers,
// segments, priorities, ship modes, date ranges, comment keywords), and the
// referential structure, at a configurable scale factor. It is deterministic.

#ifndef JSONTILES_WORKLOAD_TPCH_H_
#define JSONTILES_WORKLOAD_TPCH_H_

#include <string>
#include <vector>

namespace jsontiles::workload {

struct TpchOptions {
  /// Fraction of the standard SF1 sizes (0.01 => 1500 customers etc.).
  double scale_factor = 0.01;
  uint64_t seed = 19920101;
  /// Shuffle all documents before loading (§6.4 shuffled TPC-H).
  bool shuffle = false;
};

struct TpchData {
  /// All tables combined into one document stream, in generation order
  /// (region, nation, supplier, customer, part, partsupp, orders, lineitem)
  /// or shuffled when requested.
  std::vector<std::string> combined;

  /// The lineitem documents alone ("Only" variants of §6.7).
  std::vector<std::string> lineitem_only;

  // Table sizes (for sanity checks and reporting).
  size_t num_region = 0, num_nation = 0, num_supplier = 0, num_customer = 0;
  size_t num_part = 0, num_partsupp = 0, num_orders = 0, num_lineitem = 0;
};

TpchData GenerateTpch(const TpchOptions& options);

}  // namespace jsontiles::workload

#endif  // JSONTILES_WORKLOAD_TPCH_H_
