// The 22 TPC-H queries over the JSONized combined relation (paper §6.1,
// Table 1).
//
// Queries are expressed against the single combined relation: a "table scan"
// is a scan whose filter requires that table's key (IS NOT NULL on the
// marker path), which is null-rejecting and therefore drives tile skipping.
// Queries with correlated subqueries are hand-decorrelated into staged query
// blocks plus semi/anti joins — the standard unnesting a production
// optimizer performs.

#ifndef JSONTILES_WORKLOAD_TPCH_QUERIES_H_
#define JSONTILES_WORKLOAD_TPCH_QUERIES_H_

#include "exec/scan.h"
#include "opt/query.h"
#include "storage/relation.h"

namespace jsontiles::workload {

/// Execute TPC-H query `number` (1-22) against the combined relation. The
/// source may be a plain or a sharded relation (implicit TableSource).
exec::RowSet RunTpchQuery(int number, const opt::TableSource& rel,
                          exec::QueryContext& ctx,
                          const opt::PlannerOptions& planner = {});

/// Short description used in reports.
const char* TpchQueryName(int number);

}  // namespace jsontiles::workload

#endif  // JSONTILES_WORKLOAD_TPCH_QUERIES_H_
