#include "workload/tpch_queries.h"

#include "exec/operators.h"
#include "util/logging.h"

namespace jsontiles::workload {

namespace {

using exec::AggSpec;
using exec::ExprPtr;
using exec::QueryContext;
using exec::RowSet;
using exec::Slot;
using exec::Value;
using exec::ValueType;
using opt::PlannerOptions;
using opt::QueryBlock;
using opt::TableRef;
using opt::TableSource;
using storage::Relation;

// Access shorthands.
ExprPtr AI(const char* t, const char* key) {
  return exec::Access(t, {key}, ValueType::kInt);
}
ExprPtr AF(const char* t, const char* key) {
  return exec::Access(t, {key}, ValueType::kFloat);
}
ExprPtr AS(const char* t, const char* key) {
  return exec::Access(t, {key}, ValueType::kString);
}
ExprPtr AD(const char* t, const char* key) {
  return exec::Access(t, {key}, ValueType::kTimestamp);
}

// A "table" of the combined relation: IS NOT NULL on the table's key marker.
TableRef T(const TableSource& rel, const char* alias, const char* marker,
           ExprPtr extra = nullptr) {
  ExprPtr filter = exec::IsNotNull(AI(alias, marker));
  if (extra != nullptr) filter = exec::And(filter, std::move(extra));
  return TableRef::Src(alias, rel, std::move(filter));
}

// l_extendedprice * (1 - l_discount)
ExprPtr Revenue(const char* l = "l") {
  return exec::Mul(AF(l, "l_extendedprice"),
                   exec::Sub(exec::ConstFloat(1.0), AF(l, "l_discount")));
}

using exec::And;
using exec::Between;
using exec::Case;
using exec::ConstDate;
using exec::ConstFloat;
using exec::ConstInt;
using exec::ConstString;
using exec::Div;
using exec::Eq;
using exec::Ge;
using exec::Gt;
using exec::InList;
using exec::InListInt;
using exec::IsNotNull;
using exec::Le;
using exec::Like;
using exec::Lt;
using exec::Mul;
using exec::Ne;
using exec::Or;
using exec::Sub;
using exec::Substring;
using exec::Year;

RowSet Q1(const TableSource& rel, QueryContext& ctx, const PlannerOptions& opts) {
  QueryBlock q;
  q.AddTable(T(rel, "l", "l_orderkey",
               Le(AD("l", "l_shipdate"), ConstDate("1998-09-02"))));
  q.GroupBy({AS("l", "l_returnflag"), AS("l", "l_linestatus")});
  q.Aggregate(AggSpec::Sum(AI("l", "l_quantity")));
  q.Aggregate(AggSpec::Sum(AF("l", "l_extendedprice")));
  q.Aggregate(AggSpec::Sum(Revenue()));
  q.Aggregate(AggSpec::Sum(
      Mul(Revenue(), exec::Add(ConstFloat(1.0), AF("l", "l_tax")))));
  q.Aggregate(AggSpec::Avg(AI("l", "l_quantity")));
  q.Aggregate(AggSpec::Avg(AF("l", "l_extendedprice")));
  q.Aggregate(AggSpec::Avg(AF("l", "l_discount")));
  q.Aggregate(AggSpec::CountStar());
  q.OrderBy(Slot(0));
  q.OrderBy(Slot(1));
  return q.Execute(ctx, opts);
}

RowSet Q2(const TableSource& rel, QueryContext& ctx, const PlannerOptions& opts) {
  // Candidate suppliers for size-15 %BRASS parts in EUROPE.
  QueryBlock inner;
  inner.AddTable(T(rel, "p", "p_partkey",
                   And(Eq(AI("p", "p_size"), ConstInt(15)),
                       Like(AS("p", "p_type"), "%BRASS"))));
  inner.AddTable(T(rel, "ps", "ps_partkey"));
  inner.AddTable(T(rel, "s", "s_suppkey"));
  inner.AddTable(T(rel, "n", "n_nationkey"));
  inner.AddTable(T(rel, "r", "r_regionkey",
                   Eq(AS("r", "r_name"), ConstString("EUROPE"))));
  inner.AddJoin(AI("ps", "ps_partkey"), AI("p", "p_partkey"));
  inner.AddJoin(AI("ps", "ps_suppkey"), AI("s", "s_suppkey"));
  inner.AddJoin(AI("s", "s_nationkey"), AI("n", "n_nationkey"));
  inner.AddJoin(AI("n", "n_regionkey"), AI("r", "r_regionkey"));
  inner.Select({AI("p", "p_partkey"), AF("ps", "ps_supplycost"),
                AF("s", "s_acctbal"), AS("s", "s_name"), AS("n", "n_name"),
                AS("s", "s_address"), AS("s", "s_phone"), AS("s", "s_comment"),
                AS("p", "p_mfgr")});
  RowSet candidates = inner.Execute(ctx, opts);

  // Minimum supply cost per part.
  RowSet mins = exec::AggregateExec(candidates, {Slot(0)},
                                    {AggSpec::Min(Slot(1))}, ctx);

  // Join back: cost == min cost for the part.
  QueryBlock outer;
  std::vector<std::string> cand_cols = {"partkey", "cost",    "acctbal",
                                        "sname",   "nname",   "address",
                                        "phone",   "comment", "mfgr"};
  outer.AddTable(TableRef::Rows("c", &candidates, cand_cols));
  outer.AddTable(TableRef::Rows("m", &mins, {"partkey", "mincost"}));
  outer.AddJoin(exec::Access("c", {"partkey"}, ValueType::kInt),
                exec::Access("m", {"partkey"}, ValueType::kInt));
  outer.AddJoin(exec::Access("c", {"cost"}, ValueType::kFloat),
                exec::Access("m", {"mincost"}, ValueType::kFloat));
  outer.Select({exec::Access("c", {"acctbal"}, ValueType::kFloat),
                exec::Access("c", {"sname"}, ValueType::kString),
                exec::Access("c", {"nname"}, ValueType::kString),
                exec::Access("c", {"partkey"}, ValueType::kInt),
                exec::Access("c", {"mfgr"}, ValueType::kString),
                exec::Access("c", {"address"}, ValueType::kString),
                exec::Access("c", {"phone"}, ValueType::kString),
                exec::Access("c", {"comment"}, ValueType::kString)});
  outer.OrderBy(Slot(0), /*descending=*/true);
  outer.OrderBy(Slot(2));
  outer.OrderBy(Slot(1));
  outer.OrderBy(Slot(3));
  outer.Limit(100);
  return outer.Execute(ctx, opts);
}

RowSet Q3(const TableSource& rel, QueryContext& ctx, const PlannerOptions& opts) {
  QueryBlock q;
  q.AddTable(T(rel, "c", "c_custkey",
               Eq(AS("c", "c_mktsegment"), ConstString("BUILDING"))));
  q.AddTable(T(rel, "o", "o_orderkey",
               Lt(AD("o", "o_orderdate"), ConstDate("1995-03-15"))));
  q.AddTable(T(rel, "l", "l_orderkey",
               Gt(AD("l", "l_shipdate"), ConstDate("1995-03-15"))));
  q.AddJoin(AI("c", "c_custkey"), AI("o", "o_custkey"));
  q.AddJoin(AI("l", "l_orderkey"), AI("o", "o_orderkey"));
  q.GroupBy({AI("l", "l_orderkey"), AD("o", "o_orderdate"),
             AI("o", "o_shippriority")});
  q.Aggregate(AggSpec::Sum(Revenue()));
  q.OrderBy(Slot(3), /*descending=*/true);
  q.OrderBy(Slot(1));
  q.Limit(10);
  return q.Execute(ctx, opts);
}

RowSet Q4(const TableSource& rel, QueryContext& ctx, const PlannerOptions& opts) {
  QueryBlock ob;
  ob.AddTable(T(rel, "o", "o_orderkey",
                And(Ge(AD("o", "o_orderdate"), ConstDate("1993-07-01")),
                    Lt(AD("o", "o_orderdate"), ConstDate("1993-10-01")))));
  ob.Select({AI("o", "o_orderkey"), AS("o", "o_orderpriority")});
  RowSet orders = ob.Execute(ctx, opts);

  QueryBlock lb;
  lb.AddTable(T(rel, "l", "l_orderkey",
                Lt(AD("l", "l_commitdate"), AD("l", "l_receiptdate"))));
  lb.Select({AI("l", "l_orderkey")});
  RowSet lines = lb.Execute(ctx, opts);

  RowSet matched = exec::HashJoinExec(lines, orders, {Slot(0)}, {Slot(0)},
                                      exec::JoinType::kSemi, nullptr, ctx);
  RowSet agg = exec::AggregateExec(matched, {Slot(1)}, {AggSpec::CountStar()}, ctx);
  return exec::SortExec(std::move(agg), {{Slot(0), false}}, ctx);
}

RowSet Q5(const TableSource& rel, QueryContext& ctx, const PlannerOptions& opts) {
  QueryBlock q;
  q.AddTable(T(rel, "c", "c_custkey"));
  q.AddTable(T(rel, "o", "o_orderkey",
               And(Ge(AD("o", "o_orderdate"), ConstDate("1994-01-01")),
                   Lt(AD("o", "o_orderdate"), ConstDate("1995-01-01")))));
  q.AddTable(T(rel, "l", "l_orderkey"));
  q.AddTable(T(rel, "s", "s_suppkey"));
  q.AddTable(T(rel, "n", "n_nationkey"));
  q.AddTable(
      T(rel, "r", "r_regionkey", Eq(AS("r", "r_name"), ConstString("ASIA"))));
  q.AddJoin(AI("o", "o_custkey"), AI("c", "c_custkey"));
  q.AddJoin(AI("l", "l_orderkey"), AI("o", "o_orderkey"));
  q.AddJoin(AI("l", "l_suppkey"), AI("s", "s_suppkey"));
  q.AddJoin(AI("c", "c_nationkey"), AI("s", "s_nationkey"));
  q.AddJoin(AI("s", "s_nationkey"), AI("n", "n_nationkey"));
  q.AddJoin(AI("n", "n_regionkey"), AI("r", "r_regionkey"));
  q.GroupBy({AS("n", "n_name")});
  q.Aggregate(AggSpec::Sum(Revenue()));
  q.OrderBy(Slot(1), /*descending=*/true);
  return q.Execute(ctx, opts);
}

RowSet Q6(const TableSource& rel, QueryContext& ctx, const PlannerOptions& opts) {
  QueryBlock q;
  q.AddTable(T(rel, "l", "l_orderkey",
               And({Ge(AD("l", "l_shipdate"), ConstDate("1994-01-01")),
                    Lt(AD("l", "l_shipdate"), ConstDate("1995-01-01")),
                    Between(AF("l", "l_discount"), ConstFloat(0.05),
                            ConstFloat(0.07)),
                    Lt(AI("l", "l_quantity"), ConstInt(24))})));
  q.GroupBy({});
  q.Aggregate(AggSpec::Sum(Mul(AF("l", "l_extendedprice"), AF("l", "l_discount"))));
  return q.Execute(ctx, opts);
}

RowSet Q7(const TableSource& rel, QueryContext& ctx, const PlannerOptions& opts) {
  ExprPtr nations = InList(AS("n1", "n_name"), {"FRANCE", "GERMANY"});
  ExprPtr nations2 = InList(AS("n2", "n_name"), {"FRANCE", "GERMANY"});
  QueryBlock q;
  q.AddTable(T(rel, "s", "s_suppkey"));
  q.AddTable(T(rel, "l", "l_orderkey",
               Between(AD("l", "l_shipdate"), ConstDate("1995-01-01"),
                       ConstDate("1996-12-31"))));
  q.AddTable(T(rel, "o", "o_orderkey"));
  q.AddTable(T(rel, "c", "c_custkey"));
  q.AddTable(T(rel, "n1", "n_nationkey", std::move(nations)));
  q.AddTable(T(rel, "n2", "n_nationkey", std::move(nations2)));
  q.AddJoin(AI("s", "s_suppkey"), AI("l", "l_suppkey"));
  q.AddJoin(AI("o", "o_orderkey"), AI("l", "l_orderkey"));
  q.AddJoin(AI("c", "c_custkey"), AI("o", "o_custkey"));
  q.AddJoin(AI("s", "s_nationkey"), AI("n1", "n_nationkey"));
  q.AddJoin(AI("c", "c_nationkey"), AI("n2", "n_nationkey"));
  q.Where(Or(And(Eq(AS("n1", "n_name"), ConstString("FRANCE")),
                 Eq(AS("n2", "n_name"), ConstString("GERMANY"))),
             And(Eq(AS("n1", "n_name"), ConstString("GERMANY")),
                 Eq(AS("n2", "n_name"), ConstString("FRANCE")))));
  q.GroupBy({AS("n1", "n_name"), AS("n2", "n_name"), Year(AD("l", "l_shipdate"))});
  q.Aggregate(AggSpec::Sum(Revenue()));
  q.OrderBy(Slot(0));
  q.OrderBy(Slot(1));
  q.OrderBy(Slot(2));
  return q.Execute(ctx, opts);
}

RowSet Q8(const TableSource& rel, QueryContext& ctx, const PlannerOptions& opts) {
  QueryBlock q;
  q.AddTable(T(rel, "p", "p_partkey",
               Eq(AS("p", "p_type"), ConstString("ECONOMY ANODIZED STEEL"))));
  q.AddTable(T(rel, "l", "l_orderkey"));
  q.AddTable(T(rel, "o", "o_orderkey",
               Between(AD("o", "o_orderdate"), ConstDate("1995-01-01"),
                       ConstDate("1996-12-31"))));
  q.AddTable(T(rel, "c", "c_custkey"));
  q.AddTable(T(rel, "n1", "n_nationkey"));
  q.AddTable(T(rel, "r", "r_regionkey",
               Eq(AS("r", "r_name"), ConstString("AMERICA"))));
  q.AddTable(T(rel, "s", "s_suppkey"));
  q.AddTable(T(rel, "n2", "n_nationkey"));
  q.AddJoin(AI("p", "p_partkey"), AI("l", "l_partkey"));
  q.AddJoin(AI("l", "l_orderkey"), AI("o", "o_orderkey"));
  q.AddJoin(AI("o", "o_custkey"), AI("c", "c_custkey"));
  q.AddJoin(AI("c", "c_nationkey"), AI("n1", "n_nationkey"));
  q.AddJoin(AI("n1", "n_regionkey"), AI("r", "r_regionkey"));
  q.AddJoin(AI("l", "l_suppkey"), AI("s", "s_suppkey"));
  q.AddJoin(AI("s", "s_nationkey"), AI("n2", "n_nationkey"));
  q.GroupBy({Year(AD("o", "o_orderdate"))});
  q.Aggregate(AggSpec::Sum(Case({Eq(AS("n2", "n_name"), ConstString("BRAZIL")),
                                 Revenue(), ConstFloat(0.0)})));
  q.Aggregate(AggSpec::Sum(Revenue()));
  RowSet grouped = q.Execute(ctx, opts);
  // mkt_share = brazil volume / total volume.
  RowSet shares =
      exec::ProjectExec(grouped, {Slot(0), Div(Slot(1), Slot(2))}, ctx);
  return exec::SortExec(std::move(shares), {{Slot(0), false}}, ctx);
}

RowSet Q9(const TableSource& rel, QueryContext& ctx, const PlannerOptions& opts) {
  QueryBlock q;
  q.AddTable(T(rel, "p", "p_partkey", Like(AS("p", "p_name"), "%green%")));
  q.AddTable(T(rel, "l", "l_orderkey"));
  q.AddTable(T(rel, "ps", "ps_partkey"));
  q.AddTable(T(rel, "s", "s_suppkey"));
  q.AddTable(T(rel, "o", "o_orderkey"));
  q.AddTable(T(rel, "n", "n_nationkey"));
  q.AddJoin(AI("ps", "ps_partkey"), AI("l", "l_partkey"));
  q.AddJoin(AI("ps", "ps_suppkey"), AI("l", "l_suppkey"));
  q.AddJoin(AI("p", "p_partkey"), AI("l", "l_partkey"));
  q.AddJoin(AI("s", "s_suppkey"), AI("l", "l_suppkey"));
  q.AddJoin(AI("o", "o_orderkey"), AI("l", "l_orderkey"));
  q.AddJoin(AI("s", "s_nationkey"), AI("n", "n_nationkey"));
  q.GroupBy({AS("n", "n_name"), Year(AD("o", "o_orderdate"))});
  q.Aggregate(AggSpec::Sum(
      Sub(Revenue(), Mul(AF("ps", "ps_supplycost"), AI("l", "l_quantity")))));
  q.OrderBy(Slot(0));
  q.OrderBy(Slot(1), /*descending=*/true);
  return q.Execute(ctx, opts);
}

RowSet Q10(const TableSource& rel, QueryContext& ctx, const PlannerOptions& opts) {
  QueryBlock q;
  q.AddTable(T(rel, "c", "c_custkey"));
  q.AddTable(T(rel, "o", "o_orderkey",
               And(Ge(AD("o", "o_orderdate"), ConstDate("1993-10-01")),
                   Lt(AD("o", "o_orderdate"), ConstDate("1994-01-01")))));
  q.AddTable(T(rel, "l", "l_orderkey",
               Eq(AS("l", "l_returnflag"), ConstString("R"))));
  q.AddTable(T(rel, "n", "n_nationkey"));
  q.AddJoin(AI("c", "c_custkey"), AI("o", "o_custkey"));
  q.AddJoin(AI("l", "l_orderkey"), AI("o", "o_orderkey"));
  q.AddJoin(AI("c", "c_nationkey"), AI("n", "n_nationkey"));
  q.GroupBy({AI("c", "c_custkey"), AS("c", "c_name"), AF("c", "c_acctbal"),
             AS("c", "c_phone"), AS("n", "n_name"), AS("c", "c_address"),
             AS("c", "c_comment")});
  q.Aggregate(AggSpec::Sum(Revenue()));
  q.OrderBy(Slot(7), /*descending=*/true);
  q.OrderBy(Slot(0));
  q.Limit(20);
  return q.Execute(ctx, opts);
}

RowSet Q11(const TableSource& rel, QueryContext& ctx, const PlannerOptions& opts) {
  auto build_value_block = [&]() {
    QueryBlock q;
    q.AddTable(T(rel, "ps", "ps_partkey"));
    q.AddTable(T(rel, "s", "s_suppkey"));
    q.AddTable(T(rel, "n", "n_nationkey",
                 Eq(AS("n", "n_name"), ConstString("GERMANY"))));
    q.AddJoin(AI("ps", "ps_suppkey"), AI("s", "s_suppkey"));
    q.AddJoin(AI("s", "s_nationkey"), AI("n", "n_nationkey"));
    q.GroupBy({AI("ps", "ps_partkey")});
    q.Aggregate(AggSpec::Sum(
        Mul(AF("ps", "ps_supplycost"), AI("ps", "ps_availqty"))));
    return q.Execute(ctx, opts);
  };
  RowSet per_part = build_value_block();
  RowSet total = exec::AggregateExec(per_part, {}, {AggSpec::Sum(Slot(1))}, ctx);
  double threshold = opt::ScalarResult(total).AsDouble() * 0.0001;
  RowSet filtered = exec::FilterExec(std::move(per_part),
                                     Gt(Slot(1), ConstFloat(threshold)), ctx);
  return exec::SortExec(std::move(filtered), {{Slot(1), true}}, ctx);
}

RowSet Q12(const TableSource& rel, QueryContext& ctx, const PlannerOptions& opts) {
  QueryBlock q;
  q.AddTable(T(rel, "o", "o_orderkey"));
  q.AddTable(
      T(rel, "l", "l_orderkey",
        And({InList(AS("l", "l_shipmode"), {"MAIL", "SHIP"}),
             Lt(AD("l", "l_commitdate"), AD("l", "l_receiptdate")),
             Lt(AD("l", "l_shipdate"), AD("l", "l_commitdate")),
             Ge(AD("l", "l_receiptdate"), ConstDate("1994-01-01")),
             Lt(AD("l", "l_receiptdate"), ConstDate("1995-01-01"))})));
  q.AddJoin(AI("o", "o_orderkey"), AI("l", "l_orderkey"));
  q.GroupBy({AS("l", "l_shipmode")});
  q.Aggregate(AggSpec::Sum(Case(
      {InList(AS("o", "o_orderpriority"), {"1-URGENT", "2-HIGH"}), ConstInt(1),
       ConstInt(0)})));
  q.Aggregate(AggSpec::Sum(Case(
      {InList(AS("o", "o_orderpriority"), {"1-URGENT", "2-HIGH"}), ConstInt(0),
       ConstInt(1)})));
  q.OrderBy(Slot(0));
  return q.Execute(ctx, opts);
}

RowSet Q13(const TableSource& rel, QueryContext& ctx, const PlannerOptions& opts) {
  QueryBlock ob;
  ob.AddTable(T(rel, "o", "o_orderkey",
                Like(AS("o", "o_comment"), "%special%requests%",
                     /*negated=*/true)));
  ob.Select({AI("o", "o_custkey")});
  RowSet orders = ob.Execute(ctx, opts);

  QueryBlock cb;
  cb.AddTable(T(rel, "c", "c_custkey"));
  cb.Select({AI("c", "c_custkey")});
  RowSet customers = cb.Execute(ctx, opts);

  RowSet joined = exec::HashJoinExec(orders, customers, {Slot(0)}, {Slot(0)},
                                     exec::JoinType::kLeft, nullptr, ctx);
  // joined = [c_custkey, o_custkey-or-null]; orders per customer.
  RowSet per_customer =
      exec::AggregateExec(joined, {Slot(0)}, {AggSpec::Count(Slot(1))}, ctx);
  // distribution of counts.
  RowSet dist = exec::AggregateExec(per_customer, {Slot(1)},
                                    {AggSpec::CountStar()}, ctx);
  return exec::SortExec(std::move(dist), {{Slot(1), true}, {Slot(0), true}}, ctx);
}

RowSet Q14(const TableSource& rel, QueryContext& ctx, const PlannerOptions& opts) {
  QueryBlock q;
  q.AddTable(T(rel, "l", "l_orderkey",
               And(Ge(AD("l", "l_shipdate"), ConstDate("1995-09-01")),
                   Lt(AD("l", "l_shipdate"), ConstDate("1995-10-01")))));
  q.AddTable(T(rel, "p", "p_partkey"));
  q.AddJoin(AI("l", "l_partkey"), AI("p", "p_partkey"));
  q.GroupBy({});
  q.Aggregate(AggSpec::Sum(
      Case({Like(AS("p", "p_type"), "PROMO%"), Revenue(), ConstFloat(0.0)})));
  q.Aggregate(AggSpec::Sum(Revenue()));
  RowSet grouped = q.Execute(ctx, opts);
  return exec::ProjectExec(
      grouped, {Mul(ConstFloat(100.0), Div(Slot(0), Slot(1)))}, ctx);
}

RowSet Q15(const TableSource& rel, QueryContext& ctx, const PlannerOptions& opts) {
  QueryBlock lb;
  lb.AddTable(T(rel, "l", "l_orderkey",
                And(Ge(AD("l", "l_shipdate"), ConstDate("1996-01-01")),
                    Lt(AD("l", "l_shipdate"), ConstDate("1996-04-01")))));
  lb.GroupBy({AI("l", "l_suppkey")});
  lb.Aggregate(AggSpec::Sum(Revenue()));
  RowSet revenue = lb.Execute(ctx, opts);

  RowSet max_rev = exec::AggregateExec(revenue, {}, {AggSpec::Max(Slot(1))}, ctx);
  double best = opt::ScalarResult(max_rev).AsDouble();
  RowSet top = exec::FilterExec(std::move(revenue),
                                Ge(Slot(1), ConstFloat(best)), ctx);

  QueryBlock sb;
  sb.AddTable(T(rel, "s", "s_suppkey"));
  sb.AddTable(TableRef::Rows("r", &top, {"suppkey", "total"}));
  sb.AddJoin(AI("s", "s_suppkey"),
             exec::Access("r", {"suppkey"}, ValueType::kInt));
  sb.Select({AI("s", "s_suppkey"), AS("s", "s_name"), AS("s", "s_address"),
             AS("s", "s_phone"),
             exec::Access("r", {"total"}, ValueType::kFloat)});
  sb.OrderBy(Slot(0));
  return sb.Execute(ctx, opts);
}

RowSet Q16(const TableSource& rel, QueryContext& ctx, const PlannerOptions& opts) {
  QueryBlock bad;
  bad.AddTable(T(rel, "s", "s_suppkey",
                 Like(AS("s", "s_comment"), "%Customer%Complaints%")));
  bad.Select({AI("s", "s_suppkey")});
  RowSet bad_suppliers = bad.Execute(ctx, opts);

  QueryBlock q;
  q.AddTable(T(rel, "p", "p_partkey",
               And({Ne(AS("p", "p_brand"), ConstString("Brand#45")),
                    Like(AS("p", "p_type"), "MEDIUM POLISHED%",
                         /*negated=*/true),
                    InListInt(AI("p", "p_size"),
                              {49, 14, 23, 45, 19, 3, 36, 9})})));
  q.AddTable(T(rel, "ps", "ps_partkey"));
  q.AddJoin(AI("ps", "ps_partkey"), AI("p", "p_partkey"));
  q.Select({AS("p", "p_brand"), AS("p", "p_type"), AI("p", "p_size"),
            AI("ps", "ps_suppkey")});
  RowSet partsupp = q.Execute(ctx, opts);

  RowSet kept = exec::HashJoinExec(bad_suppliers, partsupp, {Slot(0)}, {Slot(3)},
                                   exec::JoinType::kAnti, nullptr, ctx);
  RowSet agg = exec::AggregateExec(kept, {Slot(0), Slot(1), Slot(2)},
                                   {AggSpec::CountDistinct(Slot(3))}, ctx);
  return exec::SortExec(
      std::move(agg),
      {{Slot(3), true}, {Slot(0), false}, {Slot(1), false}, {Slot(2), false}},
      ctx);
}

RowSet Q17(const TableSource& rel, QueryContext& ctx, const PlannerOptions& opts) {
  QueryBlock avg_block;
  avg_block.AddTable(T(rel, "l", "l_orderkey"));
  avg_block.GroupBy({AI("l", "l_partkey")});
  avg_block.Aggregate(AggSpec::Avg(AI("l", "l_quantity")));
  RowSet avg_qty = avg_block.Execute(ctx, opts);

  QueryBlock q;
  q.AddTable(T(rel, "p", "p_partkey",
               And(Eq(AS("p", "p_brand"), ConstString("Brand#23")),
                   Eq(AS("p", "p_container"), ConstString("MED BOX")))));
  q.AddTable(T(rel, "l", "l_orderkey"));
  q.AddTable(TableRef::Rows("a", &avg_qty, {"partkey", "avgqty"}));
  q.AddJoin(AI("l", "l_partkey"), AI("p", "p_partkey"));
  q.AddJoin(AI("l", "l_partkey"),
            exec::Access("a", {"partkey"}, ValueType::kInt),
            Lt(AI("l", "l_quantity"),
               Mul(ConstFloat(0.2),
                   exec::Access("a", {"avgqty"}, ValueType::kFloat))));
  q.GroupBy({});
  q.Aggregate(AggSpec::Sum(AF("l", "l_extendedprice")));
  RowSet total = q.Execute(ctx, opts);
  return exec::ProjectExec(total, {Div(Slot(0), ConstFloat(7.0))}, ctx);
}

RowSet Q18(const TableSource& rel, QueryContext& ctx, const PlannerOptions& opts) {
  QueryBlock lb;
  lb.AddTable(T(rel, "l", "l_orderkey"));
  lb.GroupBy({AI("l", "l_orderkey")});
  lb.Aggregate(AggSpec::Sum(AI("l", "l_quantity")));
  lb.Having(Gt(Slot(1), ConstInt(300)));
  RowSet big_orders = lb.Execute(ctx, opts);

  QueryBlock q;
  q.AddTable(T(rel, "c", "c_custkey"));
  q.AddTable(T(rel, "o", "o_orderkey"));
  q.AddTable(TableRef::Rows("b", &big_orders, {"orderkey", "sumqty"}));
  q.AddJoin(AI("o", "o_custkey"), AI("c", "c_custkey"));
  q.AddJoin(AI("o", "o_orderkey"),
            exec::Access("b", {"orderkey"}, ValueType::kInt));
  q.GroupBy({AS("c", "c_name"), AI("c", "c_custkey"), AI("o", "o_orderkey"),
             AD("o", "o_orderdate"), AF("o", "o_totalprice")});
  q.Aggregate(
      AggSpec::Max(exec::Access("b", {"sumqty"}, ValueType::kFloat)));
  q.OrderBy(Slot(4), /*descending=*/true);
  q.OrderBy(Slot(3));
  q.Limit(100);
  return q.Execute(ctx, opts);
}

RowSet Q19(const TableSource& rel, QueryContext& ctx, const PlannerOptions& opts) {
  QueryBlock q;
  q.AddTable(T(rel, "l", "l_orderkey",
               And(InList(AS("l", "l_shipmode"), {"AIR", "REG AIR"}),
                   Eq(AS("l", "l_shipinstruct"),
                      ConstString("DELIVER IN PERSON")))));
  q.AddTable(T(rel, "p", "p_partkey"));
  q.AddJoin(AI("l", "l_partkey"), AI("p", "p_partkey"));
  auto branch = [&](const char* brand,
                    std::vector<std::string> containers, int64_t qlo,
                    int64_t qhi, int64_t size_hi) {
    return And({Eq(AS("p", "p_brand"), ConstString(brand)),
                InList(AS("p", "p_container"), std::move(containers)),
                Between(AI("l", "l_quantity"), ConstInt(qlo), ConstInt(qhi)),
                Between(AI("p", "p_size"), ConstInt(1), ConstInt(size_hi))});
  };
  q.Where(Or(Or(branch("Brand#12", {"SM CASE", "SM BOX", "SM PACK", "SM PKG"},
                       1, 11, 5),
                branch("Brand#23", {"MED BAG", "MED BOX", "MED PKG", "MED PACK"},
                       10, 20, 10)),
             branch("Brand#34", {"LG CASE", "LG BOX", "LG PACK", "LG PKG"},
                    20, 30, 15)));
  q.GroupBy({});
  q.Aggregate(AggSpec::Sum(Revenue()));
  return q.Execute(ctx, opts);
}

RowSet Q20(const TableSource& rel, QueryContext& ctx, const PlannerOptions& opts) {
  QueryBlock pb;
  pb.AddTable(T(rel, "p", "p_partkey", Like(AS("p", "p_name"), "forest%")));
  pb.Select({AI("p", "p_partkey")});
  RowSet forest_parts = pb.Execute(ctx, opts);

  QueryBlock lb;
  lb.AddTable(T(rel, "l", "l_orderkey",
                And(Ge(AD("l", "l_shipdate"), ConstDate("1994-01-01")),
                    Lt(AD("l", "l_shipdate"), ConstDate("1995-01-01")))));
  lb.GroupBy({AI("l", "l_partkey"), AI("l", "l_suppkey")});
  lb.Aggregate(AggSpec::Sum(AI("l", "l_quantity")));
  RowSet shipped = lb.Execute(ctx, opts);

  QueryBlock sel;
  sel.AddTable(T(rel, "ps", "ps_partkey"));
  sel.AddTable(TableRef::Rows("fp", &forest_parts, {"partkey"}));
  sel.AddTable(TableRef::Rows("sq", &shipped, {"partkey", "suppkey", "qty"}));
  sel.AddJoin(AI("ps", "ps_partkey"),
              exec::Access("fp", {"partkey"}, ValueType::kInt));
  sel.AddJoin(AI("ps", "ps_partkey"),
              exec::Access("sq", {"partkey"}, ValueType::kInt));
  sel.AddJoin(AI("ps", "ps_suppkey"),
              exec::Access("sq", {"suppkey"}, ValueType::kInt),
              Gt(AI("ps", "ps_availqty"),
                 Mul(ConstFloat(0.5),
                     exec::Access("sq", {"qty"}, ValueType::kFloat))));
  sel.Select({AI("ps", "ps_suppkey")});
  RowSet eligible = sel.Execute(ctx, opts);

  QueryBlock sb;
  sb.AddTable(T(rel, "s", "s_suppkey"));
  sb.AddTable(T(rel, "n", "n_nationkey",
                Eq(AS("n", "n_name"), ConstString("CANADA"))));
  sb.AddJoin(AI("s", "s_nationkey"), AI("n", "n_nationkey"));
  sb.Select({AI("s", "s_suppkey"), AS("s", "s_name"), AS("s", "s_address")});
  RowSet canadian = sb.Execute(ctx, opts);

  RowSet result = exec::HashJoinExec(eligible, canadian, {Slot(0)}, {Slot(0)},
                                     exec::JoinType::kSemi, nullptr, ctx);
  return exec::SortExec(std::move(result), {{Slot(1), false}}, ctx);
}

RowSet Q21(const TableSource& rel, QueryContext& ctx, const PlannerOptions& opts) {
  // l2: any lineitem per order/supplier.
  QueryBlock l2b;
  l2b.AddTable(T(rel, "l", "l_orderkey"));
  l2b.Select({AI("l", "l_orderkey"), AI("l", "l_suppkey")});
  RowSet l2 = l2b.Execute(ctx, opts);

  // l3: late lineitems per order/supplier.
  QueryBlock l3b;
  l3b.AddTable(T(rel, "l", "l_orderkey",
                 Gt(AD("l", "l_receiptdate"), AD("l", "l_commitdate"))));
  l3b.Select({AI("l", "l_orderkey"), AI("l", "l_suppkey")});
  RowSet l3 = l3b.Execute(ctx, opts);

  // l1: late lines of 'F' orders by Saudi suppliers.
  QueryBlock l1b;
  l1b.AddTable(T(rel, "l1", "l_orderkey",
                 Gt(AD("l1", "l_receiptdate"), AD("l1", "l_commitdate"))));
  l1b.AddTable(T(rel, "o", "o_orderkey",
                 Eq(AS("o", "o_orderstatus"), ConstString("F"))));
  l1b.AddTable(T(rel, "s", "s_suppkey"));
  l1b.AddTable(T(rel, "n", "n_nationkey",
                 Eq(AS("n", "n_name"), ConstString("SAUDI ARABIA"))));
  l1b.AddJoin(AI("o", "o_orderkey"), AI("l1", "l_orderkey"));
  l1b.AddJoin(AI("s", "s_suppkey"), AI("l1", "l_suppkey"));
  l1b.AddJoin(AI("s", "s_nationkey"), AI("n", "n_nationkey"));
  l1b.Select({AS("s", "s_name"), AI("l1", "l_orderkey"), AI("l1", "l_suppkey")});
  RowSet l1 = l1b.Execute(ctx, opts);

  // exists l2 with same order, different supplier.
  // Combined row during probe: [probe(3): name, orderkey, suppkey,
  // build(2): orderkey, suppkey].
  RowSet with_other = exec::HashJoinExec(l2, l1, {Slot(0)}, {Slot(1)},
                                         exec::JoinType::kSemi,
                                         Ne(Slot(4), Slot(2)), ctx);
  // not exists l3 with same order, different supplier.
  RowSet waiting = exec::HashJoinExec(l3, with_other, {Slot(0)}, {Slot(1)},
                                      exec::JoinType::kAnti,
                                      Ne(Slot(4), Slot(2)), ctx);
  RowSet agg =
      exec::AggregateExec(waiting, {Slot(0)}, {AggSpec::CountStar()}, ctx);
  agg = exec::SortExec(std::move(agg), {{Slot(1), true}, {Slot(0), false}}, ctx);
  return exec::LimitExec(std::move(agg), 100);
}

RowSet Q22(const TableSource& rel, QueryContext& ctx, const PlannerOptions& opts) {
  std::vector<std::string> codes = {"13", "31", "23", "29", "30", "18", "17"};

  QueryBlock avg_block;
  avg_block.AddTable(
      T(rel, "c", "c_custkey",
        And(Gt(AF("c", "c_acctbal"), ConstFloat(0.0)),
            InList(Substring(AS("c", "c_phone"), 1, 2), codes))));
  avg_block.GroupBy({});
  avg_block.Aggregate(AggSpec::Avg(AF("c", "c_acctbal")));
  double avg_bal = opt::ScalarResult(avg_block.Execute(ctx, opts)).AsDouble();

  QueryBlock ob;
  ob.AddTable(T(rel, "o", "o_orderkey"));
  ob.Select({AI("o", "o_custkey")});
  RowSet orders = ob.Execute(ctx, opts);

  QueryBlock cb;
  cb.AddTable(T(rel, "c", "c_custkey",
                And(InList(Substring(AS("c", "c_phone"), 1, 2), codes),
                    Gt(AF("c", "c_acctbal"), ConstFloat(avg_bal)))));
  cb.Select({Substring(AS("c", "c_phone"), 1, 2), AF("c", "c_acctbal"),
             AI("c", "c_custkey")});
  RowSet customers = cb.Execute(ctx, opts);

  RowSet no_orders = exec::HashJoinExec(orders, customers, {Slot(0)}, {Slot(2)},
                                        exec::JoinType::kAnti, nullptr, ctx);
  RowSet agg = exec::AggregateExec(
      no_orders, {Slot(0)}, {AggSpec::CountStar(), AggSpec::Sum(Slot(1))}, ctx);
  return exec::SortExec(std::move(agg), {{Slot(0), false}}, ctx);
}

}  // namespace

exec::RowSet RunTpchQuery(int number, const opt::TableSource& rel, QueryContext& ctx,
                          const PlannerOptions& planner) {
  switch (number) {
    case 1: return Q1(rel, ctx, planner);
    case 2: return Q2(rel, ctx, planner);
    case 3: return Q3(rel, ctx, planner);
    case 4: return Q4(rel, ctx, planner);
    case 5: return Q5(rel, ctx, planner);
    case 6: return Q6(rel, ctx, planner);
    case 7: return Q7(rel, ctx, planner);
    case 8: return Q8(rel, ctx, planner);
    case 9: return Q9(rel, ctx, planner);
    case 10: return Q10(rel, ctx, planner);
    case 11: return Q11(rel, ctx, planner);
    case 12: return Q12(rel, ctx, planner);
    case 13: return Q13(rel, ctx, planner);
    case 14: return Q14(rel, ctx, planner);
    case 15: return Q15(rel, ctx, planner);
    case 16: return Q16(rel, ctx, planner);
    case 17: return Q17(rel, ctx, planner);
    case 18: return Q18(rel, ctx, planner);
    case 19: return Q19(rel, ctx, planner);
    case 20: return Q20(rel, ctx, planner);
    case 21: return Q21(rel, ctx, planner);
    case 22: return Q22(rel, ctx, planner);
    default: JSONTILES_CHECK(false);
  }
}

const char* TpchQueryName(int number) {
  static const char* kNames[] = {
      "",
      "Q1 pricing summary report",
      "Q2 minimum cost supplier",
      "Q3 shipping priority",
      "Q4 order priority checking",
      "Q5 local supplier volume",
      "Q6 forecasting revenue change",
      "Q7 volume shipping",
      "Q8 national market share",
      "Q9 product type profit",
      "Q10 returned item reporting",
      "Q11 important stock identification",
      "Q12 shipping modes and order priority",
      "Q13 customer distribution",
      "Q14 promotion effect",
      "Q15 top supplier",
      "Q16 parts/supplier relationship",
      "Q17 small-quantity-order revenue",
      "Q18 large volume customer",
      "Q19 discounted revenue",
      "Q20 potential part promotion",
      "Q21 suppliers who kept orders waiting",
      "Q22 global sales opportunity",
  };
  JSONTILES_CHECK(number >= 1 && number <= 22);
  return kNames[number];
}

}  // namespace jsontiles::workload
