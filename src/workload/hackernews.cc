#include "workload/hackernews.h"

#include "util/random.h"

namespace jsontiles::workload {

namespace {

std::string Item(Random& rng, int64_t id, int type) {
  std::string date = std::to_string(rng.Range(2010, 2020)) + "-" +
                     (rng.Chance(0.5) ? "0" : "1") +
                     std::to_string(rng.Range(0, 1)) + "-15";
  std::string base = R"({"id":)" + std::to_string(id) + R"(,"date":")" + date +
                     R"(",)";
  switch (type) {
    case 0:
      return base + R"("type":"story","score":)" + std::to_string(rng.Range(0, 500)) +
             R"(,"desc":)" + std::to_string(rng.Range(0, 9)) +
             R"(,"title":")" + rng.NextString(10, 40) + R"(","url":"https://)" +
             rng.NextString(8, 20) + R"(.com"})";
    case 1:
      return base + R"("type":"poll","score":)" + std::to_string(rng.Range(0, 300)) +
             R"(,"desc":)" + std::to_string(rng.Range(0, 9)) +
             R"(,"title":")" + rng.NextString(10, 40) + R"("})";
    case 2:
      return base + R"("type":"pollopt","score":)" + std::to_string(rng.Range(0, 100)) +
             R"(,"poll":)" + std::to_string(rng.Range(1, 1000)) +
             R"(,"title":")" + rng.NextString(5, 25) + R"("})";
    case 3:
      return base + R"("type":"comment","parent":)" +
             std::to_string(rng.Range(1, static_cast<int64_t>(id > 1 ? id : 2))) +
             R"(,"text":")" + rng.NextString(20, 80) + R"("})";
    default:
      return base + R"("type":"job","title":")" + rng.NextString(10, 40) +
             R"(","url":"https://)" + rng.NextString(8, 20) + R"(.jobs"})";
  }
}

}  // namespace

std::vector<std::string> GenerateHackerNews(const HackerNewsOptions& options) {
  Random rng(options.seed);
  std::vector<std::string> docs;
  docs.reserve(options.num_items);
  if (options.interleaved) {
    for (size_t i = 0; i < options.num_items; i++) {
      docs.push_back(Item(rng, static_cast<int64_t>(i + 1),
                          static_cast<int>(i % 5)));
    }
  } else {
    for (int type = 0; type < 5; type++) {
      size_t per_type = options.num_items / 5;
      for (size_t i = 0; i < per_type; i++) {
        docs.push_back(Item(rng, static_cast<int64_t>(docs.size() + 1), type));
      }
    }
  }
  return docs;
}

}  // namespace jsontiles::workload
