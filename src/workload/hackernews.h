// HackerNews-style news items (paper Figure 3): several distinct document
// types with little key overlap, used to demonstrate tuple reordering.

#ifndef JSONTILES_WORKLOAD_HACKERNEWS_H_
#define JSONTILES_WORKLOAD_HACKERNEWS_H_

#include <string>
#include <vector>

namespace jsontiles::workload {

struct HackerNewsOptions {
  size_t num_items = 10000;
  uint64_t seed = 20200107;
  /// true: item types round-robin (worst case, no spatial locality — the
  /// Figure 4 scenario). false: items clustered by type.
  bool interleaved = true;
};

/// Document types: story {id,date,type,score,desc,title,url},
/// poll {id,date,type,score,desc,title}, pollopt {id,date,type,score,poll,
/// title}, comment {id,date,type,parent,text}, job {id,date,type,title,url}.
std::vector<std::string> GenerateHackerNews(const HackerNewsOptions& options);

}  // namespace jsontiles::workload

#endif  // JSONTILES_WORKLOAD_HACKERNEWS_H_
