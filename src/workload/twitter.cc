#include "workload/twitter.h"

#include <cstdio>

#include "exec/operators.h"
#include "tiles/keypath.h"
#include "util/date.h"
#include "util/logging.h"
#include "util/random.h"

namespace jsontiles::workload {

namespace {

const char* kHashtags[] = {"COVID", "love", "music", "news", "sports", "art",
                           "travel", "food", "gaming", "politics", "science",
                           "fashion", "fitness", "movies", "crypto", "cats"};
const char* kScreenNames[] = {"ladygaga", "katyperry", "justinbieber",
                              "barackobama", "rihanna", "taylorswift13",
                              "cristiano", "jtimberlake", "kimkardashian",
                              "elonmusk"};
const char* kSources[] = {
    "<a href=\\\"http://twitter.com/download/iphone\\\">Twitter for iPhone</a>",
    "<a href=\\\"http://twitter.com/download/android\\\">Twitter for Android</a>",
    "<a href=\\\"https://mobile.twitter.com\\\">Twitter Web App</a>",
    "<a href=\\\"https://about.twitter.com/products/tweetdeck\\\">TweetDeck</a>"};
const char* kLangs[] = {"en", "es", "ja", "pt", "ar", "fr", "de", "ko"};
const char* kWords[] = {"just", "really", "today", "love", "this", "new",
                        "time", "people", "know", "think", "good", "going",
                        "world", "life", "never", "happy"};

std::string TweetText(Random& rng) {
  int n = static_cast<int>(rng.Range(4, 18));
  std::string out;
  for (int i = 0; i < n; i++) {
    if (!out.empty()) out.push_back(' ');
    out.append(kWords[rng.Uniform(16)]);
  }
  return out;
}

// Twitter API created_at format: "Mon Jun 01 12:34:56 +0000 2020".
std::string CreatedAt(Random& rng, int year) {
  static const char* kDays[] = {"Sun", "Mon", "Tue", "Wed", "Thu", "Fri", "Sat"};
  static const char* kMonths[] = {"Jan", "Feb", "Mar", "Apr", "May", "Jun",
                                  "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};
  int month = static_cast<int>(rng.Range(0, 11));
  int day = static_cast<int>(rng.Range(1, 28));
  int64_t days = DaysFromCivil(year, month + 1, day);
  int weekday = static_cast<int>(((days % 7) + 11) % 7);  // 1970-01-01 was Thu
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%s %s %02d %02d:%02d:%02d +0000 %04d",
                kDays[weekday], kMonths[month], day,
                static_cast<int>(rng.Range(0, 23)),
                static_cast<int>(rng.Range(0, 59)),
                static_cast<int>(rng.Range(0, 59)), year);
  return buf;
}

}  // namespace

std::vector<std::string> GenerateTwitter(const TwitterOptions& options) {
  Random rng(options.seed);
  std::vector<std::string> docs;
  docs.reserve(options.num_tweets);
  const size_t num_users = std::max<size_t>(64, options.num_tweets / 20);
  ZipfGenerator user_zipf(num_users, 0.95);
  ZipfGenerator tag_zipf(16, 0.9);
  ZipfGenerator mention_zipf(10, 0.9);

  int64_t next_id = 1000000;
  for (size_t i = 0; i < options.num_tweets; i++) {
    int64_t id = next_id;
    next_id += static_cast<int64_t>(rng.Range(1, 1000));
    int year = options.changing_schema
                   ? 2006 + static_cast<int>(i * 15 / options.num_tweets)
                   : 2020;

    // Delete records have a completely different structure (§6.3 query 2).
    if (rng.Chance(options.delete_fraction)) {
      int64_t user = static_cast<int64_t>(user_zipf.Next(rng));
      docs.push_back(R"({"delete":{"status":{"id":)" + std::to_string(id) +
                     R"(,"user_id":)" + std::to_string(user) +
                     R"(},"timestamp_ms":")" +
                     std::to_string(1590969600000LL + static_cast<int64_t>(i)) +
                     R"("}})");
      continue;
    }

    int64_t user = static_cast<int64_t>(user_zipf.Next(rng));
    std::string doc = "{";
    doc += R"("created_at":")" + CreatedAt(rng, year) + R"(",)";
    doc += R"("id":)" + std::to_string(id) + ",";
    doc += R"("text":")" + TweetText(rng) + R"(",)";
    doc += R"("user":{"id":)" + std::to_string(user) + R"(,"name":")" +
           rng.NextString(4, 12) + R"(","screen_name":"user)" +
           std::to_string(user) + R"(","followers_count":)" +
           std::to_string(rng.Uniform(1000000)) + R"(,"friends_count":)" +
           std::to_string(rng.Uniform(5000)) + R"(,"verified":)" +
           (rng.Chance(0.02) ? "true" : "false") + "}";

    // Era-gated fields (§2.2: reply 2007, retweet 2009, geo 2010, entities
    // 2010+, lang/favorites 2012+, source always).
    doc += R"(,"source":")" + std::string(kSources[rng.Uniform(4)]) + R"(")";
    if (year >= 2007) {
      if (rng.Chance(0.25)) {
        doc += R"(,"in_reply_to_status_id":)" +
               std::to_string(id - static_cast<int64_t>(rng.Range(1, 100000)));
      } else {
        doc += R"(,"in_reply_to_status_id":null)";
      }
    }
    if (year >= 2009) {
      doc += R"(,"retweet_count":)" + std::to_string(rng.Uniform(10000));
    }
    if (year >= 2010) {
      if (rng.Chance(0.1)) {
        char geo[96];
        std::snprintf(geo, sizeof(geo),
                      ",\"geo\":{\"coordinates\":[%.4f,%.4f],\"type\":\"Point\"}",
                      -90.0 + rng.NextDouble() * 180, -180.0 + rng.NextDouble() * 360);
        doc += geo;
      } else {
        doc += R"(,"geo":null)";
      }
      // entities: hashtags and user_mentions with varying cardinality.
      std::string hashtags = "[";
      int nh = static_cast<int>(rng.Range(0, 5));
      for (int h = 0; h < nh; h++) {
        if (h) hashtags += ",";
        hashtags += R"({"text":")" + std::string(kHashtags[tag_zipf.Next(rng)]) +
                    R"(","indices":[)" + std::to_string(rng.Uniform(100)) + "," +
                    std::to_string(rng.Uniform(140)) + "]}";
      }
      hashtags += "]";
      std::string mentions = "[";
      int nm = static_cast<int>(rng.Range(0, 3));
      for (int m = 0; m < nm; m++) {
        if (m) mentions += ",";
        mentions += R"({"screen_name":")" +
                    std::string(kScreenNames[mention_zipf.Next(rng)]) +
                    R"(","id":)" + std::to_string(rng.Uniform(100000000)) + "}";
      }
      mentions += "]";
      doc += R"(,"entities":{"hashtags":)" + hashtags + R"(,"user_mentions":)" +
             mentions + "}";
    }
    if (year >= 2012) {
      doc += R"(,"lang":")" + std::string(kLangs[rng.Uniform(8)]) + R"(")";
      doc += R"(,"favorite_count":)" + std::to_string(rng.Uniform(50000));
    }
    doc += "}";
    docs.push_back(std::move(doc));
  }
  return docs;
}

namespace {

using exec::Access;
using exec::AggSpec;
using exec::And;
using exec::ArrayContains;
using exec::ConstString;
using exec::Eq;
using exec::ExprPtr;
using exec::IsNotNull;
using exec::QueryContext;
using exec::RowSet;
using exec::Slot;
using exec::ValueType;
using opt::PlannerOptions;
using opt::QueryBlock;
using opt::TableRef;
using storage::Relation;

// Marker for tweet documents (every tweet has a user object).
ExprPtr TweetMarker(const char* alias) {
  return IsNotNull(Access(alias, {"user", "id"}, ValueType::kInt));
}

// T1: the most influential users of the day and their tweet volume.
RowSet T1(const Relation& rel, QueryContext& ctx, const PlannerOptions& opts) {
  QueryBlock q;
  q.AddTable(TableRef::Rel("t", &rel, TweetMarker("t")));
  q.GroupBy({Access("t", {"user", "id"}, ValueType::kInt),
             Access("t", {"user", "screen_name"}, ValueType::kString)});
  q.Aggregate(AggSpec::Max(Access("t", {"user", "followers_count"},
                                  ValueType::kInt)));
  q.Aggregate(AggSpec::CountStar());
  q.OrderBy(Slot(2), true);
  q.OrderBy(Slot(0));
  q.Limit(10);
  return q.Execute(ctx, opts);
}

// T2: deletions per user (the structurally-different delete records).
RowSet T2(const Relation& rel, QueryContext& ctx, const PlannerOptions& opts) {
  QueryBlock q;
  q.AddTable(TableRef::Rel(
      "d", &rel,
      IsNotNull(Access("d", {"delete", "status", "user_id"}, ValueType::kInt))));
  q.GroupBy({Access("d", {"delete", "status", "user_id"}, ValueType::kInt)});
  q.Aggregate(AggSpec::CountStar());
  q.OrderBy(Slot(1), true);
  q.OrderBy(Slot(0));
  q.Limit(10);
  return q.Execute(ctx, opts);
}

// Array-membership queries: JSONB traversal (T3/T4) or the Tiles-* rewrite
// joining the extracted side relation (§3.5).
RowSet ArrayQuery(const Relation& rel, QueryContext& ctx,
                  const PlannerOptions& opts, bool use_side,
                  std::initializer_list<std::string_view> array_keys,
                  const char* element_key, const char* needle) {
  std::string array_path;
  for (std::string_view k : array_keys) {
    tiles::AppendKeySegment(&array_path, k);
  }
  const Relation* side =
      use_side ? rel.FindSideRelation(array_path) : nullptr;
  if (side != nullptr) {
    // Tiles-*: filter the side relation, deduplicate parent row ids (the
    // predicate is per-tweet existence), then join the base table.
    QueryBlock sb;
    sb.AddTable(TableRef::Rel(
        "e", side,
        Eq(Access("e", {element_key}, ValueType::kString), ConstString(needle))));
    sb.GroupBy({Access("e", {"_rowid"}, ValueType::kInt)});
    sb.Aggregate(AggSpec::CountStar());
    RowSet matches = sb.Execute(ctx, opts);

    QueryBlock q;
    q.AddTable(TableRef::Rows("m", &matches, {"rowid", "hits"}));
    q.AddTable(TableRef::Rel("t", &rel, TweetMarker("t")));
    q.AddJoin(Access("m", {"rowid"}, ValueType::kInt), exec::RowId("t"));
    q.GroupBy({Access("t", {"lang"}, ValueType::kString)});
    q.Aggregate(AggSpec::CountStar());
    q.Aggregate(AggSpec::Max(Access("t", {"retweet_count"}, ValueType::kInt)));
    q.OrderBy(Slot(1), true);
    q.OrderBy(Slot(0));
    return q.Execute(ctx, opts);
  }
  QueryBlock q;
  q.AddTable(TableRef::Rel(
      "t", &rel,
      And(TweetMarker("t"),
          ArrayContains("t", array_keys, element_key, needle))));
  q.GroupBy({Access("t", {"lang"}, ValueType::kString)});
  q.Aggregate(AggSpec::CountStar());
  q.Aggregate(AggSpec::Max(Access("t", {"retweet_count"}, ValueType::kInt)));
  q.OrderBy(Slot(1), true);
  q.OrderBy(Slot(0));
  return q.Execute(ctx, opts);
}

// T3: tweets mentioning @ladygaga.
RowSet T3(const Relation& rel, QueryContext& ctx, const PlannerOptions& opts,
          bool use_side) {
  return ArrayQuery(rel, ctx, opts, use_side, {"entities", "user_mentions"},
                    "screen_name", "ladygaga");
}

// T4: tweets with the #COVID hashtag.
RowSet T4(const Relation& rel, QueryContext& ctx, const PlannerOptions& opts,
          bool use_side) {
  return ArrayQuery(rel, ctx, opts, use_side, {"entities", "hashtags"}, "text",
                    "COVID");
}

// T5: tweet volume and reach per client application.
RowSet T5(const Relation& rel, QueryContext& ctx, const PlannerOptions& opts) {
  QueryBlock q;
  q.AddTable(TableRef::Rel("t", &rel, TweetMarker("t")));
  q.GroupBy({Access("t", {"source"}, ValueType::kString)});
  q.Aggregate(AggSpec::CountStar());
  q.Aggregate(AggSpec::Avg(Access("t", {"user", "followers_count"},
                                  ValueType::kInt)));
  q.OrderBy(Slot(1), true);
  q.Limit(5);
  return q.Execute(ctx, opts);
}

}  // namespace

exec::RowSet RunTwitterQuery(int number, const storage::Relation& rel,
                             exec::QueryContext& ctx, bool use_array_extraction,
                             const opt::PlannerOptions& planner) {
  switch (number) {
    case 1: return T1(rel, ctx, planner);
    case 2: return T2(rel, ctx, planner);
    case 3: return T3(rel, ctx, planner, use_array_extraction);
    case 4: return T4(rel, ctx, planner, use_array_extraction);
    case 5: return T5(rel, ctx, planner);
    default: JSONTILES_CHECK(false);
  }
}

const char* TwitterQueryName(int number) {
  static const char* kNames[] = {"",
                                 "T1 most influential users",
                                 "T2 deletions per user",
                                 "T3 mentions of @ladygaga",
                                 "T4 tweets tagged #COVID",
                                 "T5 reach per client"};
  JSONTILES_CHECK(number >= 1 && number <= 5);
  return kNames[number];
}

}  // namespace jsontiles::workload
