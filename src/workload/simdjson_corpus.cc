#include "workload/simdjson_corpus.h"

#include <cstdio>

#include "util/random.h"

namespace jsontiles::workload {

namespace {

void AppendDouble(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out.append(buf);
}

std::string ApacheBuilds(Random& rng) {
  std::string out = R"({"assignedLabels":[{}],"mode":"EXCLUSIVE","nodeDescription":"the master Jenkins node","jobs":[)";
  for (int i = 0; i < 1200; i++) {
    if (i) out.push_back(',');
    out += R"({"name":"job-)" + rng.NextString(8, 24) +
           R"(","url":"https://builds.apache.org/job/)" + rng.NextString(8, 24) +
           R"(/","color":")" + (rng.Chance(0.7) ? "blue" : "red") + R"("})";
  }
  out += R"(],"numExecutors":0,"useSecurity":true,"views":[{"name":"All","url":"https://builds.apache.org/"}]})";
  return out;
}

std::string Canada(Random& rng) {
  std::string out =
      R"({"type":"FeatureCollection","features":[{"type":"Feature","properties":{"name":"Canada"},"geometry":{"type":"Polygon","coordinates":[)";
  for (int ring = 0; ring < 12; ring++) {
    if (ring) out.push_back(',');
    out.push_back('[');
    for (int i = 0; i < 1500; i++) {
      if (i) out.push_back(',');
      out.push_back('[');
      AppendDouble(out, -141.0 + rng.NextDouble() * 88.0);
      out.push_back(',');
      AppendDouble(out, 41.0 + rng.NextDouble() * 42.0);
      out.push_back(']');
    }
    out.push_back(']');
  }
  out += "]}}]}";
  return out;
}

std::string Gsoc(Random& rng) {
  std::string out = "{";
  for (int i = 0; i < 450; i++) {
    if (i) out.push_back(',');
    out += "\"" + std::to_string(i + 1) + R"(":{"@context":{"@vocab":"http://schema.org/"},"@type":"SoftwareSourceCode","name":")" +
           rng.NextString(10, 40) + R"(","description":")" + rng.NextString(60, 180) +
           R"(","sponsor":{"@type":"Organization","name":")" + rng.NextString(8, 30) +
           R"(","disambiguatingDescription":")" + rng.NextString(20, 60) +
           R"("},"author":{"@type":"Person","name":")" + rng.NextString(6, 20) + R"("}})";
  }
  out.push_back('}');
  return out;
}

std::string MarineIk(Random& rng) {
  std::string out = R"({"metadata":{"version":4.4,"type":"Object"},"geometries":[)";
  for (int g = 0; g < 4; g++) {
    if (g) out.push_back(',');
    out += R"({"uuid":")" + rng.NextString(36, 36) + R"(","type":"BufferGeometry","data":{"attributes":{"position":{"itemSize":3,"type":"Float32Array","array":[)";
    for (int i = 0; i < 12000; i++) {
      if (i) out.push_back(',');
      AppendDouble(out, rng.NextDouble() * 4 - 2);
    }
    out += R"(]},"normal":{"itemSize":3,"type":"Float32Array","array":[)";
    for (int i = 0; i < 6000; i++) {
      if (i) out.push_back(',');
      AppendDouble(out, rng.NextDouble() * 2 - 1);
    }
    out += "]}}}}";
  }
  out += R"(],"object":{"type":"Scene","children":[{"type":"SkinnedMesh","name":"marine"}]}})";
  return out;
}

std::string Mesh(Random& rng) {
  std::string out = R"({"batches":[{"indexRange":[0,21888],"vertexRange":[0,20202]}],"morphTargets":[],"positions":[)";
  for (int i = 0; i < 30000; i++) {
    if (i) out.push_back(',');
    AppendDouble(out, rng.NextDouble() * 100);
  }
  out += R"(],"indices":[)";
  for (int i = 0; i < 20000; i++) {
    if (i) out.push_back(',');
    out += std::to_string(rng.Uniform(20202));
  }
  out += "]}";
  return out;
}

std::string Numbers(Random& rng) {
  std::string out = "[";
  for (int i = 0; i < 12000; i++) {
    if (i) out.push_back(',');
    AppendDouble(out, rng.NextDouble() * 1000 - 500);
  }
  out.push_back(']');
  return out;
}

std::string RandomFile(Random& rng) {
  std::string out = R"({"result":[)";
  for (int i = 0; i < 900; i++) {
    if (i) out.push_back(',');
    out += R"({"id":)" + std::to_string(rng.Uniform(1000000)) +
           R"(,"name":")" + rng.NextString(5, 15) +
           R"(","cname":")" + rng.NextString(5, 25) +
           R"(","points":)" + std::to_string(rng.Uniform(5000)) +
           R"(,"grade":")" + std::string(1, static_cast<char>('A' + rng.Uniform(5))) +
           R"(","age":)" + std::to_string(rng.Range(13, 80)) +
           R"(,"friends":[)" + std::to_string(rng.Uniform(1000)) + "," +
           std::to_string(rng.Uniform(1000)) + "]}";
  }
  out += "]}";
  return out;
}

std::string TwitterApi(Random& rng) {
  std::string out = R"({"statuses":[)";
  for (int i = 0; i < 350; i++) {
    if (i) out.push_back(',');
    out += R"({"created_at":"Mon Jun 01 12:00:00 +0000 2020","id":)" +
           std::to_string(500000000000LL + static_cast<int64_t>(rng.Uniform(1000000000))) +
           R"(,"text":")" + rng.NextString(30, 130) +
           R"(","user":{"id":)" + std::to_string(rng.Uniform(100000000)) +
           R"(,"screen_name":")" + rng.NextString(5, 15) +
           R"(","followers_count":)" + std::to_string(rng.Uniform(100000)) +
           R"(,"statuses_count":)" + std::to_string(rng.Uniform(50000)) +
           R"(},"retweet_count":)" + std::to_string(rng.Uniform(1000)) +
           R"(,"entities":{"hashtags":[{"text":")" + rng.NextString(4, 12) +
           R"("}],"urls":[]},"favorited":false,"retweeted":)" +
           (rng.Chance(0.3) ? "true" : "false") + "}";
  }
  out += R"(],"search_metadata":{"completed_in":0.087,"count":100}})";
  return out;
}

}  // namespace

std::vector<CorpusFile> GenerateSimdJsonCorpus(uint64_t seed) {
  Random rng(seed);
  std::vector<CorpusFile> files;
  files.push_back({"apache_builds", ApacheBuilds(rng)});
  files.push_back({"canada", Canada(rng)});
  files.push_back({"gsoc-2018", Gsoc(rng)});
  files.push_back({"marine_ik", MarineIk(rng)});
  files.push_back({"mesh", Mesh(rng)});
  files.push_back({"numbers", Numbers(rng)});
  files.push_back({"random", RandomFile(rng)});
  files.push_back({"twitter_api", TwitterApi(rng)});
  return files;
}

}  // namespace jsontiles::workload
