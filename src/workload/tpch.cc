#include "workload/tpch.h"

#include <algorithm>
#include <cstdio>

#include "util/date.h"
#include "util/random.h"

namespace jsontiles::workload {

namespace {

const char* kRegions[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"};

// 25 nations with their region assignment (TPC-H appendix).
struct NationDef {
  const char* name;
  int region;
};
const NationDef kNations[] = {
    {"ALGERIA", 0},      {"ARGENTINA", 1}, {"BRAZIL", 1},     {"CANADA", 1},
    {"EGYPT", 4},        {"ETHIOPIA", 0},  {"FRANCE", 3},     {"GERMANY", 3},
    {"INDIA", 2},        {"INDONESIA", 2}, {"IRAN", 4},       {"IRAQ", 4},
    {"JAPAN", 2},        {"JORDAN", 4},    {"KENYA", 0},      {"MOROCCO", 0},
    {"MOZAMBIQUE", 0},   {"PERU", 1},      {"CHINA", 2},      {"ROMANIA", 3},
    {"SAUDI ARABIA", 4}, {"VIETNAM", 2},   {"RUSSIA", 3},     {"UNITED KINGDOM", 3},
    {"UNITED STATES", 1}};

const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY",
                           "HOUSEHOLD"};
const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED",
                             "5-LOW"};
const char* kShipModes[] = {"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL",
                            "FOB"};
const char* kInstructions[] = {"DELIVER IN PERSON", "COLLECT COD", "NONE",
                               "TAKE BACK RETURN"};
const char* kContainers1[] = {"SM", "LG", "MED", "JUMBO", "WRAP"};
const char* kContainers2[] = {"CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN",
                              "DRUM"};
const char* kTypes1[] = {"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY",
                         "PROMO"};
const char* kTypes2[] = {"ANODIZED", "BURNISHED", "PLATED", "POLISHED",
                         "BRUSHED"};
const char* kTypes3[] = {"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"};
const char* kColors[] = {"almond", "antique", "aquamarine", "azure", "beige",
                         "bisque", "black", "blanched", "blue", "blush",
                         "brown", "burlywood", "burnished", "chartreuse",
                         "chiffon", "chocolate", "coral", "cornflower", "cream",
                         "cyan", "dark", "deep", "dim", "dodger", "drab",
                         "firebrick", "floral", "forest", "frosted", "gainsboro",
                         "ghost", "goldenrod", "green", "grey", "honeydew",
                         "hot", "hotpink", "indian", "ivory", "khaki"};
const char* kWords[] = {"carefully", "quickly", "furiously", "slyly", "blithely",
                        "packages", "deposits", "accounts", "instructions",
                        "foxes", "ideas", "theodolites", "pinto", "beans",
                        "dependencies", "excuses", "platelets", "asymptotes",
                        "courts", "dolphins", "multipliers", "sauternes",
                        "warthogs", "frets", "dinos"};

std::string Comment(Random& rng, int min_words, int max_words,
                    const char* inject = nullptr) {
  int n = static_cast<int>(rng.Range(min_words, max_words));
  std::string out;
  int inject_at = inject != nullptr && rng.Chance(0.05)
                      ? static_cast<int>(rng.Uniform(static_cast<uint64_t>(n)))
                      : -1;
  for (int i = 0; i < n; i++) {
    if (!out.empty()) out.push_back(' ');
    if (i == inject_at) {
      out.append(inject);
    } else {
      out.append(kWords[rng.Uniform(sizeof(kWords) / sizeof(kWords[0]))]);
    }
  }
  return out;
}

std::string Phone(Random& rng, int nation) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%d-%03d-%03d-%04d", nation + 10,
                static_cast<int>(rng.Range(100, 999)),
                static_cast<int>(rng.Range(100, 999)),
                static_cast<int>(rng.Range(1000, 9999)));
  return buf;
}

std::string Money(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

std::string DateStr(Timestamp ts) { return FormatDate(ts); }

void AppendKV(std::string& doc, const char* key, const std::string& value,
              bool quote) {
  if (doc.back() != '{') doc.push_back(',');
  doc.push_back('"');
  doc.append(key);
  doc.append("\":");
  if (quote) doc.push_back('"');
  doc.append(value);
  if (quote) doc.push_back('"');
}

void AppendInt(std::string& doc, const char* key, int64_t v) {
  AppendKV(doc, key, std::to_string(v), false);
}
void AppendStr(std::string& doc, const char* key, const std::string& v) {
  AppendKV(doc, key, v, true);
}
void AppendNum(std::string& doc, const char* key, double v) {
  AppendKV(doc, key, Money(v), false);
}

}  // namespace

TpchData GenerateTpch(const TpchOptions& options) {
  TpchData data;
  Random rng(options.seed);
  const double sf = options.scale_factor;

  data.num_region = 5;
  data.num_nation = 25;
  data.num_supplier = std::max<size_t>(10, static_cast<size_t>(10000 * sf));
  data.num_customer = std::max<size_t>(30, static_cast<size_t>(150000 * sf));
  data.num_part = std::max<size_t>(40, static_cast<size_t>(200000 * sf));
  data.num_orders = std::max<size_t>(150, static_cast<size_t>(1500000 * sf));
  data.num_partsupp = data.num_part * 4;

  auto& out = data.combined;

  // region
  for (size_t r = 0; r < data.num_region; r++) {
    std::string doc = "{";
    AppendInt(doc, "r_regionkey", static_cast<int64_t>(r));
    AppendStr(doc, "r_name", kRegions[r]);
    AppendStr(doc, "r_comment", Comment(rng, 4, 10));
    doc.push_back('}');
    out.push_back(std::move(doc));
  }

  // nation
  for (size_t n = 0; n < data.num_nation; n++) {
    std::string doc = "{";
    AppendInt(doc, "n_nationkey", static_cast<int64_t>(n));
    AppendStr(doc, "n_name", kNations[n].name);
    AppendInt(doc, "n_regionkey", kNations[n].region);
    AppendStr(doc, "n_comment", Comment(rng, 4, 10));
    doc.push_back('}');
    out.push_back(std::move(doc));
  }

  // supplier
  for (size_t s = 0; s < data.num_supplier; s++) {
    int nation = static_cast<int>(rng.Uniform(25));
    std::string doc = "{";
    AppendInt(doc, "s_suppkey", static_cast<int64_t>(s + 1));
    char name[32];
    std::snprintf(name, sizeof(name), "Supplier#%09zu", s + 1);
    AppendStr(doc, "s_name", name);
    AppendStr(doc, "s_address", rng.NextString(8, 30));
    AppendInt(doc, "s_nationkey", nation);
    AppendStr(doc, "s_phone", Phone(rng, nation));
    AppendNum(doc, "s_acctbal", rng.Range(-99999, 999999) / 100.0);
    // ~0.5% of suppliers carry the Q16 complaint marker.
    AppendStr(doc, "s_comment",
              Comment(rng, 5, 15, "Customer unhappy Complaints"));
    doc.push_back('}');
    out.push_back(std::move(doc));
  }

  // customer
  for (size_t c = 0; c < data.num_customer; c++) {
    int nation = static_cast<int>(rng.Uniform(25));
    std::string doc = "{";
    AppendInt(doc, "c_custkey", static_cast<int64_t>(c + 1));
    char name[32];
    std::snprintf(name, sizeof(name), "Customer#%09zu", c + 1);
    AppendStr(doc, "c_name", name);
    AppendStr(doc, "c_address", rng.NextString(8, 30));
    AppendInt(doc, "c_nationkey", nation);
    AppendStr(doc, "c_phone", Phone(rng, nation));
    AppendNum(doc, "c_acctbal", rng.Range(-99999, 999999) / 100.0);
    AppendStr(doc, "c_mktsegment", kSegments[rng.Uniform(5)]);
    AppendStr(doc, "c_comment", Comment(rng, 5, 15));
    doc.push_back('}');
    out.push_back(std::move(doc));
  }

  // part
  std::vector<double> part_retail(data.num_part);
  for (size_t p = 0; p < data.num_part; p++) {
    std::string doc = "{";
    AppendInt(doc, "p_partkey", static_cast<int64_t>(p + 1));
    std::string pname;
    for (int w = 0; w < 5; w++) {
      if (w) pname.push_back(' ');
      pname.append(kColors[rng.Uniform(sizeof(kColors) / sizeof(kColors[0]))]);
    }
    AppendStr(doc, "p_name", pname);
    char mfgr[24], brand[24];
    int m = static_cast<int>(rng.Range(1, 5));
    std::snprintf(mfgr, sizeof(mfgr), "Manufacturer#%d", m);
    std::snprintf(brand, sizeof(brand), "Brand#%d%d", m,
                  static_cast<int>(rng.Range(1, 5)));
    AppendStr(doc, "p_mfgr", mfgr);
    AppendStr(doc, "p_brand", brand);
    std::string type = std::string(kTypes1[rng.Uniform(6)]) + " " +
                       kTypes2[rng.Uniform(5)] + " " + kTypes3[rng.Uniform(5)];
    AppendStr(doc, "p_type", type);
    AppendInt(doc, "p_size", rng.Range(1, 50));
    AppendStr(doc, "p_container", std::string(kContainers1[rng.Uniform(5)]) +
                                      " " + kContainers2[rng.Uniform(8)]);
    part_retail[p] = 900.0 + static_cast<double>((p + 1) % 1000) / 10.0 +
                     100.0 * static_cast<double>((p + 1) % 10);
    AppendNum(doc, "p_retailprice", part_retail[p]);
    AppendStr(doc, "p_comment", Comment(rng, 2, 6));
    doc.push_back('}');
    out.push_back(std::move(doc));
  }

  // partsupp: 4 suppliers per part.
  std::vector<double> ps_cost(data.num_partsupp);
  auto supp_of = [&](size_t part, int i) {
    return (part + static_cast<size_t>(i) *
                       (data.num_supplier / 4 + 1)) % data.num_supplier + 1;
  };
  for (size_t p = 0; p < data.num_part; p++) {
    for (int i = 0; i < 4; i++) {
      std::string doc = "{";
      AppendInt(doc, "ps_partkey", static_cast<int64_t>(p + 1));
      AppendInt(doc, "ps_suppkey", static_cast<int64_t>(supp_of(p, i)));
      AppendInt(doc, "ps_availqty", rng.Range(1, 9999));
      double cost = rng.Range(100, 100000) / 100.0;
      ps_cost[p * 4 + static_cast<size_t>(i)] = cost;
      AppendNum(doc, "ps_supplycost", cost);
      AppendStr(doc, "ps_comment", Comment(rng, 5, 20));
      doc.push_back('}');
      out.push_back(std::move(doc));
    }
  }

  // orders + lineitem.
  Timestamp start = MakeTimestamp(1992, 1, 1);
  Timestamp last_order = MakeTimestamp(1998, 8, 2);
  int64_t order_days =
      (last_order - start) / kMicrosPerDay;
  std::vector<std::string> lineitems;
  for (size_t o = 0; o < data.num_orders; o++) {
    int64_t orderkey = static_cast<int64_t>(o * 4 + 1);  // sparse keys as in dbgen
    // dbgen rule: customers whose key is divisible by 3 never place orders
    // (they populate Q22's "no orders" anti join).
    int64_t custkey = static_cast<int64_t>(rng.Uniform(data.num_customer) + 1);
    if (custkey % 3 == 0) custkey = custkey % static_cast<int64_t>(data.num_customer) + 1;
    if (custkey % 3 == 0) custkey++;  // num_customer divisible by 3 edge
    Timestamp orderdate = AddDays(start, rng.Range(0, order_days));
    int num_lines = static_cast<int>(rng.Range(1, 7));
    double total = 0;
    int lines_fulfilled = 0;
    std::vector<std::string> order_lines;
    for (int l = 0; l < num_lines; l++) {
      size_t part = rng.Uniform(data.num_part);
      int supp_i = static_cast<int>(rng.Uniform(4));
      int64_t qty = rng.Range(1, 50);
      double extprice = part_retail[part] * static_cast<double>(qty);
      double discount = static_cast<double>(rng.Range(0, 10)) / 100.0;
      double tax = static_cast<double>(rng.Range(0, 8)) / 100.0;
      Timestamp shipdate = AddDays(orderdate, rng.Range(1, 121));
      Timestamp commitdate = AddDays(orderdate, rng.Range(30, 90));
      Timestamp receiptdate = AddDays(shipdate, rng.Range(1, 30));
      Timestamp now = MakeTimestamp(1995, 6, 17);
      const char* linestatus = shipdate > now ? "O" : "F";
      const char* returnflag;
      if (receiptdate <= now) {
        returnflag = rng.Chance(0.5) ? "R" : "A";
      } else {
        returnflag = "N";
      }
      if (linestatus[0] == 'F') lines_fulfilled++;
      total += extprice * (1 - discount) * (1 + tax);

      std::string doc = "{";
      AppendInt(doc, "l_orderkey", orderkey);
      AppendInt(doc, "l_partkey", static_cast<int64_t>(part + 1));
      AppendInt(doc, "l_suppkey", static_cast<int64_t>(supp_of(part, supp_i)));
      AppendInt(doc, "l_linenumber", l + 1);
      AppendInt(doc, "l_quantity", qty);
      AppendNum(doc, "l_extendedprice", extprice);
      AppendKV(doc, "l_discount", Money(discount), false);
      AppendKV(doc, "l_tax", Money(tax), false);
      AppendStr(doc, "l_returnflag", returnflag);
      AppendStr(doc, "l_linestatus", linestatus);
      AppendStr(doc, "l_shipdate", DateStr(shipdate));
      AppendStr(doc, "l_commitdate", DateStr(commitdate));
      AppendStr(doc, "l_receiptdate", DateStr(receiptdate));
      AppendStr(doc, "l_shipinstruct", kInstructions[rng.Uniform(4)]);
      AppendStr(doc, "l_shipmode", kShipModes[rng.Uniform(7)]);
      AppendStr(doc, "l_comment", Comment(rng, 2, 8));
      doc.push_back('}');
      order_lines.push_back(std::move(doc));
    }

    const char* status = lines_fulfilled == num_lines  ? "F"
                         : lines_fulfilled == 0        ? "O"
                                                       : "P";
    std::string doc = "{";
    AppendInt(doc, "o_orderkey", orderkey);
    AppendInt(doc, "o_custkey", custkey);
    AppendStr(doc, "o_orderstatus", status);
    AppendNum(doc, "o_totalprice", total);
    AppendStr(doc, "o_orderdate", DateStr(orderdate));
    AppendStr(doc, "o_orderpriority", kPriorities[rng.Uniform(5)]);
    char clerk[24];
    std::snprintf(clerk, sizeof(clerk), "Clerk#%09d",
                  static_cast<int>(rng.Uniform(1000) + 1));
    AppendStr(doc, "o_clerk", clerk);
    AppendInt(doc, "o_shippriority", 0);
    // ~1% of orders carry the Q13 exclusion marker.
    AppendStr(doc, "o_comment", Comment(rng, 4, 12, "special deposits requests"));
    doc.push_back('}');
    out.push_back(std::move(doc));
    for (auto& line : order_lines) {
      data.lineitem_only.push_back(line);
      out.push_back(std::move(line));
    }
    data.num_lineitem += static_cast<size_t>(num_lines);
  }

  if (options.shuffle) {
    Random shuffle_rng(options.seed ^ 0x5DEECE66DULL);
    for (size_t i = out.size(); i > 1; i--) {
      std::swap(out[i - 1], out[shuffle_rng.Uniform(i)]);
    }
  }
  return data;
}

}  // namespace jsontiles::workload
