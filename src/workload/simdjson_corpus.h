// Synthetic stand-ins for the SIMD-JSON benchmark files (paper §6.9,
// Figures 18-20).
//
// The real repository files are not bundled; each generator reproduces the
// structural signature that drives (de)serialization cost, storage size and
// random-access behaviour of the binary formats:
//   apache_builds — wide, shallow objects (many short keys/strings)
//   canada        — GeoJSON: enormous nested arrays of coordinate doubles
//   gsoc-2018     — many medium objects with nested org metadata
//   marine_ik     — deeply nested 3D model with long float arrays
//   mesh          — flat arrays of small ints and floats
//   numbers       — one flat array of doubles
//   random        — random user records with unicode-ish strings
//   twitter_api   — tweet objects (nested user, entities arrays)

#ifndef JSONTILES_WORKLOAD_SIMDJSON_CORPUS_H_
#define JSONTILES_WORKLOAD_SIMDJSON_CORPUS_H_

#include <string>
#include <vector>

namespace jsontiles::workload {

struct CorpusFile {
  std::string name;
  std::string json;  // one document, like the original files
};

/// All eight corpus files at a laptop-friendly scale (~0.3-1 MB each).
std::vector<CorpusFile> GenerateSimdJsonCorpus(uint64_t seed = 7);

}  // namespace jsontiles::workload

#endif  // JSONTILES_WORKLOAD_SIMDJSON_CORPUS_H_
