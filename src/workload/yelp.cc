#include "workload/yelp.h"

#include <cstdio>

#include "exec/operators.h"
#include "util/logging.h"
#include "util/random.h"

namespace jsontiles::workload {

namespace {

using exec::AggSpec;
using exec::ExprPtr;
using exec::Slot;
using exec::ValueType;
using opt::QueryBlock;
using opt::TableRef;
using opt::TableSource;

const char* kCities[] = {"Phoenix", "Las Vegas", "Toronto", "Charlotte",
                         "Pittsburgh", "Montreal", "Cleveland", "Madison"};
const char* kStates[] = {"AZ", "NV", "ON", "NC", "PA", "QC", "OH", "WI"};
const char* kCategories[] = {"Restaurants", "Bars", "Coffee & Tea", "Nightlife",
                             "Shopping", "Fitness", "Automotive", "Hotels"};
const char* kReviewWords[] = {"great", "terrible", "amazing", "food", "service",
                              "place", "staff", "definitely", "recommend",
                              "never", "again", "delicious", "slow", "friendly"};

std::string Text(Random& rng, int min_words, int max_words) {
  int n = static_cast<int>(rng.Range(min_words, max_words));
  std::string out;
  for (int i = 0; i < n; i++) {
    if (!out.empty()) out.push_back(' ');
    out.append(kReviewWords[rng.Uniform(14)]);
  }
  return out;
}

std::string DateTime(Random& rng) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d:%02d",
                static_cast<int>(rng.Range(2005, 2019)),
                static_cast<int>(rng.Range(1, 12)),
                static_cast<int>(rng.Range(1, 28)),
                static_cast<int>(rng.Range(0, 23)),
                static_cast<int>(rng.Range(0, 59)),
                static_cast<int>(rng.Range(0, 59)));
  return buf;
}

}  // namespace

std::vector<std::string> GenerateYelp(const YelpOptions& options) {
  Random rng(options.seed);
  std::vector<std::string> docs;
  const size_t nb = options.num_business;
  const size_t nu = nb * 10;
  ZipfGenerator business_zipf(nb, 0.9);
  ZipfGenerator user_zipf(nu, 0.9);

  // business
  for (size_t b = 0; b < nb; b++) {
    size_t city = rng.Uniform(8);
    char stars[8];
    std::snprintf(stars, sizeof(stars), "%.1f",
                  static_cast<double>(rng.Range(2, 10)) / 2.0);
    std::string doc = "{";
    doc += R"("business_id":"b)" + std::to_string(b) + R"(",)";
    doc += R"("name":")" + rng.NextString(5, 15) + R"(",)";
    doc += R"("address":")" + rng.NextString(10, 25) + R"(",)";
    doc += R"("city":")" + std::string(kCities[city]) + R"(",)";
    doc += R"("state":")" + std::string(kStates[city]) + R"(",)";
    doc += R"("postal_code":")" + std::to_string(rng.Range(10000, 99999)) + R"(",)";
    doc += R"("latitude":)" + std::to_string(30.0 + rng.NextDouble() * 20) + ",";
    doc += R"("longitude":)" + std::to_string(-120.0 + rng.NextDouble() * 40) + ",";
    doc += R"("stars":)" + std::string(stars) + ",";
    doc += R"("review_count":)" + std::to_string(rng.Range(3, 500)) + ",";
    doc += R"("is_open":)" + std::to_string(rng.Chance(0.8) ? 1 : 0) + ",";
    doc += R"("attributes":{"RestaurantsPriceRange2":")" +
           std::to_string(rng.Range(1, 4)) + R"(","BikeParking":")" +
           (rng.Chance(0.5) ? "True" : "False") + R"("},)";
    doc += R"("categories":")" + std::string(kCategories[rng.Uniform(8)]) +
           ", " + kCategories[rng.Uniform(8)] + R"(",)";
    doc += R"("hours":{"Monday":"9:0-17:0","Friday":"9:0-21:0"})";
    doc += "}";
    docs.push_back(std::move(doc));
  }

  // user
  for (size_t u = 0; u < nu; u++) {
    std::string doc = "{";
    doc += R"("user_id":"u)" + std::to_string(u) + R"(",)";
    doc += R"("name":")" + rng.NextString(3, 10) + R"(",)";
    doc += R"("review_count":)" + std::to_string(rng.Range(0, 300)) + ",";
    doc += R"("yelping_since":")" + DateTime(rng) + R"(",)";
    doc += R"("useful":)" + std::to_string(rng.Range(0, 1000)) + ",";
    doc += R"("funny":)" + std::to_string(rng.Range(0, 500)) + ",";
    doc += R"("fans":)" + std::to_string(rng.Range(0, 100)) + ",";
    char avg[8];
    std::snprintf(avg, sizeof(avg), "%.2f", 1.0 + rng.NextDouble() * 4.0);
    doc += R"("average_stars":)" + std::string(avg);
    doc += "}";
    docs.push_back(std::move(doc));
  }

  // review (the big one)
  const size_t nr = nb * 35;
  for (size_t r = 0; r < nr; r++) {
    std::string doc = "{";
    doc += R"("review_id":"r)" + std::to_string(r) + R"(",)";
    doc += R"("user_id":"u)" + std::to_string(user_zipf.Next(rng)) + R"(",)";
    doc += R"("business_id":"b)" + std::to_string(business_zipf.Next(rng)) + R"(",)";
    doc += R"("stars":)" + std::to_string(rng.Range(1, 5)) + ",";
    doc += R"("useful":)" + std::to_string(rng.Range(0, 50)) + ",";
    doc += R"("funny":)" + std::to_string(rng.Range(0, 20)) + ",";
    doc += R"("cool":)" + std::to_string(rng.Range(0, 20)) + ",";
    doc += R"("text":")" + Text(rng, 8, 60) + R"(",)";
    doc += R"("date":")" + DateTime(rng) + R"(")";
    doc += "}";
    docs.push_back(std::move(doc));
  }

  // tip
  const size_t nt = nb * 6;
  for (size_t t = 0; t < nt; t++) {
    std::string doc = "{";
    doc += R"("user_id":"u)" + std::to_string(user_zipf.Next(rng)) + R"(",)";
    doc += R"("business_id":"b)" + std::to_string(business_zipf.Next(rng)) + R"(",)";
    doc += R"("text":")" + Text(rng, 3, 15) + R"(",)";
    doc += R"("date":")" + DateTime(rng) + R"(",)";
    doc += R"("compliment_count":)" + std::to_string(rng.Range(0, 5));
    doc += "}";
    docs.push_back(std::move(doc));
  }

  // checkin
  for (size_t b = 0; b < nb; b++) {
    if (!rng.Chance(0.9)) continue;
    std::string dates;
    int n = static_cast<int>(rng.Range(1, 6));
    for (int i = 0; i < n; i++) {
      if (i) dates += ", ";
      dates += DateTime(rng);
    }
    docs.push_back(R"({"business_id":"b)" + std::to_string(b) +
                   R"(","date":")" + dates + R"("})");
  }

  // Interleave document types like a combined log (deterministic shuffle).
  Random shuffle_rng(options.seed ^ 0xABCDEF);
  for (size_t i = docs.size(); i > 1; i--) {
    std::swap(docs[i - 1], docs[shuffle_rng.Uniform(i)]);
  }
  return docs;
}

namespace {

using exec::Access;
using exec::And;
using exec::ConstInt;
using exec::ConstString;
using exec::Eq;
using exec::Ge;
using exec::Gt;
using exec::IsNotNull;
using exec::QueryContext;
using exec::RowSet;
using opt::PlannerOptions;
using storage::Relation;

ExprPtr BS(const char* t, const char* k) { return Access(t, {k}, ValueType::kString); }
ExprPtr BI(const char* t, const char* k) { return Access(t, {k}, ValueType::kInt); }
ExprPtr BF(const char* t, const char* k) { return Access(t, {k}, ValueType::kFloat); }

// Y1: average review stars and review volume per city of open businesses.
RowSet Y1(const TableSource& rel, QueryContext& ctx, const PlannerOptions& opts) {
  QueryBlock q;
  q.AddTable(TableRef::Src(
      "b", rel,
      And(IsNotNull(BS("b", "business_id")),
          And(IsNotNull(BS("b", "city")),
              Eq(BI("b", "is_open"), ConstInt(1))))));
  q.AddTable(TableRef::Src("r", rel, IsNotNull(BS("r", "review_id"))));
  q.AddJoin(BS("r", "business_id"), BS("b", "business_id"));
  q.GroupBy({BS("b", "city")});
  q.Aggregate(AggSpec::Avg(BI("r", "stars")));
  q.Aggregate(AggSpec::CountStar());
  q.OrderBy(Slot(2), true);
  return q.Execute(ctx, opts);
}

// Y2: the most active reviewers and their average given stars.
RowSet Y2(const TableSource& rel, QueryContext& ctx, const PlannerOptions& opts) {
  QueryBlock q;
  q.AddTable(TableRef::Src("u", rel,
                           And(IsNotNull(BS("u", "user_id")),
                               IsNotNull(BS("u", "yelping_since")))));
  q.AddTable(TableRef::Src("r", rel, IsNotNull(BS("r", "review_id"))));
  q.AddJoin(BS("r", "user_id"), BS("u", "user_id"));
  q.GroupBy({BS("u", "user_id"), BS("u", "name")});
  q.Aggregate(AggSpec::CountStar());
  q.Aggregate(AggSpec::Avg(BI("r", "stars")));
  q.OrderBy(Slot(2), true);
  q.OrderBy(Slot(0));
  q.Limit(25);
  return q.Execute(ctx, opts);
}

// Y3: three-way join: do elite reviewers rate differently per state?
RowSet Y3(const TableSource& rel, QueryContext& ctx, const PlannerOptions& opts) {
  QueryBlock q;
  q.AddTable(TableRef::Src("b", rel, IsNotNull(BS("b", "state"))));
  q.AddTable(TableRef::Src("r", rel, IsNotNull(BS("r", "review_id"))));
  q.AddTable(TableRef::Src("u", rel,
                           And(IsNotNull(BS("u", "yelping_since")),
                               Gt(BI("u", "fans"), ConstInt(50)))));
  q.AddJoin(BS("r", "business_id"), BS("b", "business_id"));
  q.AddJoin(BS("r", "user_id"), BS("u", "user_id"));
  q.GroupBy({BS("b", "state")});
  q.Aggregate(AggSpec::Avg(BI("r", "stars")));
  q.Aggregate(AggSpec::CountStar());
  q.OrderBy(Slot(0));
  return q.Execute(ctx, opts);
}

// Y4 (paper's example): number of reviews per star rating.
RowSet Y4(const TableSource& rel, QueryContext& ctx, const PlannerOptions& opts) {
  QueryBlock q;
  q.AddTable(TableRef::Src("r", rel, IsNotNull(BS("r", "review_id"))));
  q.GroupBy({BI("r", "stars")});
  q.Aggregate(AggSpec::CountStar());
  q.OrderBy(Slot(0));
  return q.Execute(ctx, opts);
}

// Y5: compliment-weighted tips per state for highly-rated businesses.
RowSet Y5(const TableSource& rel, QueryContext& ctx, const PlannerOptions& opts) {
  QueryBlock q;
  q.AddTable(TableRef::Src("b", rel,
                           And(IsNotNull(BS("b", "state"))   ,
                               Ge(BF("b", "stars"), exec::ConstFloat(4.0)))));
  q.AddTable(TableRef::Src(
      "t", rel,
      And(IsNotNull(BI("t", "compliment_count")), IsNotNull(BS("t", "date")))));
  q.AddJoin(BS("t", "business_id"), BS("b", "business_id"));
  q.GroupBy({BS("b", "state")});
  q.Aggregate(AggSpec::Sum(BI("t", "compliment_count")));
  q.Aggregate(AggSpec::CountStar());
  q.OrderBy(Slot(1), true);
  return q.Execute(ctx, opts);
}

}  // namespace

exec::RowSet RunYelpQuery(int number, const opt::TableSource& rel,
                          exec::QueryContext& ctx,
                          const opt::PlannerOptions& planner) {
  switch (number) {
    case 1: return Y1(rel, ctx, planner);
    case 2: return Y2(rel, ctx, planner);
    case 3: return Y3(rel, ctx, planner);
    case 4: return Y4(rel, ctx, planner);
    case 5: return Y5(rel, ctx, planner);
    default: JSONTILES_CHECK(false);
  }
}

const char* YelpQueryName(int number) {
  static const char* kNames[] = {"",
                                 "Y1 city review volume",
                                 "Y2 most active reviewers",
                                 "Y3 elite reviewers by state",
                                 "Y4 reviews per star rating",
                                 "Y5 tip compliments by state"};
  JSONTILES_CHECK(number >= 1 && number <= 5);
  return kNames[number];
}

}  // namespace jsontiles::workload
