// Synthetic Yelp dataset and the five analytical queries of paper §6.2.
//
// Replicates the structural properties of the Yelp Open Dataset: five
// document types (business, review, user, tip, checkin) combined into one
// stream with realistic key sets, nested attributes, numeric-string values
// ("stars": 4.5 appears as a JSON number; many attribute values are strings),
// timestamps, and Zipf-skewed business popularity.

#ifndef JSONTILES_WORKLOAD_YELP_H_
#define JSONTILES_WORKLOAD_YELP_H_

#include <string>
#include <vector>

#include "exec/scan.h"
#include "opt/query.h"
#include "storage/relation.h"

namespace jsontiles::workload {

struct YelpOptions {
  size_t num_business = 400;
  uint64_t seed = 20191120;
  /// Review/user/tip/checkin counts scale with businesses, following the
  /// real dataset's ratios (roughly 1 : 35 : 10 : 6 : 0.9).
};

std::vector<std::string> GenerateYelp(const YelpOptions& options);

/// The five Yelp queries (Table 2). The source may be a plain or a sharded
/// relation (implicit TableSource).
exec::RowSet RunYelpQuery(int number, const opt::TableSource& rel,
                          exec::QueryContext& ctx,
                          const opt::PlannerOptions& planner = {});
const char* YelpQueryName(int number);

}  // namespace jsontiles::workload

#endif  // JSONTILES_WORKLOAD_YELP_H_
