// Synthetic Twitter stream and the five queries of paper §6.3 (Table 3),
// including the "Changing" schema-evolution variant (Table 4) and the
// Tiles-* high-cardinality-array rewrites.
//
// Replicates the structure the algorithms care about: tweet objects with a
// mandatory nested user, optional reply/retweet/geo fields added over time
// (the running example of §2.2), delete records with a completely different
// shape, Zipf-skewed users and hashtags (with "COVID" and the @ladygaga
// mention among the heavy hitters), and entities arrays whose cardinality
// varies per tweet.

#ifndef JSONTILES_WORKLOAD_TWITTER_H_
#define JSONTILES_WORKLOAD_TWITTER_H_

#include <string>
#include <vector>

#include "exec/scan.h"
#include "opt/query.h"
#include "storage/relation.h"

namespace jsontiles::workload {

struct TwitterOptions {
  size_t num_tweets = 20000;
  uint64_t seed = 20200601;
  /// false: all tweets use the modern (2020) schema, like one day of the
  /// stream grab. true: tweets span 2006-2020 and gain fields era by era
  /// (the "Changing" data set of Table 4).
  bool changing_schema = false;
  /// Fraction of stream records that are deletions.
  double delete_fraction = 0.07;
};

std::vector<std::string> GenerateTwitter(const TwitterOptions& options);

/// The five Twitter queries. `use_array_extraction` switches Q3/Q4 to the
/// Tiles-* plan that joins the extracted entity side relations (requires a
/// relation loaded with LoadOptions::extract_arrays).
exec::RowSet RunTwitterQuery(int number, const storage::Relation& rel,
                             exec::QueryContext& ctx,
                             bool use_array_extraction = false,
                             const opt::PlannerOptions& planner = {});
const char* TwitterQueryName(int number);

}  // namespace jsontiles::workload

#endif  // JSONTILES_WORKLOAD_TWITTER_H_
