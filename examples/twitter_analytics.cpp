// Twitter analytics: the paper's running example end to end — evolving tweet
// schemas, structurally-different delete records, and high-cardinality
// entity arrays extracted into joinable side relations (Tiles-*, §3.5).
//
//   build/examples/example_twitter_analytics

#include <cstdio>

#include "storage/loader.h"
#include "tiles/keypath.h"
#include "workload/twitter.h"

using namespace jsontiles;  // NOLINT: example brevity

int main() {
  workload::TwitterOptions options;
  options.num_tweets = 30000;
  options.changing_schema = true;  // tweets span 2006-2020, fields accrue
  auto docs = workload::GenerateTwitter(options);

  storage::LoadOptions load_options;
  load_options.extract_arrays = true;  // Tiles-*: hashtags / mentions
  load_options.array_min_avg_elements = 1.0;
  load_options.array_min_presence = 0.2;
  storage::Loader loader(storage::StorageMode::kTiles, {}, load_options);
  auto tweets = loader.Load(docs, "tweets").MoveValueOrDie();

  std::printf("Loaded %zu stream records, %zu tiles\n", tweets->num_rows(),
              tweets->tiles().size());
  for (const auto& [path, side] : tweets->side_relations()) {
    std::printf("extracted array relation %-28s -> %zu elements\n",
                tiles::PathToDisplayString(path).c_str(), side->num_rows());
  }

  // Show schema evolution: what do early vs late tiles extract?
  auto describe = [&](const tiles::Tile& tile, const char* label) {
    std::printf("%s (rows %zu..%zu):", label, tile.row_begin,
                tile.row_begin + tile.row_count - 1);
    for (const auto& col : tile.columns) {
      std::printf(" %s", tiles::PathToDisplayString(col.path).c_str());
    }
    std::printf("\n");
  };
  describe(tweets->tiles().front(), "early tile ");
  describe(tweets->tiles().back(), "recent tile");

  for (int q = 1; q <= 5; q++) {
    exec::QueryContext ctx;
    auto rows = workload::RunTwitterQuery(q, *tweets, ctx,
                                          /*use_array_extraction=*/true);
    std::printf("\n%s -> %zu rows (top 3):\n", workload::TwitterQueryName(q),
                rows.size());
    for (size_t r = 0; r < rows.size() && r < 3; r++) {
      std::printf("  ");
      for (const auto& v : rows[r]) std::printf("%s | ", v.ToString().c_str());
      std::printf("\n");
    }
  }
  return 0;
}
