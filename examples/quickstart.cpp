// Quickstart: load JSON documents into a JSON-tiles relation and run a
// typed analytical query — no schema required.
//
//   build/examples/example_quickstart

#include <cstdio>
#include <string>
#include <vector>

#include "exec/expression.h"
#include "exec/scan.h"
#include "opt/query.h"
#include "storage/loader.h"
#include "tiles/keypath.h"

using namespace jsontiles;  // NOLINT: example brevity

int main() {
  // 1. Some heterogeneous JSON documents (note the schema change over time:
  //    `replies` and `geo` appear later, like the paper's Twitter example).
  std::vector<std::string> docs;
  for (int i = 0; i < 5000; i++) {
    std::string doc = R"({"id":)" + std::to_string(i) +
                      R"(,"create":"2020-06-)" +
                      (i % 28 + 1 < 10 ? "0" : "") + std::to_string(i % 28 + 1) +
                      R"(","text":"hello )" + std::to_string(i % 7) + R"(")";
    if (i >= 2000) doc += R"(,"replies":)" + std::to_string(i % 13);
    if (i >= 3500 && i % 3 != 0) {
      doc += R"(,"geo":{"lat":)" + std::to_string(40.0 + i % 10) + "}";
    }
    doc += "}";
    docs.push_back(std::move(doc));
  }

  // 2. Bulk load with JSON tiles (binary JSON + local column extraction,
  //    reordering, statistics — all automatic).
  storage::Loader loader(storage::StorageMode::kTiles, tiles::TileConfig{});
  auto relation = loader.Load(docs, "events").MoveValueOrDie();
  std::printf("Loaded %zu documents into %zu tiles\n", relation->num_rows(),
              relation->tiles().size());

  // 3. Inspect what was extracted in the first and last tile.
  for (const tiles::Tile* tile :
       {&relation->tiles().front(), &relation->tiles().back()}) {
    std::printf("tile@row %zu extracts:", tile->row_begin);
    for (const auto& col : tile->columns) {
      std::printf(" %s:%s", tiles::PathToDisplayString(col.path).c_str(),
                  tiles::ColumnTypeName(col.storage_type));
    }
    std::printf("\n");
  }

  // 4. Query: average replies per day in the second half of the month.
  //    Accesses carry their cast type; the scan reads extracted columns
  //    directly (the `create` strings were detected as dates, §4.9).
  exec::QueryContext ctx;
  opt::QueryBlock q;
  q.AddTable(opt::TableRef::Rel(
      "e", relation.get(),
      exec::Ge(exec::Access("e", {"create"}, exec::ValueType::kTimestamp),
               exec::ConstDate("2020-06-15"))));
  q.GroupBy({exec::Access("e", {"create"}, exec::ValueType::kTimestamp)});
  q.Aggregate(exec::AggSpec::Avg(
      exec::Access("e", {"replies"}, exec::ValueType::kInt)));
  q.Aggregate(exec::AggSpec::CountStar());
  q.OrderBy(exec::Slot(0));
  exec::RowSet rows = q.Execute(ctx);

  std::printf("\nday         avg_replies  events\n");
  for (const auto& row : rows) {
    std::printf("%s  %11.2f  %6lld\n", FormatDate(row[0].ts_value()).c_str(),
                row[1].is_null() ? 0.0 : row[1].float_value(),
                static_cast<long long>(row[2].int_value()));
  }
  std::printf("(%zu of %zu tiles were skipped by the date filter)\n",
              ctx.tiles_skipped, ctx.tiles_scanned);
  return 0;
}
