// SQL over JSON: the paper's user-facing interface (§4.1). PostgreSQL-style
// JSON accesses with cast push-down, executed through JSON tiles.
//
//   build/examples/example_sql_queries           # runs a demo script
//   echo "SELECT ..." | build/examples/example_sql_queries -   # reads stdin

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "sql/sql_parser.h"
#include "storage/loader.h"
#include "workload/tpch.h"

using namespace jsontiles;  // NOLINT: example brevity

int main(int argc, char** argv) {
  workload::TpchOptions options;
  options.scale_factor = 0.002;
  workload::TpchData data = workload::GenerateTpch(options);
  storage::Loader loader(storage::StorageMode::kTiles, {});
  auto relation = loader.Load(data.combined, "tpch").MoveValueOrDie();
  std::printf("Loaded combined TPC-H: %zu documents, %zu tiles\n\n",
              relation->num_rows(), relation->tiles().size());

  sql::SqlCatalog catalog;
  catalog.tables["tpch"] = relation.get();

  auto run = [&](const std::string& statement) {
    std::printf("sql> %s\n", statement.c_str());
    exec::QueryContext ctx;
    auto result = sql::ExecuteSql(statement, catalog, ctx);
    if (!result.ok()) {
      std::printf("error: %s\n\n", result.status().ToString().c_str());
      return;
    }
    std::printf("%s(%zu rows, %zu/%zu tiles skipped)\n\n",
                sql::FormatSqlResult(result.ValueOrDie(), 12).c_str(),
                result.ValueOrDie().rows.size(), ctx.tiles_skipped,
                ctx.tiles_scanned);
  };

  if (argc > 1 && std::strcmp(argv[1], "-") == 0) {
    std::string line;
    while (std::getline(std::cin, line)) {
      if (!line.empty()) run(line);
    }
    return 0;
  }

  // A simplified TPC-H Q1 in SQL — the paper's §4.2 example shape.
  run("SELECT l->>'l_returnflag' AS flag, l->>'l_linestatus' AS status, "
      "SUM(l->>'l_quantity'::BigInt) AS sum_qty, "
      "SUM(l->>'l_extendedprice'::Float * (1 - l->>'l_discount'::Float)) AS revenue, "
      "COUNT(*) AS n "
      "FROM tpch l "
      "WHERE l->>'l_shipdate'::Date <= DATE '1998-09-02' "
      "GROUP BY l->>'l_returnflag', l->>'l_linestatus' "
      "ORDER BY flag, status");

  // Simplified TPC-H Q10 (the paper's Figure 5): three-way join with
  // access push-down; the optimizer orders the joins from tile statistics.
  run("SELECT c->>'c_name' AS customer, "
      "SUM(l->>'l_extendedprice'::Float * (1 - l->>'l_discount'::Float)) AS revenue "
      "FROM tpch c, tpch o, tpch l "
      "WHERE l->>'l_orderkey'::BigInt = o->>'o_orderkey'::BigInt "
      "AND o->>'o_custkey'::BigInt = c->>'c_custkey'::BigInt "
      "AND c->>'c_custkey'::BigInt IS NOT NULL "
      "AND o->>'o_orderdate'::Date >= DATE '1993-10-01' "
      "AND o->>'o_orderdate'::Date < DATE '1994-01-01' "
      "AND l->>'l_returnflag' = 'R' "
      "GROUP BY c->>'c_name' ORDER BY revenue DESC LIMIT 10");

  // Nested access + date extraction + skipping: orders per priority in 1995.
  run("SELECT o->>'o_orderpriority' AS priority, COUNT(*) AS orders "
      "FROM tpch o "
      "WHERE EXTRACT(YEAR FROM o->>'o_orderdate') = 1995 "
      "GROUP BY o->>'o_orderpriority' ORDER BY priority");
  return 0;
}
