// Schema explorer: surface what JSON tiles learned about a document
// collection — per-tile extraction schemas, relation-level key statistics
// (frequency counters + HyperLogLog distinct counts, §4.6), and how the
// optimizer would estimate a predicate.
//
//   build/examples/example_schema_explorer

#include <algorithm>
#include <cstdio>
#include <map>

#include "opt/cardinality.h"
#include "storage/loader.h"
#include "tiles/keypath.h"
#include "workload/yelp.h"

using namespace jsontiles;  // NOLINT: example brevity

int main() {
  workload::YelpOptions options;
  options.num_business = 200;
  auto docs = workload::GenerateYelp(options);
  storage::Loader loader(storage::StorageMode::kTiles, {});
  auto rel = loader.Load(docs, "yelp").MoveValueOrDie();

  std::printf("Loaded %zu Yelp documents into %zu tiles\n\n", rel->num_rows(),
              rel->tiles().size());

  // Aggregate the distinct extraction schemas across tiles.
  std::map<std::string, size_t> schemas;
  for (const auto& tile : rel->tiles()) {
    std::string schema;
    for (const auto& col : tile.columns) {
      if (!schema.empty()) schema += ", ";
      schema += tiles::PathToDisplayString(col.path);
      schema += ":";
      schema += tiles::ColumnTypeName(col.storage_type);
    }
    schemas[schema]++;
  }
  std::printf("Distinct tile schemas (%zu):\n", schemas.size());
  std::vector<std::pair<size_t, std::string>> ordered;
  for (auto& [schema, count] : schemas) ordered.push_back({count, schema});
  std::sort(ordered.rbegin(), ordered.rend());
  for (size_t i = 0; i < ordered.size() && i < 6; i++) {
    std::printf("  x%-3zu {%s}\n", ordered[i].first,
                ordered[i].second.substr(0, 110).c_str());
  }

  // Relation-level statistics: key cardinalities and distinct counts.
  std::printf("\nOptimizer statistics (key presence / distinct values):\n");
  auto show = [&](std::initializer_list<std::string_view> keys) {
    std::string path;
    for (auto k : keys) tiles::AppendKeySegment(&path, k);
    uint64_t presence = rel->stats().EstimateKeyCardinalityAnyType(path);
    auto distinct = rel->stats().EstimateDistinctAnyType(path);
    std::printf("  %-22s in ~%-7llu docs, ~%.0f distinct values\n",
                tiles::PathToDisplayString(path).c_str(),
                static_cast<unsigned long long>(presence),
                distinct.has_value() ? *distinct : 0.0);
  };
  show({"business_id"});
  show({"review_id"});
  show({"user_id"});
  show({"stars"});
  show({"city"});

  // What would the optimizer estimate for a filtered business scan?
  exec::ExprPtr filter =
      exec::Eq(exec::Access("b", {"city"}, exec::ValueType::kString),
               exec::ConstString("Toronto"));
  std::string is_open_path;
  tiles::AppendKeySegment(&is_open_path, "is_open");
  std::vector<exec::ExprPtr> accesses;
  exec::CollectAccesses(filter, &accesses);
  auto rewritten = exec::RewriteAccessesToSlots(
      filter, [](const exec::Expr&) { return 0; });
  auto estimate = opt::EstimateScanCardinality(*rel, accesses, rewritten,
                                               {is_open_path}, 512);
  std::printf("\nEstimate for businesses in Toronto: ~%.0f rows (of %zu docs)\n",
              estimate.cardinality, rel->num_rows());
  return 0;
}
