// Combined log analytics: the motivating use case of the paper's
// introduction — log data from multiple sources lands in ONE relation with
// no upfront schema, yet analytical queries run at columnar speed because
// tuple reordering clusters each source's documents into its own tiles.
//
//   build/examples/example_log_analytics

#include <cstdio>
#include <string>
#include <vector>

#include "exec/expression.h"
#include "opt/query.h"
#include "storage/loader.h"
#include "util/random.h"
#include "workload/hackernews.h"

using namespace jsontiles;  // NOLINT: example brevity

namespace {

// Three unrelated services logging into the same stream.
std::vector<std::string> MakeCombinedLogs(size_t n) {
  Random rng(99);
  std::vector<std::string> docs;
  for (size_t i = 0; i < n; i++) {
    std::string ts = "2024-03-" + std::string(i % 28 + 1 < 10 ? "0" : "") +
                     std::to_string(i % 28 + 1) + "T12:00:00Z";
    switch (rng.Uniform(3)) {
      case 0:  // web server access log
        docs.push_back(R"({"ts":")" + ts + R"(","method":")" +
                       (rng.Chance(0.8) ? "GET" : "POST") +
                       R"(","path":"/api/v1/)" + rng.NextString(4, 10) +
                       R"(","status":)" +
                       std::to_string(rng.Chance(0.93) ? 200 : 500) +
                       R"(,"latency_ms":)" + std::to_string(rng.Range(1, 900)) + "}");
        break;
      case 1:  // application error log
        docs.push_back(R"({"ts":")" + ts + R"(","level":")" +
                       (rng.Chance(0.7) ? "INFO" : "ERROR") +
                       R"(","logger":"app.)" + rng.NextString(3, 8) +
                       R"(","message":")" + rng.NextString(20, 60) +
                       R"(","thread":)" + std::to_string(rng.Uniform(64)) + "}");
        break;
      default:  // billing events
        docs.push_back(R"({"ts":")" + ts + R"(","event":"charge","amount":")" +
                       std::to_string(rng.Range(1, 500)) + "." +
                       std::to_string(rng.Range(10, 99)) +
                       R"(","currency":"USD","customer":)" +
                       std::to_string(rng.Uniform(2000)) + "}");
    }
  }
  return docs;
}

}  // namespace

int main() {
  auto docs = MakeCombinedLogs(30000);
  storage::Loader loader(storage::StorageMode::kTiles, tiles::TileConfig{});
  auto logs = loader.Load(docs, "logs").MoveValueOrDie();
  std::printf("Loaded %zu mixed log records into %zu tiles\n", logs->num_rows(),
              logs->tiles().size());

  using exec::Access;
  using exec::ValueType;

  // Query 1: error rate per HTTP method — touches only web-server records;
  // tiles holding other sources are skipped (§4.8).
  {
    exec::QueryContext ctx;
    opt::QueryBlock q;
    q.AddTable(opt::TableRef::Rel(
        "w", logs.get(),
        exec::IsNotNull(Access("w", {"status"}, ValueType::kInt))));
    q.GroupBy({Access("w", {"method"}, ValueType::kString)});
    q.Aggregate(exec::AggSpec::CountStar());
    q.Aggregate(exec::AggSpec::Sum(
        exec::Case({exec::Eq(Access("w", {"status"}, ValueType::kInt),
                             exec::ConstInt(500)),
                    exec::ConstInt(1), exec::ConstInt(0)})));
    q.Aggregate(exec::AggSpec::Avg(Access("w", {"latency_ms"}, ValueType::kInt)));
    auto rows = q.Execute(ctx);
    std::printf("\nHTTP errors (skipped %zu/%zu tiles):\n", ctx.tiles_skipped,
                ctx.tiles_scanned);
    for (const auto& r : rows) {
      std::printf("  %-5s requests=%-6lld errors=%-4lld avg_latency=%.1fms\n",
                  r[0].ToString().c_str(),
                  static_cast<long long>(r[1].int_value()),
                  static_cast<long long>(r[2].int_value()),
                  r[3].float_value());
    }
  }

  // Query 2: billing — the "amount" values are numeric strings ("123.45");
  // §5.2 detection stores them typed, so the cast below is cheap and exact.
  {
    exec::QueryContext ctx;
    opt::QueryBlock q;
    q.AddTable(opt::TableRef::Rel(
        "b", logs.get(),
        exec::Eq(Access("b", {"event"}, ValueType::kString),
                 exec::ConstString("charge"))));
    q.GroupBy({});
    q.Aggregate(exec::AggSpec::CountStar());
    q.Aggregate(exec::AggSpec::Sum(Access("b", {"amount"}, ValueType::kFloat)));
    q.Aggregate(
        exec::AggSpec::CountDistinct(Access("b", {"customer"}, ValueType::kInt)));
    auto rows = q.Execute(ctx);
    std::printf("\nBilling: %lld charges, $%.2f total, %lld distinct customers\n",
                static_cast<long long>(rows[0][0].int_value()),
                rows[0][1].float_value(),
                static_cast<long long>(rows[0][2].int_value()));
  }

  // Query 3: cross-source — daily error count vs daily revenue (join on day).
  {
    exec::QueryContext ctx;
    opt::QueryBlock errors;
    errors.AddTable(opt::TableRef::Rel(
        "e", logs.get(),
        exec::Eq(Access("e", {"level"}, ValueType::kString),
                 exec::ConstString("ERROR"))));
    errors.GroupBy({Access("e", {"ts"}, ValueType::kTimestamp)});
    errors.Aggregate(exec::AggSpec::CountStar());
    auto error_rows = errors.Execute(ctx);

    opt::QueryBlock q;
    q.AddTable(opt::TableRef::Rel(
        "b", logs.get(),
        exec::Eq(Access("b", {"event"}, ValueType::kString),
                 exec::ConstString("charge"))));
    q.AddTable(opt::TableRef::Rows("err", &error_rows, {"day", "errors"}));
    q.AddJoin(Access("b", {"ts"}, ValueType::kTimestamp),
              Access("err", {"day"}, ValueType::kTimestamp));
    q.GroupBy({Access("err", {"day"}, ValueType::kTimestamp),
               Access("err", {"errors"}, ValueType::kInt)});
    q.Aggregate(exec::AggSpec::Sum(Access("b", {"amount"}, ValueType::kFloat)));
    q.OrderBy(exec::Slot(1), /*descending=*/true);
    q.Limit(5);
    auto rows = q.Execute(ctx);
    std::printf("\nTop error days vs revenue:\n");
    for (const auto& r : rows) {
      std::printf("  %s  errors=%-4lld revenue=$%.2f\n",
                  FormatDate(r[0].ts_value()).c_str(),
                  static_cast<long long>(r[1].int_value()), r[2].float_value());
    }
  }
  return 0;
}
